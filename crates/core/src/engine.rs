//! The sampling engine — C-SAW's MAIN loop (paper Fig. 2b).
//!
//! ```text
//! FrontierPool = Seeds
//! for i in 0..Depth:
//!     Frontier      = SELECT(VERTEXBIAS(FrontierPool), FrontierSize)
//!     NeighborPool  = GATHERNEIGHBORS(Frontier)
//!     Sampled       = SELECT(EDGEBIAS(NeighborPool), NeighborSize)
//!     FrontierPool.INSERT(UPDATE(Sampled))
//!     Samples.INSERT(Sampled.u)
//! ```
//!
//! Each sampling *instance* is executed by one simulated warp
//! (§IV-A inter-warp parallelism: thousands of instances saturate the
//! device; intra-instance selection is the warp-level SELECT of
//! [`crate::select`]). The per-entry expand pipeline itself lives in
//! [`crate::step::StepKernel`] — this module only owns the per-instance
//! depth loop and frontier pools, and is one of the kernel's four runtimes
//! (with the out-of-memory scheduler, the unified-memory comparator, and
//! the multi-GPU splitter). Every expansion draws from a counter-based RNG
//! stream keyed by `(seed, instance, depth, vertex, trial)` via
//! [`csaw_gpu::rng::task_key`], so outputs are bit-identical regardless of
//! host thread count, chunking, or which runtime executes the instance.

use crate::api::{AlgoConfig, Algorithm, FrontierMode};
use crate::batch::ChunkInstance;
use crate::output::SampleOutput;
use crate::select::SelectConfig;
use crate::step::{
    with_thread_scratch, CsrAccess, DeltaAccess, EmitSink, NeighborAccess, PoolSink, PoolSlot,
    StepEntry, StepKernel, TrialCounter,
};
use csaw_gpu::device::LaunchResult;
use csaw_gpu::stats::SimStats;
use csaw_gpu::Device;
use csaw_graph::{Csr, GraphSnapshot, VertexId};
use std::collections::HashSet;

/// Folds one launch's results into a run's totals: merges the kernel
/// counters, then tallies `sampled_edges` from the per-instance output
/// lengths. The instance kernels deliberately leave `sampled_edges` at
/// zero — the output vectors are the ground truth — so this helper is the
/// single place the counter is accounted. Both [`Sampler::run`] and
/// [`Sampler::run_chunked`] go through it, which keeps chunked and
/// unchunked stats identical (`chunked_run_matches_unchunked` asserts
/// this).
fn merge_launch_stats(stats: &mut SimStats, launch: &LaunchResult<Vec<(VertexId, VertexId)>>) {
    debug_assert_eq!(
        launch.stats.sampled_edges, 0,
        "instance kernels must not count sampled_edges; the output tally would double-count"
    );
    stats.merge(&launch.stats);
    stats.sampled_edges += launch.outputs.iter().map(|o| o.len() as u64).sum::<u64>();
}

/// A run rejected up front, before any kernel launch. Out-of-range
/// seeds would otherwise panic deep inside CSR indexing; a serving
/// layer needs the typed form to answer the caller instead of dying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// An instance was given no seed vertices at all.
    EmptySeedSet {
        /// Index of the offending instance.
        instance: usize,
    },
    /// A seed vertex id is not a vertex of the graph.
    SeedOutOfRange {
        /// Index of the offending instance.
        instance: usize,
        /// The rejected vertex id.
        vertex: VertexId,
        /// The graph's vertex count.
        num_vertices: usize,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::EmptySeedSet { instance } => {
                write!(f, "instance {instance} has an empty seed set")
            }
            RunError::SeedOutOfRange { instance, vertex, num_vertices } => write!(
                f,
                "instance {instance}: seed vertex {vertex} out of range (graph has {num_vertices} vertices)"
            ),
        }
    }
}

impl std::error::Error for RunError {}

/// Validates one-instance-per-set seed sets against `graph`: every set
/// non-empty, every vertex id in range. An empty *list* of sets is fine
/// (a run of zero instances), an empty *set* is not.
pub fn validate_seed_sets(
    graph: &Csr,
    seed_sets: &[impl AsRef<[VertexId]>],
) -> Result<(), RunError> {
    let n = graph.num_vertices();
    for (instance, set) in seed_sets.iter().enumerate() {
        let set = set.as_ref();
        if set.is_empty() {
            return Err(RunError::EmptySeedSet { instance });
        }
        if let Some(&vertex) = set.iter().find(|&&v| v as usize >= n) {
            return Err(RunError::SeedOutOfRange { instance, vertex, num_vertices: n });
        }
    }
    Ok(())
}

/// Validates single-seed instances (one instance per entry of `seeds`).
pub fn validate_single_seeds(graph: &Csr, seeds: &[VertexId]) -> Result<(), RunError> {
    let n = graph.num_vertices();
    match seeds.iter().position(|&v| v as usize >= n) {
        None => Ok(()),
        Some(instance) => {
            Err(RunError::SeedOutOfRange { instance, vertex: seeds[instance], num_vertices: n })
        }
    }
}

/// Execution order of the MAIN loop over a run's instances.
///
/// Both modes run the *same* per-entry pipeline ([`StepKernel`]) over the
/// *same* RNG streams (keyed by logical position, never schedule), so they
/// are bit-identical on outputs and charge-identical on every counter
/// except the `batch_*` group/prefetch observability fields, which only
/// depth-synchronous execution populates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// One simulated warp per instance, each run to completion — the
    /// paper's §IV-A inter-warp layout and the engine's historical mode.
    #[default]
    InstanceMajor,
    /// Advance all instances in lockstep one depth at a time over a flat
    /// `(instance, vertex)` frontier (see [`crate::batch`]): prefetches
    /// upcoming CSR rows, groups co-located walkers to share one gather +
    /// CTPS build, and batch-generates Philox blocks per depth.
    DepthSync,
}

/// Engine-level options shared by all instances of a run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Global RNG seed; instance `i` draws from streams keyed by
    /// `task_key(instance_base + i, depth, vertex, trial)`.
    pub seed: u64,
    /// SELECT strategy + collision detector.
    pub select: SelectConfig,
    /// Execute SELECT through the lane-level SIMT executor
    /// ([`crate::select_simt`]) instead of the round-based loop —
    /// distribution-identical, additionally tracks warp divergence
    /// (unsupported for the `Updated` strategy).
    pub use_simt_select: bool,
    /// Offset added to local instance indices to form the global instance
    /// id that keys RNG streams. Multi-GPU and sharded runs set this per
    /// chunk so a split run samples exactly what a single-device run of
    /// the whole seed list would.
    pub instance_base: u32,
    /// Optional hot-vertex CTPS cache shared by every instance of the run
    /// (see [`crate::ctps_cache`]). Consulted only for static non-uniform
    /// edge biases; sampled output is bit-identical with or without it.
    /// `None` (the default) disables cross-instance CTPS reuse.
    pub ctps_cache: Option<std::sync::Arc<crate::ctps_cache::CtpsCache>>,
    /// Sampling-method policy (see [`crate::method`]). The default,
    /// [`crate::method::MethodPolicy::ForceIts`], keeps output
    /// bit-identical to the pinned goldens;
    /// [`crate::method::MethodPolicy::Adaptive`] picks alias/rejection
    /// per expansion and is distribution-equal instead.
    pub method_policy: crate::method::MethodPolicy,
    /// Optional epoch snapshot of a [`csaw_graph::MutableGraph`]. When
    /// set, every instance gathers through the snapshot's delta overlay
    /// ([`DeltaAccess`]) instead of the bare CSR: mutated vertices serve
    /// their merged adjacency, untouched vertices serve the base slices
    /// verbatim. RNG streams are keyed by `(instance, depth, vertex,
    /// trial)` only, so a snapshot run is bit-identical to a from-scratch
    /// run on the compacted CSR of the same epoch. `None` (the default)
    /// is the static path, byte-for-byte what it was before overlays
    /// existed.
    pub snapshot: Option<GraphSnapshot>,
    /// Optional disk tier (see [`crate::residency`]). When set, every
    /// instance gathers through a [`crate::residency::DiskAccess`] over
    /// the store's memory-mapped segments instead of the resident CSR:
    /// neighbor lists decode on demand into each worker thread's
    /// byte-budgeted pool. Decode is bit-exact and RNG streams are keyed
    /// by `(instance, depth, vertex, trial)` only, so a disk-backed run
    /// is bit-identical to the in-memory run at every pool budget.
    /// Mutually exclusive with `snapshot` — the store serves immutable
    /// epochs.
    pub disk: Option<crate::residency::DiskRunConfig>,
    /// Execution order over instances — see [`ExecMode`]. Output is
    /// bit-identical across modes; only throughput and the `batch_*`
    /// observability counters differ.
    pub exec: ExecMode,
    /// Depth-synchronous look-ahead, in vertex-groups: while group `g`
    /// expands, the CSR index row of group `g + distance` and the
    /// adjacency of group `g + max(1, distance/2)` are software-prefetched.
    /// `0` disables prefetching. Ignored under instance-major execution.
    pub prefetch_distance: usize,
    /// Instances per depth-synchronous chunk (the unit of host
    /// parallelism). `None` (the default) auto-sizes to roughly four
    /// chunks per available worker thread. Ignored under instance-major
    /// execution; any value yields bit-identical output.
    pub batch_chunk: Option<usize>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            seed: 0x5eed,
            select: SelectConfig::paper_best(),
            use_simt_select: false,
            instance_base: 0,
            ctps_cache: None,
            method_policy: crate::method::MethodPolicy::ForceIts,
            snapshot: None,
            disk: None,
            exec: ExecMode::InstanceMajor,
            prefetch_distance: 8,
            batch_chunk: None,
        }
    }
}

/// A configured sampler binding a graph to an algorithm.
pub struct Sampler<'g, A: Algorithm> {
    graph: &'g Csr,
    algo: &'g A,
    opts: RunOptions,
    device: Device,
}

impl<'g, A: Algorithm> Sampler<'g, A> {
    /// A sampler with default options on a V100-like device.
    pub fn new(graph: &'g Csr, algo: &'g A) -> Self {
        Sampler { graph, algo, opts: RunOptions::default(), device: Device::v100() }
    }

    /// Overrides the run options.
    pub fn with_options(mut self, opts: RunOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Overrides the simulated device.
    pub fn with_device(mut self, device: Device) -> Self {
        self.device = device;
        self
    }

    /// Binds an epoch snapshot: all instances of this run sample the
    /// snapshot's logical graph (base + delta overlay) instead of the
    /// bare CSR. The snapshot's base must be the graph this sampler was
    /// constructed over for the run to be meaningful.
    pub fn with_snapshot(mut self, snapshot: GraphSnapshot) -> Self {
        self.opts.snapshot = Some(snapshot);
        self
    }

    /// Binds a disk tier: all instances gather through the store's
    /// mmap-backed segments with on-demand decode into per-thread pools
    /// (see [`crate::residency`]). The store must hold the same logical
    /// graph as the CSR this sampler was constructed over for the
    /// bit-identity guarantee to be meaningful. Mutually exclusive with
    /// [`Sampler::with_snapshot`].
    pub fn with_disk(mut self, disk: crate::residency::DiskRunConfig) -> Self {
        self.opts.disk = Some(disk);
        self
    }

    /// The bound device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Runs one instance per seed vertex (the common case: every paper
    /// algorithm except multi-dimensional random walk starts an instance
    /// from a single source, §IV-A).
    pub fn run_single_seeds(&self, seeds: &[VertexId]) -> SampleOutput {
        let sets: Vec<Vec<VertexId>> = seeds.iter().map(|&s| vec![s]).collect();
        self.run(&sets)
    }

    /// Memory-bounded run: processes single-seed instances in chunks of
    /// `chunk_size`, handing each finished instance's edges to `sink`
    /// (global instance index, edges) instead of materializing every
    /// instance at once — the right shape for corpus generation over
    /// millions of walks. Returns the merged stats.
    pub fn run_chunked(
        &self,
        seeds: &[VertexId],
        chunk_size: usize,
        mut sink: impl FnMut(usize, Vec<(VertexId, VertexId)>),
    ) -> csaw_gpu::stats::SimStats {
        assert!(chunk_size > 0, "chunk size must be positive");
        let mut stats = csaw_gpu::stats::SimStats::new();
        for (chunk_idx, chunk) in seeds.chunks(chunk_size).enumerate() {
            let base = chunk_idx * chunk_size;
            // Instance ids stay global so RNG streams (and thus outputs)
            // are identical to an unchunked run.
            let tasks: Vec<(u32, Vec<VertexId>)> =
                chunk.iter().enumerate().map(|(i, &s)| ((base + i) as u32, vec![s])).collect();
            let graph = self.graph;
            let algo = self.algo;
            let opts = &self.opts;
            let launch = self.device.launch(tasks, move |_, (instance, seeds)| {
                run_instance(graph, algo, opts, instance, &seeds)
            });
            merge_launch_stats(&mut stats, &launch);
            for (i, inst) in launch.outputs.into_iter().enumerate() {
                sink(base + i, inst);
            }
        }
        stats
    }

    /// Runs one instance per seed *set* (multi-dimensional random walk
    /// pools `FrontierSize` seeds per instance).
    pub fn run(&self, seed_sets: &[Vec<VertexId>]) -> SampleOutput {
        if self.opts.exec == ExecMode::DepthSync {
            return self.run_depth_sync(seed_sets);
        }
        let t0 = std::time::Instant::now();
        let tasks: Vec<(u32, &Vec<VertexId>)> =
            seed_sets.iter().enumerate().map(|(i, s)| (i as u32, s)).collect();
        let graph = self.graph;
        let algo = self.algo;
        let opts = &self.opts;
        let launch = self.device.launch(tasks, move |_, (instance, seeds)| {
            run_instance(graph, algo, opts, instance, seeds)
        });
        let mut stats = SimStats::new();
        merge_launch_stats(&mut stats, &launch);
        // Per-instance accounting: the kernels leave `sampled_edges` at
        // zero (see `merge_launch_stats`); fill it in from the output so
        // each entry is a complete, sliceable counter set.
        let mut instance_stats = launch.task_stats;
        for (s, inst) in instance_stats.iter_mut().zip(&launch.outputs) {
            s.sampled_edges = inst.len() as u64;
        }
        SampleOutput {
            instances: launch.outputs,
            stats,
            instance_stats,
            warp_cycles: launch.warp_cycles,
            wall_seconds: t0.elapsed().as_secs_f64(),
        }
    }

    /// Depth-synchronous run ([`ExecMode::DepthSync`]): instances are
    /// split into chunks (the unit of host parallelism), and each chunk is
    /// advanced in lockstep one depth at a time by [`crate::batch`]'s flat
    /// frontier. Bit-identical to [`Sampler::run`] on outputs at any chunk
    /// size, prefetch distance, or thread count; charge-identical on every
    /// counter except the `batch_*` observability fields.
    fn run_depth_sync(&self, seed_sets: &[Vec<VertexId>]) -> SampleOutput {
        let t0 = std::time::Instant::now();
        let cfg = self.algo.config();
        let chunk = self.opts.batch_chunk.unwrap_or_else(|| {
            let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
            seed_sets.len().div_ceil(4 * threads).max(1)
        });
        assert!(chunk > 0, "batch chunk size must be positive");
        let tasks: Vec<(usize, &[Vec<VertexId>])> =
            seed_sets.chunks(chunk).enumerate().map(|(ci, sets)| (ci * chunk, sets)).collect();
        let graph = self.graph;
        let algo = self.algo;
        let opts = &self.opts;
        let cfg_ref = &cfg;
        let launch = self.device.launch(tasks, move |_, (base, sets)| {
            let (outs, per_inst) = run_chunk_task(graph, algo, opts, cfg_ref, base, sets);
            let total: SimStats = per_inst.iter().copied().sum();
            ((outs, per_inst), total)
        });
        // Reassemble in task order — chunks partition the instance range
        // contiguously, so concatenation restores instance order.
        let mut instances = Vec::with_capacity(seed_sets.len());
        let mut instance_stats = Vec::with_capacity(seed_sets.len());
        for (outs, per_inst) in launch.outputs {
            instances.extend(outs);
            instance_stats.extend(per_inst);
        }
        // The chunk kernels leave `sampled_edges` at zero, as everywhere
        // else: the outputs are the ground truth.
        for (s, inst) in instance_stats.iter_mut().zip(&instances) {
            s.sampled_edges = inst.len() as u64;
        }
        SampleOutput::from_instances(instances, instance_stats, t0.elapsed().as_secs_f64())
    }

    /// [`Sampler::run`] behind upfront validation: rejects empty seed
    /// sets and out-of-range seed ids with a typed [`RunError`] instead
    /// of panicking inside CSR indexing.
    pub fn run_checked(&self, seed_sets: &[Vec<VertexId>]) -> Result<SampleOutput, RunError> {
        validate_seed_sets(self.graph, seed_sets)?;
        Ok(self.run(seed_sets))
    }

    /// [`Sampler::run_single_seeds`] behind upfront validation.
    pub fn run_single_seeds_checked(&self, seeds: &[VertexId]) -> Result<SampleOutput, RunError> {
        validate_single_seeds(self.graph, seeds)?;
        Ok(self.run_single_seeds(seeds))
    }
}

/// Executes one full sampling instance by driving [`StepKernel`] over the
/// instance's frontier pool; returns its sampled edges and private stats
/// (merged by the device).
fn run_instance(
    g: &Csr,
    algo: &dyn Algorithm,
    opts: &RunOptions,
    instance: u32,
    seeds: &[VertexId],
) -> (Vec<(VertexId, VertexId)>, SimStats) {
    match (opts.snapshot.as_ref(), opts.disk.as_ref()) {
        (Some(_), Some(_)) => {
            panic!("RunOptions.snapshot and RunOptions.disk are mutually exclusive")
        }
        (Some(snapshot), None) => {
            let mut access = DeltaAccess { snapshot };
            drive_instance(&mut access, algo, opts, instance, seeds)
        }
        (None, Some(disk)) => crate::residency::with_thread_disk_access(disk, |access| {
            let (out, mut stats) = drive_instance(access, algo, opts, instance, seeds);
            // Attribute the disk work this instance caused on its worker
            // thread (decodes, hits, evictions) to its own counters; the
            // warm pool itself persists for the next instance.
            access.flush_stats(&mut stats);
            (out, stats)
        }),
        (None, None) => {
            let mut access = CsrAccess { graph: g };
            drive_instance(&mut access, algo, opts, instance, seeds)
        }
    }
}

/// The per-instance depth loop, generic over how adjacency is gathered
/// (bare CSR or epoch snapshot) — the loop itself is identical, which is
/// what makes the two paths bit-identical on identical adjacency.
fn drive_instance<N: NeighborAccess>(
    access: &mut N,
    algo: &dyn Algorithm,
    opts: &RunOptions,
    instance: u32,
    seeds: &[VertexId],
) -> (Vec<(VertexId, VertexId)>, SimStats) {
    let cfg = algo.config();
    let kernel = StepKernel::new(algo, opts.seed)
        .with_select(opts.select)
        .with_simt_select(opts.use_simt_select)
        .with_ctps_cache(opts.ctps_cache.as_deref())
        .with_method_policy(opts.method_policy);
    let instance = opts.instance_base + instance;
    let mut stats = SimStats::new();
    let mut out: Vec<(VertexId, VertexId)> = Vec::new();

    let mut pool: Vec<PoolSlot> = seeds.iter().map(|&v| PoolSlot::seed(v)).collect();
    let mut visited: HashSet<VertexId> =
        if cfg.without_replacement { seeds.iter().copied().collect() } else { HashSet::new() };
    let home = seeds.first().copied().unwrap_or(0);

    // One arena per worker thread: the device launches instance kernels
    // on a pool, and every instance on a thread reuses that thread's
    // warm buffers — zero steady-state allocations in the step pipeline.
    with_thread_scratch(|scratch| match cfg.frontier {
        FrontierMode::IndependentPerVertex => {
            let mut trials = TrialCounter::new();
            // Double-buffered frontier: swap instead of `mem::take`, so
            // neither buffer is ever reallocated between depths.
            let mut frontier: Vec<PoolSlot> = Vec::new();
            for depth in 0..cfg.depth as u32 {
                if pool.is_empty() {
                    break;
                }
                std::mem::swap(&mut pool, &mut frontier);
                pool.clear();
                stats.frontier_ops += frontier.len() as u64;
                trials.reset();
                for &slot in frontier.iter() {
                    let entry = StepEntry {
                        instance,
                        depth,
                        vertex: slot.vertex,
                        prev: slot.prev,
                        trial: trials.next(instance, slot.vertex),
                    };
                    let mut sink = PoolSink {
                        cfg: &cfg,
                        detector: opts.select.detector,
                        visited: &mut visited,
                        next: &mut pool,
                        out: &mut out,
                    };
                    kernel.expand(access, &entry, home, &mut sink, scratch, &mut stats);
                }
            }
        }
        FrontierMode::SharedLayer => {
            let mut frontier: Vec<PoolSlot> = Vec::new();
            for depth in 0..cfg.depth as u32 {
                if pool.is_empty() {
                    break;
                }
                std::mem::swap(&mut pool, &mut frontier);
                pool.clear();
                stats.frontier_ops += frontier.len() as u64;
                let mut sink = PoolSink {
                    cfg: &cfg,
                    detector: opts.select.detector,
                    visited: &mut visited,
                    next: &mut pool,
                    out: &mut out,
                };
                kernel.expand_layer(
                    access, instance, depth, &frontier, &mut sink, scratch, &mut stats,
                );
            }
        }
        FrontierMode::BiasedReplace => {
            // Per-instance VERTEXBIAS lane, maintained incrementally by
            // `expand_replace` (cold on the first step, then one slot per
            // UPDATE instead of a full pool rescan).
            let mut pool_biases: Vec<f64> = Vec::new();
            for depth in 0..cfg.depth as u32 {
                if pool.is_empty() {
                    break;
                }
                let mut sink = EmitSink(&mut out);
                kernel.expand_replace(
                    access,
                    instance,
                    depth,
                    home,
                    &mut pool,
                    &mut pool_biases,
                    &mut sink,
                    scratch,
                    &mut stats,
                );
            }
        }
    });
    (out, stats)
}

/// Executes one depth-synchronous chunk: dispatches the access layer the
/// same way [`run_instance`] does, then hands the chunk to
/// [`drive_chunk`]. Returns per-instance outputs and per-instance stats
/// (disk-tier worker charges land on the chunk's first instance — the
/// same "whoever ran on the warm pool pays" attribution the
/// instance-major path applies per instance).
fn run_chunk_task(
    g: &Csr,
    algo: &dyn Algorithm,
    opts: &RunOptions,
    cfg: &AlgoConfig,
    base: usize,
    sets: &[Vec<VertexId>],
) -> (Vec<Vec<(VertexId, VertexId)>>, Vec<SimStats>) {
    match (opts.snapshot.as_ref(), opts.disk.as_ref()) {
        (Some(_), Some(_)) => {
            panic!("RunOptions.snapshot and RunOptions.disk are mutually exclusive")
        }
        (Some(snapshot), None) => {
            let mut access = DeltaAccess { snapshot };
            drive_chunk(&mut access, algo, opts, cfg, base, sets)
        }
        (None, Some(disk)) => crate::residency::with_thread_disk_access(disk, |access| {
            let (outs, mut per_inst) = drive_chunk(access, algo, opts, cfg, base, sets);
            if let Some(first) = per_inst.first_mut() {
                access.flush_stats(first);
            }
            (outs, per_inst)
        }),
        (None, None) => {
            let mut access = CsrAccess { graph: g };
            drive_chunk(&mut access, algo, opts, cfg, base, sets)
        }
    }
}

/// The depth-synchronous counterpart of [`drive_instance`] for one chunk
/// of instances. `IndependentPerVertex` algorithms run through the flat
/// grouped frontier of [`crate::batch::run_chunk`]; the layer modes
/// (`SharedLayer`, `BiasedReplace`) expand whole per-instance layers per
/// step, so "depth-synchronous" reduces to a loop interchange — depth
/// outer, instances inner — which is trivially bit- and charge-identical
/// because per-instance state is independent.
fn drive_chunk<N: NeighborAccess>(
    access: &mut N,
    algo: &dyn Algorithm,
    opts: &RunOptions,
    cfg: &AlgoConfig,
    base: usize,
    sets: &[Vec<VertexId>],
) -> (Vec<Vec<(VertexId, VertexId)>>, Vec<SimStats>) {
    let kernel = StepKernel::new(algo, opts.seed)
        .with_select(opts.select)
        .with_simt_select(opts.use_simt_select)
        .with_ctps_cache(opts.ctps_cache.as_deref())
        .with_method_policy(opts.method_policy);
    let mut outs: Vec<Vec<(VertexId, VertexId)>> = vec![Vec::new(); sets.len()];
    let mut per_inst: Vec<SimStats> = vec![SimStats::new(); sets.len()];
    let global_id = |i: usize| opts.instance_base + (base + i) as u32;

    match cfg.frontier {
        FrontierMode::IndependentPerVertex => {
            let instances: Vec<ChunkInstance<'_>> = sets
                .iter()
                .enumerate()
                .map(|(i, s)| ChunkInstance { global_id: global_id(i), seeds: s })
                .collect();
            with_thread_scratch(|scratch| {
                crate::batch::with_thread_arena(|arena| {
                    crate::batch::run_chunk(
                        &kernel,
                        access,
                        &instances,
                        opts.seed,
                        opts.prefetch_distance,
                        &mut outs,
                        &mut per_inst,
                        arena,
                        scratch,
                    );
                });
            });
        }
        FrontierMode::SharedLayer => {
            let mut pools: Vec<Vec<PoolSlot>> =
                sets.iter().map(|s| s.iter().map(|&v| PoolSlot::seed(v)).collect()).collect();
            let mut frontiers: Vec<Vec<PoolSlot>> = vec![Vec::new(); sets.len()];
            let mut visiteds: Vec<HashSet<VertexId>> = sets
                .iter()
                .map(|s| {
                    if cfg.without_replacement {
                        s.iter().copied().collect()
                    } else {
                        HashSet::new()
                    }
                })
                .collect();
            with_thread_scratch(|scratch| {
                for depth in 0..cfg.depth as u32 {
                    for i in 0..sets.len() {
                        if pools[i].is_empty() {
                            continue;
                        }
                        std::mem::swap(&mut pools[i], &mut frontiers[i]);
                        pools[i].clear();
                        per_inst[i].frontier_ops += frontiers[i].len() as u64;
                        let mut sink = PoolSink {
                            cfg,
                            detector: opts.select.detector,
                            visited: &mut visiteds[i],
                            next: &mut pools[i],
                            out: &mut outs[i],
                        };
                        kernel.expand_layer(
                            access,
                            global_id(i),
                            depth,
                            &frontiers[i],
                            &mut sink,
                            scratch,
                            &mut per_inst[i],
                        );
                    }
                }
            });
        }
        FrontierMode::BiasedReplace => {
            let mut pools: Vec<Vec<PoolSlot>> =
                sets.iter().map(|s| s.iter().map(|&v| PoolSlot::seed(v)).collect()).collect();
            let mut pool_biases: Vec<Vec<f64>> = vec![Vec::new(); sets.len()];
            with_thread_scratch(|scratch| {
                for depth in 0..cfg.depth as u32 {
                    for i in 0..sets.len() {
                        if pools[i].is_empty() {
                            continue;
                        }
                        let home = sets[i].first().copied().unwrap_or(0);
                        let mut sink = EmitSink(&mut outs[i]);
                        kernel.expand_replace(
                            access,
                            global_id(i),
                            depth,
                            home,
                            &mut pools[i],
                            &mut pool_biases[i],
                            &mut sink,
                            scratch,
                            &mut per_inst[i],
                        );
                    }
                }
            });
        }
    }
    (outs, per_inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{AlgoConfig, NeighborSize};
    use csaw_graph::generators::toy_graph;

    /// Minimal in-test algorithm: unbiased neighbor sampling.
    struct TestNs {
        ns: usize,
        depth: usize,
    }
    impl Algorithm for TestNs {
        fn name(&self) -> &'static str {
            "test-ns"
        }
        fn config(&self) -> AlgoConfig {
            AlgoConfig {
                depth: self.depth,
                neighbor_size: NeighborSize::Constant(self.ns),
                frontier: FrontierMode::IndependentPerVertex,
                without_replacement: true,
            }
        }
    }

    /// Unbiased walk of fixed length.
    struct TestWalk {
        len: usize,
    }
    impl Algorithm for TestWalk {
        fn name(&self) -> &'static str {
            "test-walk"
        }
        fn config(&self) -> AlgoConfig {
            AlgoConfig {
                depth: self.len,
                neighbor_size: NeighborSize::Constant(1),
                frontier: FrontierMode::IndependentPerVertex,
                without_replacement: false,
            }
        }
    }

    #[test]
    fn walk_has_requested_length_and_valid_edges() {
        let g = toy_graph();
        let algo = TestWalk { len: 20 };
        let out = Sampler::new(&g, &algo).run_single_seeds(&[8, 0, 5]);
        assert_eq!(out.instances.len(), 3);
        for inst in &out.instances {
            assert_eq!(inst.len(), 20, "toy graph has no dead ends");
            for &(v, u) in inst {
                assert!(g.has_edge(v, u), "non-edge ({v},{u}) sampled");
            }
            // Path property: consecutive edges chain.
            for w in inst.windows(2) {
                assert_eq!(w[0].1, w[1].0, "walk must be connected");
            }
        }
    }

    #[test]
    fn neighbor_sampling_respects_ns_and_depth() {
        let g = toy_graph();
        let algo = TestNs { ns: 2, depth: 2 };
        let out = Sampler::new(&g, &algo).run_single_seeds(&[8]);
        let inst = &out.instances[0];
        // Depth 2, NS 2: ≤ 2 + 4 edges; all must be real edges.
        assert!(inst.len() <= 6, "{inst:?}");
        assert!(!inst.is_empty());
        for &(v, u) in inst {
            assert!(g.has_edge(v, u));
        }
    }

    #[test]
    fn without_replacement_never_expands_twice() {
        let g = toy_graph();
        let algo = TestNs { ns: 8, depth: 6 };
        let out = Sampler::new(&g, &algo).run_single_seeds(&[0, 5, 8, 12]);
        for inst in &out.instances {
            let mut expanded: Vec<VertexId> = inst.iter().map(|&(v, _)| v).collect();
            let unique: HashSet<_> = expanded.iter().copied().collect();
            expanded.sort_unstable();
            // A vertex may appear as source of several edges within one
            // step (NS > 1) but must never be *expanded* in two steps. With
            // ns=8 ≥ max degree, re-expansion would mean duplicate (v, u)
            // pairs.
            let mut pairs = inst.clone();
            pairs.sort_unstable();
            let before = pairs.len();
            pairs.dedup();
            assert_eq!(pairs.len(), before, "duplicate sampled edge implies re-expansion");
            assert!(!unique.is_empty());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let g = toy_graph();
        let algo = TestWalk { len: 50 };
        let a = Sampler::new(&g, &algo).run_single_seeds(&[1, 2, 3, 4]);
        let b = Sampler::new(&g, &algo).run_single_seeds(&[1, 2, 3, 4]);
        assert_eq!(a.instances, b.instances);
    }

    #[test]
    fn different_seed_changes_output() {
        let g = toy_graph();
        let algo = TestWalk { len: 50 };
        let a = Sampler::new(&g, &algo).run_single_seeds(&[1, 2, 3]);
        let b = Sampler::new(&g, &algo)
            .with_options(RunOptions { seed: 999, ..Default::default() })
            .run_single_seeds(&[1, 2, 3]);
        assert_ne!(a.instances, b.instances);
    }

    #[test]
    fn instance_base_shifts_rng_streams() {
        let g = toy_graph();
        let algo = TestWalk { len: 30 };
        let seeds: Vec<u32> = (0..6).map(|i| i % 13).collect();
        let full = Sampler::new(&g, &algo).run_single_seeds(&seeds);
        // Running the tail [3..] with instance_base 3 must reproduce the
        // full run's instances 3..6 exactly — the property multi-GPU
        // splitting relies on.
        let tail = Sampler::new(&g, &algo)
            .with_options(RunOptions { instance_base: 3, ..Default::default() })
            .run_single_seeds(&seeds[3..]);
        assert_eq!(tail.instances, full.instances[3..]);
    }

    #[test]
    fn dead_end_terminates_by_default() {
        // Star with edges only out of 0: vertex 1.. have no out-edges.
        let g = csaw_graph::CsrBuilder::new().add_edge(0, 1).add_edge(0, 2).build();
        let algo = TestWalk { len: 10 };
        let out = Sampler::new(&g, &algo).run_single_seeds(&[0]);
        assert_eq!(out.instances[0].len(), 1, "one hop then dead end");
    }

    #[test]
    fn empty_seed_list() {
        let g = toy_graph();
        let algo = TestWalk { len: 5 };
        let out = Sampler::new(&g, &algo).run_single_seeds(&[]);
        assert!(out.instances.is_empty());
        assert_eq!(out.sampled_edges(), 0);
    }

    #[test]
    fn simt_select_option_is_distribution_equivalent() {
        use std::collections::HashMap;
        let g = toy_graph();
        let algo = TestNs { ns: 2, depth: 1 };
        let freq = |use_simt: bool| {
            let opts = RunOptions { use_simt_select: use_simt, ..Default::default() };
            let out = Sampler::new(&g, &algo).with_options(opts).run_single_seeds(&vec![8; 40_000]);
            let mut counts: HashMap<u32, usize> = HashMap::new();
            for inst in &out.instances {
                for &(_, u) in inst {
                    *counts.entry(u).or_default() += 1;
                }
            }
            counts
        };
        let (a, b) = (freq(false), freq(true));
        for &u in g.neighbors(8) {
            let fa = a[&u] as f64 / 40_000.0;
            let fb = b[&u] as f64 / 40_000.0;
            assert!((fa - fb).abs() < 0.02, "u={u}: round {fa} vs simt {fb}");
        }
    }

    #[test]
    fn chunked_run_matches_unchunked() {
        let g = toy_graph();
        let algo = TestWalk { len: 15 };
        let seeds: Vec<u32> = (0..23).map(|i| i % 13).collect();
        let full = Sampler::new(&g, &algo).run_single_seeds(&seeds);
        for chunk in [1usize, 4, 7, 23, 100] {
            let mut collected: Vec<Option<Vec<(u32, u32)>>> = vec![None; seeds.len()];
            let stats = Sampler::new(&g, &algo).run_chunked(&seeds, chunk, |i, edges| {
                collected[i] = Some(edges);
            });
            let collected: Vec<_> = collected.into_iter().map(Option::unwrap).collect();
            assert_eq!(collected, full.instances, "chunk={chunk}");
            // Full-stats equality, not just sampled_edges: both paths fold
            // every launch through `merge_launch_stats`, and chunking only
            // regroups instances (global ids keep RNG streams fixed), so
            // every counter must match the unchunked run exactly.
            assert_eq!(stats, full.stats, "chunk={chunk}");
        }
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn chunked_run_rejects_zero_chunk() {
        let g = toy_graph();
        let algo = TestWalk { len: 2 };
        Sampler::new(&g, &algo).run_chunked(&[0], 0, |_, _| {});
    }

    #[test]
    fn checked_run_rejects_bad_seeds_and_passes_good_ones() {
        let g = toy_graph(); // 13 vertices
        let algo = TestWalk { len: 5 };
        let s = Sampler::new(&g, &algo);
        assert_eq!(
            s.run_single_seeds_checked(&[0, 99]).unwrap_err(),
            RunError::SeedOutOfRange { instance: 1, vertex: 99, num_vertices: 13 }
        );
        assert_eq!(
            s.run_checked(&[vec![3], vec![]]).unwrap_err(),
            RunError::EmptySeedSet { instance: 1 }
        );
        assert_eq!(
            s.run_checked(&[vec![3, 13]]).unwrap_err(),
            RunError::SeedOutOfRange { instance: 0, vertex: 13, num_vertices: 13 }
        );
        let ok = s.run_single_seeds_checked(&[0, 12]).unwrap();
        assert_eq!(ok.instances, s.run_single_seeds(&[0, 12]).instances);
        // Zero instances is a valid (empty) run, not an error.
        assert!(s.run_single_seeds_checked(&[]).unwrap().instances.is_empty());
    }

    #[test]
    fn per_instance_stats_sum_to_run_stats() {
        let g = toy_graph();
        let algo = TestNs { ns: 2, depth: 2 };
        let out = Sampler::new(&g, &algo).run_single_seeds(&[8, 0, 5]);
        assert_eq!(out.instance_stats.len(), 3);
        let summed: SimStats = out.instance_stats.iter().copied().sum();
        assert_eq!(summed, out.stats);
        for (s, inst) in out.instance_stats.iter().zip(&out.instances) {
            assert_eq!(s.sampled_edges, inst.len() as u64);
        }
        // Slicing one instance out reproduces a solo run's accounting.
        let solo = Sampler::new(&g, &algo).run_single_seeds(&[8]);
        let sliced = out.slice(0..1);
        assert_eq!(sliced.instances, solo.instances);
        assert_eq!(sliced.stats, solo.stats);
    }

    /// Zeroes the depth-sync-only observability counters so a depth-sync
    /// stat set can be compared against instance-major execution (which
    /// never forms vertex groups).
    fn scrub_batch_counters(mut s: SimStats) -> SimStats {
        s.batch_groups = 0;
        s.batch_group_entries = 0;
        s.batch_group_hist = [0; 8];
        s.batch_prefetch_hits = 0;
        s.batch_prefetch_misses = 0;
        s
    }

    #[test]
    fn depth_sync_matches_instance_major_at_any_chunk_size() {
        let g = toy_graph();
        // Duplicate seeds force co-located walkers (shared groups, trial
        // ordinals > 0) — the paths most likely to diverge.
        let seeds: Vec<u32> = (0..17).map(|i| [8, 0, 8, 5, 2][i % 5]).collect();
        for (name, algo) in [
            ("walk", Box::new(TestWalk { len: 12 }) as Box<dyn Algorithm>),
            ("ns", Box::new(TestNs { ns: 3, depth: 4 })),
        ] {
            let algo: &dyn Algorithm = algo.as_ref();
            let reference = Sampler::new(&g, &algo).run_single_seeds(&seeds);
            for chunk in [1usize, 2, 3, 7, 100] {
                for prefetch in [0usize, 1, 8] {
                    let opts = RunOptions {
                        exec: ExecMode::DepthSync,
                        batch_chunk: Some(chunk),
                        prefetch_distance: prefetch,
                        ..Default::default()
                    };
                    let out = Sampler::new(&g, &algo).with_options(opts).run_single_seeds(&seeds);
                    assert_eq!(
                        out.instances, reference.instances,
                        "{name}: chunk={chunk} prefetch={prefetch}"
                    );
                    assert_eq!(
                        scrub_batch_counters(out.stats),
                        reference.stats,
                        "{name}: chunk={chunk} prefetch={prefetch}"
                    );
                    let summed: SimStats = out.instance_stats.iter().copied().sum();
                    assert_eq!(summed, out.stats, "per-instance stats must conserve");
                }
            }
        }
    }

    #[test]
    fn depth_sync_matches_instance_major_on_layer_modes() {
        // SharedLayer (layer sampling) and BiasedReplace (multi-dim walk)
        // take the loop-interchange path rather than the flat frontier.
        use crate::algorithms::registry::{AlgoSpec, AlgorithmId};
        let g = toy_graph();
        for id in [AlgorithmId::LayerSampling, AlgorithmId::MultiDimRandomWalk] {
            let algo = AlgoSpec::new(id).with_depth(4).build().unwrap();
            let algo: &dyn Algorithm = algo.as_ref();
            let sets: Vec<Vec<u32>> = vec![vec![8, 0, 5], vec![2, 3, 4], vec![8, 0, 5]];
            let reference = Sampler::new(&g, &algo).run(&sets);
            for chunk in [1usize, 2, 100] {
                let opts = RunOptions {
                    exec: ExecMode::DepthSync,
                    batch_chunk: Some(chunk),
                    ..Default::default()
                };
                let out = Sampler::new(&g, &algo).with_options(opts).run(&sets);
                assert_eq!(out.instances, reference.instances, "{id:?} chunk={chunk}");
                assert_eq!(scrub_batch_counters(out.stats), reference.stats, "{id:?}");
            }
        }
    }

    #[test]
    fn depth_sync_populates_batch_observability() {
        let g = toy_graph();
        let algo = TestWalk { len: 10 };
        let opts =
            RunOptions { exec: ExecMode::DepthSync, batch_chunk: Some(100), ..Default::default() };
        // All walkers start at one vertex: depth 0 is a single group of 8.
        let out = Sampler::new(&g, &algo).with_options(opts).run_single_seeds(&[8; 8]);
        assert!(out.stats.batch_groups > 0);
        assert_eq!(out.stats.batch_group_hist.iter().sum::<u64>(), out.stats.batch_groups);
        assert_eq!(
            out.stats.batch_prefetch_hits + out.stats.batch_prefetch_misses,
            out.stats.batch_groups,
            "prefetch coverage must conserve"
        );
        assert!(out.stats.batch_group_entries >= out.stats.batch_groups);
        assert_eq!(out.stats.batch_group_hist[3], 1, "depth-0 group of 8 lands in bucket 3");
    }

    #[test]
    fn stats_accumulate_work() {
        let g = toy_graph();
        let algo = TestNs { ns: 2, depth: 2 };
        let out = Sampler::new(&g, &algo).run_single_seeds(&[8, 0]);
        assert!(out.stats.rng_draws > 0);
        assert!(out.stats.selections > 0);
        assert!(out.stats.gmem_bytes > 0);
        assert_eq!(out.stats.sampled_edges, out.sampled_edges());
        assert_eq!(out.warp_cycles.len(), 2);
    }
}
