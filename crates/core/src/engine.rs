//! The sampling engine — C-SAW's MAIN loop (paper Fig. 2b).
//!
//! ```text
//! FrontierPool = Seeds
//! for i in 0..Depth:
//!     Frontier      = SELECT(VERTEXBIAS(FrontierPool), FrontierSize)
//!     NeighborPool  = GATHERNEIGHBORS(Frontier)
//!     Sampled       = SELECT(EDGEBIAS(NeighborPool), NeighborSize)
//!     FrontierPool.INSERT(UPDATE(Sampled))
//!     Samples.INSERT(Sampled.u)
//! ```
//!
//! Each sampling *instance* is executed by one simulated warp
//! (§IV-A inter-warp parallelism: thousands of instances saturate the
//! device; intra-instance selection is the warp-level SELECT of
//! [`crate::select`]). Instances draw from counter-based RNG streams keyed
//! by `(seed, instance)`, so outputs are bit-identical regardless of host
//! thread count.

use crate::api::{AlgoConfig, Algorithm, EdgeCand, FrontierMode, UpdateAction};
use crate::output::SampleOutput;
use crate::select::{select_one, select_without_replacement, SelectConfig, SelectStrategy};
use crate::select_simt::select_without_replacement_simt;
use csaw_gpu::device::LaunchResult;
use csaw_gpu::stats::SimStats;
use csaw_gpu::{Device, Philox};
use csaw_graph::{Csr, VertexId};
use std::collections::HashSet;

/// Folds one launch's results into a run's totals: merges the kernel
/// counters, then tallies `sampled_edges` from the per-instance output
/// lengths. The instance kernels deliberately leave `sampled_edges` at
/// zero — the output vectors are the ground truth — so this helper is the
/// single place the counter is accounted. Both [`Sampler::run`] and
/// [`Sampler::run_chunked`] go through it, which keeps chunked and
/// unchunked stats identical (`chunked_run_matches_unchunked` asserts
/// this).
fn merge_launch_stats(stats: &mut SimStats, launch: &LaunchResult<Vec<(VertexId, VertexId)>>) {
    debug_assert_eq!(
        launch.stats.sampled_edges, 0,
        "instance kernels must not count sampled_edges; the output tally would double-count"
    );
    stats.merge(&launch.stats);
    stats.sampled_edges += launch.outputs.iter().map(|o| o.len() as u64).sum::<u64>();
}

/// Engine-level options shared by all instances of a run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Global RNG seed; instance `i` uses stream `(seed, i)`.
    pub seed: u64,
    /// SELECT strategy + collision detector.
    pub select: SelectConfig,
    /// Execute SELECT through the lane-level SIMT executor
    /// ([`crate::select_simt`]) instead of the round-based loop —
    /// distribution-identical, additionally tracks warp divergence
    /// (unsupported for the `Updated` strategy).
    pub use_simt_select: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions { seed: 0x5eed, select: SelectConfig::paper_best(), use_simt_select: false }
    }
}

/// One frontier-pool slot: the vertex plus its walk predecessor (the
/// paper's `SOURCE(e.v)`, needed by second-order biases).
#[derive(Debug, Clone, Copy)]
struct PoolEntry {
    v: VertexId,
    prev: Option<VertexId>,
}

/// A configured sampler binding a graph to an algorithm.
pub struct Sampler<'g, A: Algorithm> {
    graph: &'g Csr,
    algo: &'g A,
    opts: RunOptions,
    device: Device,
}

impl<'g, A: Algorithm> Sampler<'g, A> {
    /// A sampler with default options on a V100-like device.
    pub fn new(graph: &'g Csr, algo: &'g A) -> Self {
        Sampler { graph, algo, opts: RunOptions::default(), device: Device::v100() }
    }

    /// Overrides the run options.
    pub fn with_options(mut self, opts: RunOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Overrides the simulated device.
    pub fn with_device(mut self, device: Device) -> Self {
        self.device = device;
        self
    }

    /// The bound device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Runs one instance per seed vertex (the common case: every paper
    /// algorithm except multi-dimensional random walk starts an instance
    /// from a single source, §IV-A).
    pub fn run_single_seeds(&self, seeds: &[VertexId]) -> SampleOutput {
        let sets: Vec<Vec<VertexId>> = seeds.iter().map(|&s| vec![s]).collect();
        self.run(&sets)
    }

    /// Memory-bounded run: processes single-seed instances in chunks of
    /// `chunk_size`, handing each finished instance's edges to `sink`
    /// (global instance index, edges) instead of materializing every
    /// instance at once — the right shape for corpus generation over
    /// millions of walks. Returns the merged stats.
    pub fn run_chunked(
        &self,
        seeds: &[VertexId],
        chunk_size: usize,
        mut sink: impl FnMut(usize, Vec<(VertexId, VertexId)>),
    ) -> csaw_gpu::stats::SimStats {
        assert!(chunk_size > 0, "chunk size must be positive");
        let mut stats = csaw_gpu::stats::SimStats::new();
        for (chunk_idx, chunk) in seeds.chunks(chunk_size).enumerate() {
            let base = chunk_idx * chunk_size;
            // Instance ids stay global so RNG streams (and thus outputs)
            // are identical to an unchunked run.
            let tasks: Vec<(u32, Vec<VertexId>)> =
                chunk.iter().enumerate().map(|(i, &s)| ((base + i) as u32, vec![s])).collect();
            let graph = self.graph;
            let algo = self.algo;
            let opts = &self.opts;
            let launch = self.device.launch(tasks, move |_, (instance, seeds)| {
                run_instance(graph, algo, opts, instance, &seeds)
            });
            merge_launch_stats(&mut stats, &launch);
            for (i, inst) in launch.outputs.into_iter().enumerate() {
                sink(base + i, inst);
            }
        }
        stats
    }

    /// Runs one instance per seed *set* (multi-dimensional random walk
    /// pools `FrontierSize` seeds per instance).
    pub fn run(&self, seed_sets: &[Vec<VertexId>]) -> SampleOutput {
        let t0 = std::time::Instant::now();
        let tasks: Vec<(u32, &Vec<VertexId>)> =
            seed_sets.iter().enumerate().map(|(i, s)| (i as u32, s)).collect();
        let graph = self.graph;
        let algo = self.algo;
        let opts = &self.opts;
        let launch = self.device.launch(tasks, move |_, (instance, seeds)| {
            run_instance(graph, algo, opts, instance, seeds)
        });
        let mut stats = SimStats::new();
        merge_launch_stats(&mut stats, &launch);
        SampleOutput {
            instances: launch.outputs,
            stats,
            warp_cycles: launch.warp_cycles,
            wall_seconds: t0.elapsed().as_secs_f64(),
        }
    }
}

/// Dispatches the without-replacement SELECT per the run options.
fn run_select(
    biases: &[f64],
    k: usize,
    opts: &RunOptions,
    rng: &mut Philox,
    stats: &mut SimStats,
) -> Vec<usize> {
    if opts.use_simt_select && opts.select.strategy != SelectStrategy::Updated {
        select_without_replacement_simt(biases, k, opts.select, rng, stats).selected
    } else {
        select_without_replacement(biases, k, opts.select, rng, stats)
    }
}

/// Bytes read from global memory to gather one neighbor list entry:
/// 4-byte vertex id (+4-byte weight when the graph is weighted).
fn gather_bytes(g: &Csr, deg: usize) -> usize {
    // Two row-pointer words + the adjacency slice.
    16 + deg * (4 + if g.is_weighted() { 4 } else { 0 })
}

/// Executes one full sampling instance; returns its sampled edges and
/// private stats (merged by the device).
fn run_instance(
    g: &Csr,
    algo: &dyn Algorithm,
    opts: &RunOptions,
    instance: u32,
    seeds: &[VertexId],
) -> (Vec<(VertexId, VertexId)>, SimStats) {
    let cfg = algo.config();
    let mut stats = SimStats::new();
    let mut rng = Philox::for_task(opts.seed, instance as u64);
    let mut out: Vec<(VertexId, VertexId)> = Vec::new();

    let mut pool: Vec<PoolEntry> = seeds.iter().map(|&v| PoolEntry { v, prev: None }).collect();
    let mut visited: HashSet<VertexId> =
        if cfg.without_replacement { seeds.iter().copied().collect() } else { HashSet::new() };
    let home = seeds.first().copied().unwrap_or(0);

    for _step in 0..cfg.depth {
        if pool.is_empty() {
            break;
        }
        match cfg.frontier {
            FrontierMode::IndependentPerVertex => {
                let frontier = std::mem::take(&mut pool);
                stats.frontier_ops += frontier.len() as u64;
                for entry in frontier {
                    expand_independent(
                        g,
                        algo,
                        &cfg,
                        opts,
                        entry,
                        home,
                        &mut rng,
                        &mut stats,
                        &mut visited,
                        &mut pool,
                        &mut out,
                    );
                }
            }
            FrontierMode::SharedLayer => {
                expand_layer(
                    g,
                    algo,
                    &cfg,
                    opts,
                    &mut pool,
                    &mut rng,
                    &mut stats,
                    &mut visited,
                    &mut out,
                );
            }
            FrontierMode::BiasedReplace => {
                expand_biased_replace(
                    g, algo, opts, &mut pool, home, &mut rng, &mut stats, &mut out,
                );
            }
        }
    }
    (out, stats)
}

/// Expands one frontier vertex with its own neighbor pool (neighbor
/// sampling, forest fire, snowball, and all walk variants).
#[allow(clippy::too_many_arguments)]
fn expand_independent(
    g: &Csr,
    algo: &dyn Algorithm,
    cfg: &AlgoConfig,
    opts: &RunOptions,
    entry: PoolEntry,
    home: VertexId,
    rng: &mut Philox,
    stats: &mut SimStats,
    visited: &mut HashSet<VertexId>,
    next_pool: &mut Vec<PoolEntry>,
    out: &mut Vec<(VertexId, VertexId)>,
) {
    let v = entry.v;
    let neighbors = g.neighbors(v);
    stats.read_gmem(gather_bytes(g, neighbors.len()));

    if neighbors.is_empty() {
        match algo.on_dead_end(g, v, home, rng) {
            UpdateAction::Add(w) => push_pool(
                cfg,
                opts.select.detector,
                visited,
                next_pool,
                PoolEntry { v: w, prev: Some(v) },
                stats,
            ),
            UpdateAction::Discard => {}
        }
        return;
    }

    let k = cfg.neighbor_size.realize(neighbors.len(), rng);
    if k == 0 {
        return;
    }

    let cands: Vec<EdgeCand> = neighbors
        .iter()
        .enumerate()
        .map(|(i, &u)| EdgeCand { v, u, weight: g.edge_weight(v, i), prev: entry.prev })
        .collect();
    let biases: Vec<f64> = cands.iter().map(|c| algo.edge_bias(g, c)).collect();
    stats.warp_cycles += biases.len().div_ceil(32) as u64; // bias evaluation

    let picks: Vec<usize> = if cfg.without_replacement {
        run_select(&biases, k, opts, rng, stats)
    } else {
        // Walk-style with replacement: k independent draws.
        (0..k).filter_map(|_| select_one(&biases, rng, stats)).collect()
    };

    for idx in picks {
        let mut cand = cands[idx];
        if let Some(w) = algo.accept(g, &cand, rng) {
            if w == v {
                // Rejected move (metropolis-hastings stays): the step is
                // consumed, the walker remains at v.
                push_pool(cfg, opts.select.detector, visited, next_pool, entry, stats);
                continue;
            }
            cand.u = w;
        }
        out.push((cand.v, cand.u));
        match algo.update(g, &cand, home, rng) {
            UpdateAction::Add(w) => push_pool(
                cfg,
                opts.select.detector,
                visited,
                next_pool,
                PoolEntry { v: w, prev: Some(v) },
                stats,
            ),
            UpdateAction::Discard => {}
        }
    }
}

/// Layer sampling: one shared neighbor pool for the whole frontier, from
/// which `NeighborSize` vertices are selected per layer (§II-A).
#[allow(clippy::too_many_arguments)]
fn expand_layer(
    g: &Csr,
    algo: &dyn Algorithm,
    cfg: &AlgoConfig,
    opts: &RunOptions,
    pool: &mut Vec<PoolEntry>,
    rng: &mut Philox,
    stats: &mut SimStats,
    visited: &mut HashSet<VertexId>,
    out: &mut Vec<(VertexId, VertexId)>,
) {
    let frontier = std::mem::take(pool);
    stats.frontier_ops += frontier.len() as u64;
    let mut cands: Vec<EdgeCand> = Vec::new();
    for entry in &frontier {
        let neighbors = g.neighbors(entry.v);
        stats.read_gmem(gather_bytes(g, neighbors.len()));
        cands.extend(neighbors.iter().enumerate().map(|(i, &u)| EdgeCand {
            v: entry.v,
            u,
            weight: g.edge_weight(entry.v, i),
            prev: entry.prev,
        }));
    }
    if cands.is_empty() {
        return;
    }
    let k = cfg.neighbor_size.realize(cands.len(), rng);
    let biases: Vec<f64> = cands.iter().map(|c| algo.edge_bias(g, c)).collect();
    stats.warp_cycles += biases.len().div_ceil(32) as u64;
    for idx in run_select(&biases, k, opts, rng, stats) {
        let cand = cands[idx];
        out.push((cand.v, cand.u));
        match algo.update(g, &cand, cand.v, rng) {
            UpdateAction::Add(w) => push_pool(
                cfg,
                opts.select.detector,
                visited,
                pool,
                PoolEntry { v: w, prev: Some(cand.v) },
                stats,
            ),
            UpdateAction::Discard => {}
        }
    }
}

/// Multi-dimensional random walk (Fig. 4): VERTEXBIAS selects one pool
/// vertex, one of its neighbors is sampled, and the neighbor replaces the
/// pool vertex.
#[allow(clippy::too_many_arguments)]
fn expand_biased_replace(
    g: &Csr,
    algo: &dyn Algorithm,
    _opts: &RunOptions,
    pool: &mut Vec<PoolEntry>,
    home: VertexId,
    rng: &mut Philox,
    stats: &mut SimStats,
    out: &mut Vec<(VertexId, VertexId)>,
) {
    // Frontier selection by VERTEXBIAS (Fig. 2b line 4).
    let vbiases: Vec<f64> = pool.iter().map(|e| algo.vertex_bias(g, e.v)).collect();
    stats.read_gmem(4 * pool.len()); // degree reads for the biases
    let Some(j) = select_one(&vbiases, rng, stats) else {
        pool.clear();
        return;
    };
    let entry = pool[j];
    let v = entry.v;
    let neighbors = g.neighbors(v);
    stats.read_gmem(gather_bytes(g, neighbors.len()));

    if neighbors.is_empty() {
        match algo.on_dead_end(g, v, home, rng) {
            UpdateAction::Add(w) => pool[j] = PoolEntry { v: w, prev: Some(v) },
            UpdateAction::Discard => {
                pool.swap_remove(j);
            }
        }
        return;
    }

    let cands: Vec<EdgeCand> = neighbors
        .iter()
        .enumerate()
        .map(|(i, &u)| EdgeCand { v, u, weight: g.edge_weight(v, i), prev: entry.prev })
        .collect();
    let biases: Vec<f64> = cands.iter().map(|c| algo.edge_bias(g, c)).collect();
    stats.warp_cycles += biases.len().div_ceil(32) as u64;
    let Some(idx) = select_one(&biases, rng, stats) else {
        pool.swap_remove(j);
        return;
    };
    let cand = cands[idx];
    out.push((cand.v, cand.u));
    match algo.update(g, &cand, home, rng) {
        UpdateAction::Add(w) => pool[j] = PoolEntry { v: w, prev: Some(v) },
        UpdateAction::Discard => {
            pool.swap_remove(j);
        }
    }
    stats.frontier_ops += 1;
}

/// Inserts into the next frontier pool, honoring without-replacement.
/// The visited check is the detector-dependent cost Fig. 12 compares
/// (linear search over the sampled list vs. one bitmap probe).
fn push_pool(
    cfg: &AlgoConfig,
    detector: crate::collision::DetectorKind,
    visited: &mut HashSet<VertexId>,
    pool: &mut Vec<PoolEntry>,
    entry: PoolEntry,
    stats: &mut SimStats,
) {
    if cfg.without_replacement {
        crate::collision::charge_visited_check(detector, visited.len(), stats);
        if !visited.insert(entry.v) {
            return; // already sampled once (§II-A)
        }
    }
    stats.frontier_ops += 1;
    pool.push(entry);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::NeighborSize;
    use csaw_graph::generators::toy_graph;

    /// Minimal in-test algorithm: unbiased neighbor sampling.
    struct TestNs {
        ns: usize,
        depth: usize,
    }
    impl Algorithm for TestNs {
        fn name(&self) -> &'static str {
            "test-ns"
        }
        fn config(&self) -> AlgoConfig {
            AlgoConfig {
                depth: self.depth,
                neighbor_size: NeighborSize::Constant(self.ns),
                frontier: FrontierMode::IndependentPerVertex,
                without_replacement: true,
            }
        }
    }

    /// Unbiased walk of fixed length.
    struct TestWalk {
        len: usize,
    }
    impl Algorithm for TestWalk {
        fn name(&self) -> &'static str {
            "test-walk"
        }
        fn config(&self) -> AlgoConfig {
            AlgoConfig {
                depth: self.len,
                neighbor_size: NeighborSize::Constant(1),
                frontier: FrontierMode::IndependentPerVertex,
                without_replacement: false,
            }
        }
    }

    #[test]
    fn walk_has_requested_length_and_valid_edges() {
        let g = toy_graph();
        let algo = TestWalk { len: 20 };
        let out = Sampler::new(&g, &algo).run_single_seeds(&[8, 0, 5]);
        assert_eq!(out.instances.len(), 3);
        for inst in &out.instances {
            assert_eq!(inst.len(), 20, "toy graph has no dead ends");
            for &(v, u) in inst {
                assert!(g.has_edge(v, u), "non-edge ({v},{u}) sampled");
            }
            // Path property: consecutive edges chain.
            for w in inst.windows(2) {
                assert_eq!(w[0].1, w[1].0, "walk must be connected");
            }
        }
    }

    #[test]
    fn neighbor_sampling_respects_ns_and_depth() {
        let g = toy_graph();
        let algo = TestNs { ns: 2, depth: 2 };
        let out = Sampler::new(&g, &algo).run_single_seeds(&[8]);
        let inst = &out.instances[0];
        // Depth 2, NS 2: ≤ 2 + 4 edges; all must be real edges.
        assert!(inst.len() <= 6, "{inst:?}");
        assert!(!inst.is_empty());
        for &(v, u) in inst {
            assert!(g.has_edge(v, u));
        }
    }

    #[test]
    fn without_replacement_never_expands_twice() {
        let g = toy_graph();
        let algo = TestNs { ns: 8, depth: 6 };
        let out = Sampler::new(&g, &algo).run_single_seeds(&[0, 5, 8, 12]);
        for inst in &out.instances {
            let mut expanded: Vec<VertexId> = inst.iter().map(|&(v, _)| v).collect();
            let unique: HashSet<_> = expanded.iter().copied().collect();
            expanded.sort_unstable();
            // A vertex may appear as source of several edges within one
            // step (NS > 1) but must never be *expanded* in two steps. With
            // ns=8 ≥ max degree, re-expansion would mean duplicate (v, u)
            // pairs.
            let mut pairs = inst.clone();
            pairs.sort_unstable();
            let before = pairs.len();
            pairs.dedup();
            assert_eq!(pairs.len(), before, "duplicate sampled edge implies re-expansion");
            assert!(!unique.is_empty());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let g = toy_graph();
        let algo = TestWalk { len: 50 };
        let a = Sampler::new(&g, &algo).run_single_seeds(&[1, 2, 3, 4]);
        let b = Sampler::new(&g, &algo).run_single_seeds(&[1, 2, 3, 4]);
        assert_eq!(a.instances, b.instances);
    }

    #[test]
    fn different_seed_changes_output() {
        let g = toy_graph();
        let algo = TestWalk { len: 50 };
        let a = Sampler::new(&g, &algo).run_single_seeds(&[1, 2, 3]);
        let b = Sampler::new(&g, &algo)
            .with_options(RunOptions { seed: 999, ..Default::default() })
            .run_single_seeds(&[1, 2, 3]);
        assert_ne!(a.instances, b.instances);
    }

    #[test]
    fn dead_end_terminates_by_default() {
        // Star with edges only out of 0: vertex 1.. have no out-edges.
        let g = csaw_graph::CsrBuilder::new().add_edge(0, 1).add_edge(0, 2).build();
        let algo = TestWalk { len: 10 };
        let out = Sampler::new(&g, &algo).run_single_seeds(&[0]);
        assert_eq!(out.instances[0].len(), 1, "one hop then dead end");
    }

    #[test]
    fn empty_seed_list() {
        let g = toy_graph();
        let algo = TestWalk { len: 5 };
        let out = Sampler::new(&g, &algo).run_single_seeds(&[]);
        assert!(out.instances.is_empty());
        assert_eq!(out.sampled_edges(), 0);
    }

    #[test]
    fn simt_select_option_is_distribution_equivalent() {
        use std::collections::HashMap;
        let g = toy_graph();
        let algo = TestNs { ns: 2, depth: 1 };
        let freq = |use_simt: bool| {
            let opts = RunOptions { use_simt_select: use_simt, ..Default::default() };
            let out = Sampler::new(&g, &algo).with_options(opts).run_single_seeds(&vec![8; 40_000]);
            let mut counts: HashMap<u32, usize> = HashMap::new();
            for inst in &out.instances {
                for &(_, u) in inst {
                    *counts.entry(u).or_default() += 1;
                }
            }
            counts
        };
        let (a, b) = (freq(false), freq(true));
        for &u in g.neighbors(8) {
            let fa = a[&u] as f64 / 40_000.0;
            let fb = b[&u] as f64 / 40_000.0;
            assert!((fa - fb).abs() < 0.02, "u={u}: round {fa} vs simt {fb}");
        }
    }

    #[test]
    fn chunked_run_matches_unchunked() {
        let g = toy_graph();
        let algo = TestWalk { len: 15 };
        let seeds: Vec<u32> = (0..23).map(|i| i % 13).collect();
        let full = Sampler::new(&g, &algo).run_single_seeds(&seeds);
        for chunk in [1usize, 4, 7, 23, 100] {
            let mut collected: Vec<Option<Vec<(u32, u32)>>> = vec![None; seeds.len()];
            let stats = Sampler::new(&g, &algo).run_chunked(&seeds, chunk, |i, edges| {
                collected[i] = Some(edges);
            });
            let collected: Vec<_> = collected.into_iter().map(Option::unwrap).collect();
            assert_eq!(collected, full.instances, "chunk={chunk}");
            // Full-stats equality, not just sampled_edges: both paths fold
            // every launch through `merge_launch_stats`, and chunking only
            // regroups instances (global ids keep RNG streams fixed), so
            // every counter must match the unchunked run exactly.
            assert_eq!(stats, full.stats, "chunk={chunk}");
        }
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn chunked_run_rejects_zero_chunk() {
        let g = toy_graph();
        let algo = TestWalk { len: 2 };
        Sampler::new(&g, &algo).run_chunked(&[0], 0, |_, _| {});
    }

    #[test]
    fn stats_accumulate_work() {
        let g = toy_graph();
        let algo = TestNs { ns: 2, depth: 2 };
        let out = Sampler::new(&g, &algo).run_single_seeds(&[8, 0]);
        assert!(out.stats.rng_draws > 0);
        assert!(out.stats.selections > 0);
        assert!(out.stats.gmem_bytes > 0);
        assert_eq!(out.stats.sampled_edges, out.sampled_edges());
        assert_eq!(out.warp_cycles.len(), 2);
    }
}
