//! The shared expand step — **one** implementation of the paper's Fig. 2b
//! inner loop for every runtime.
//!
//! The paper's whole argument is that a single MAIN loop plus three user
//! hooks expresses every sampling and random-walk algorithm. This module
//! makes the reproduction honor that claim structurally: the full
//! per-entry expand pipeline
//!
//! ```text
//! dead-end hook → NeighborSize::realize → candidate/bias construction
//!   → SELECT (with/without replacement) → accept → edge emit
//!   → UPDATE → frontier push
//! ```
//!
//! lives in [`StepKernel`] and nowhere else. Runtimes differ only in two
//! small traits:
//!
//! - [`NeighborAccess`] — where adjacency comes from and what the memory
//!   system charges for it: the in-memory CSR ([`CsrAccess`]), a
//!   [`PartitionSet`] slice on the out-of-memory device
//!   ([`PartitionAccess`]), or a demand-paged unified-memory cache (the
//!   comparator in `csaw-oom` wraps its page cache in this trait).
//! - [`FrontierSink`] — where sampled edges and next-depth frontier
//!   entries go: the engine's per-instance pool ([`PoolSink`]), the OOM
//!   scheduler's visited-shard + cross-partition outbox, or the unified
//!   runner's per-instance vectors.
//!
//! Every expansion draws from a counter-based stream keyed by
//! [`csaw_gpu::rng::task_key`]`(instance, depth, vertex, trial)`, so the
//! sampled output of a given `(graph, algorithm, seed)` triple is
//! identical no matter which runtime executes it or in what order —
//! the property the cross-runtime equivalence tests pin down.

use crate::alias::{AliasBuildScratch, AliasTable};
use crate::api::{AlgoConfig, Algorithm, EdgeCand, UpdateAction};
use crate::collision::{charge_visited_check, DetectorKind};
use crate::ctps_cache::{self, CacheOutcome, CtpsCache};
use crate::method::{
    choose_method, MethodContext, MethodPolicy, RejectionFeedback, SelectMethod,
    REJECTION_MAX_TRIALS,
};
use crate::select::{
    select_one_preloaded, select_one_rejection, select_one_uniform, select_one_with,
    select_without_replacement_into, select_without_replacement_preloaded_into,
    select_without_replacement_uniform_into, SelectConfig, SelectScratch, SelectStrategy,
};
use crate::select_simt::select_without_replacement_simt_into;
use csaw_gpu::rng::task_key;
use csaw_gpu::stats::SimStats;
use csaw_gpu::Philox;
use csaw_graph::{Csr, GraphSnapshot, GraphView, PartitionSet, VertexId, Weight};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};

/// Sentinel "vertex" keying the RNG stream of pool-level steps (shared
/// layer and biased replace), which expand a whole pool rather than one
/// vertex. Real vertex ids never reach `u32::MAX` (CSR construction
/// would need ~4G vertices).
pub const POOL_STEP_VERTEX: VertexId = VertexId::MAX;

/// One frontier entry as the kernel sees it: the coordinates that key its
/// RNG stream plus the walk predecessor (the paper's `SOURCE(e.v)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepEntry {
    /// Sampling instance the entry belongs to (globally unique across
    /// chunks/GPUs — runtimes add their instance base before calling in).
    pub instance: u32,
    /// The instance's depth when the entry was enqueued.
    pub depth: u32,
    /// The vertex to expand.
    pub vertex: VertexId,
    /// The vertex the instance explored immediately before this one.
    pub prev: Option<VertexId>,
    /// Ordinal among duplicate `(instance, depth, vertex)` entries; 0
    /// unless a with-replacement UPDATE inserted the same vertex twice in
    /// one step (see [`TrialCounter`]).
    pub trial: u32,
}

/// One slot of a frontier pool: the vertex plus its walk predecessor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolSlot {
    /// The pooled vertex.
    pub vertex: VertexId,
    /// Its predecessor in the instance's exploration, if any.
    pub prev: Option<VertexId>,
}

impl PoolSlot {
    /// A first-hop slot with no predecessor.
    pub fn seed(vertex: VertexId) -> Self {
        PoolSlot { vertex, prev: None }
    }
}

/// The shared state of one vertex-group build (see
/// [`StepKernel::prepare_group`]): the stats each group member replays in
/// place of recomputing the bias fill and CTPS rebuild, plus the
/// positive-bias candidate count the preloaded without-replacement SELECT
/// needs. The lane data itself lives in the [`StepScratch`] the build
/// filled.
#[derive(Debug, Clone)]
pub struct SharedBuild {
    /// Stats the EDGEBIAS lane fill charged (replayed once per entry).
    pub fill_delta: SimStats,
    /// Stats the CTPS rebuild charged (replayed once per entry when
    /// without replacement, once per *pick* with replacement — mirroring
    /// `select_one_with`'s per-pick rebuild).
    pub rebuild_delta: SimStats,
    /// Number of positive-bias candidates in the shared lane.
    pub selectable: usize,
}

/// Bytes read from global memory to gather one adjacency list: two
/// row-pointer words plus the neighbor slice (+4 bytes/edge of weights on
/// weighted graphs). Shared by every [`NeighborAccess`] implementation so
/// all runtimes charge the gather identically.
pub fn gather_bytes(weighted: bool, deg: usize) -> usize {
    16 + deg * (4 + if weighted { 4 } else { 0 })
}

/// One gathered adjacency list: borrowed CSR ranges (neighbors + weights)
/// plus the full graph for the algorithm hooks, bundled under a single
/// borrow of the access. The kernel builds candidates *from* these slices
/// on demand instead of materializing a `Vec<EdgeCand>` per step —
/// [`Gathered::edge`] is the paper's `e = (v, u, w)` constructed in
/// registers at use sites.
pub struct Gathered<'a> {
    /// The full logical graph at this access's epoch (hooks may inspect
    /// global structure such as degrees).
    pub graph: GraphView<'a>,
    /// `v`'s neighbor list.
    pub neighbors: &'a [VertexId],
    /// Per-neighbor edge weights (`None` on unweighted graphs).
    pub weights: Option<&'a [Weight]>,
}

impl Gathered<'_> {
    /// Candidate edge `i` of the gathered adjacency, materialized on
    /// demand (no allocation; `EdgeCand` is `Copy`-sized).
    #[inline]
    pub fn edge(&self, i: usize, v: VertexId, prev: Option<VertexId>) -> EdgeCand {
        EdgeCand { v, u: self.neighbors[i], weight: self.weights.map_or(1.0, |w| w[i]), prev }
    }
}

/// Where the kernel's GATHERNEIGHBORS reads adjacency from, and what the
/// runtime's memory system charges for it.
pub trait NeighborAccess {
    /// The full logical graph at this access's epoch (algorithm hooks may
    /// inspect global structure such as degrees).
    fn graph(&self) -> GraphView<'_>;

    /// Gathers `v`'s neighbor list and edge weights as borrowed slices,
    /// charging whatever the runtime models for the read (global-memory
    /// bytes, a partition transfer, a page fault...).
    fn gather(&mut self, v: VertexId, stats: &mut SimStats) -> Gathered<'_>;

    /// Re-borrows `v`'s adjacency **without charging** the memory system.
    /// Used by the CTPS-cache hit path, whose cost model charges the
    /// cached-table read (plus the picked neighbors) instead of a full
    /// adjacency gather.
    fn fetch(&mut self, v: VertexId) -> Gathered<'_>;

    /// Residency epoch tagging cached per-vertex state. Runtimes that
    /// change what adjacency is device-resident mid-run (the out-of-memory
    /// scheduler's partition swaps) bump this so stale
    /// [`crate::ctps_cache::CtpsCache`] entries are dropped — a resident
    /// cache on a real GPU dies with the partition's device memory.
    /// Fully-resident runtimes keep the default constant epoch.
    fn epoch(&self) -> u64 {
        0
    }

    /// Cache-invalidation tag for *vertex* `v`'s cached per-vertex state
    /// (CTPS/alias entries). Defaults to the access-wide [`Self::epoch`];
    /// snapshot accesses over a mutable graph override it with the
    /// vertex's mutation version so an epoch bump only invalidates the
    /// vertices the mutation actually touched — hot untouched vertices
    /// keep their entries across epochs.
    fn entry_epoch(&self, v: VertexId) -> u64 {
        let _ = v;
        self.epoch()
    }

    /// Hints the host memory system to pull `v`'s row-pointer cache line
    /// toward the core — the depth-synchronous driver issues this a
    /// configurable distance ahead of expansion (ThunderRW's step
    /// interleaving). Purely a wall-clock hint: charges nothing, changes
    /// nothing observable, and defaults to a no-op for accesses whose
    /// adjacency is not a flat in-RAM array.
    fn prefetch_index(&self, v: VertexId) {
        let _ = v;
    }

    /// Hints the host memory system to pull the head of `v`'s neighbor
    /// slice toward the core (see [`Self::prefetch_index`]).
    fn prefetch_adjacency(&self, v: VertexId) {
        let _ = v;
    }
}

/// In-memory access: the whole CSR is resident; a gather costs its
/// global-memory bytes.
pub struct CsrAccess<'g> {
    /// The resident graph.
    pub graph: &'g Csr,
}

impl NeighborAccess for CsrAccess<'_> {
    fn graph(&self) -> GraphView<'_> {
        self.graph.view()
    }

    fn gather(&mut self, v: VertexId, stats: &mut SimStats) -> Gathered<'_> {
        stats.read_gmem(gather_bytes(self.graph.is_weighted(), self.graph.degree(v)));
        self.fetch(v)
    }

    fn fetch(&mut self, v: VertexId) -> Gathered<'_> {
        Gathered {
            graph: self.graph.view(),
            neighbors: self.graph.neighbors(v),
            weights: self.graph.neighbor_weights(v),
        }
    }

    fn prefetch_index(&self, v: VertexId) {
        #[cfg(target_arch = "x86_64")]
        {
            let rp = self.graph.row_ptr();
            if let Some(p) = rp.get(v as usize) {
                // SAFETY: `p` points into a live slice; _mm_prefetch has
                // no architectural effect beyond cache population.
                unsafe {
                    std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(
                        p as *const usize as *const i8,
                    );
                }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = v;
    }

    fn prefetch_adjacency(&self, v: VertexId) {
        #[cfg(target_arch = "x86_64")]
        {
            let n = self.graph.neighbors(v);
            let bytes = std::mem::size_of_val(n).min(256);
            let base = n.as_ptr() as *const i8;
            let mut off = 0;
            // Up to four cache lines of the neighbor slice — enough for
            // the low-degree rows that dominate power-law frontiers.
            while off < bytes {
                // SAFETY: `off < bytes <= n.len() * 4`, so the address
                // stays inside the slice; prefetch is side-effect free.
                unsafe {
                    std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(
                        base.wrapping_add(off),
                    );
                }
                off += 64;
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = v;
    }
}

/// Partition access: adjacency is read from the owning partition's
/// resident copy (the out-of-memory scheduler guarantees residency before
/// the kernel runs). Charges the same gather bytes as [`CsrAccess`], so
/// in-memory and out-of-memory runs of the same sample count identical
/// global-memory traffic.
pub struct PartitionAccess<'g> {
    /// The full graph, for the algorithm hooks.
    pub graph: &'g Csr,
    /// The partitioning whose slices serve the gathers.
    pub parts: &'g PartitionSet,
    /// Residency epoch of the stream this access serves (bumped by the
    /// scheduler whenever device-resident partitions change).
    pub epoch: u64,
}

impl NeighborAccess for PartitionAccess<'_> {
    fn graph(&self) -> GraphView<'_> {
        self.graph.view()
    }

    fn gather(&mut self, v: VertexId, stats: &mut SimStats) -> Gathered<'_> {
        let p = self.parts.get(self.parts.partition_of(v));
        stats.read_gmem(gather_bytes(self.graph.is_weighted(), p.degree(v)));
        self.fetch(v)
    }

    fn fetch(&mut self, v: VertexId) -> Gathered<'_> {
        let p = self.parts.get(self.parts.partition_of(v));
        Gathered {
            graph: self.graph.view(),
            neighbors: p.neighbors(v),
            weights: p.neighbor_weights(v),
        }
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// Snapshot access: adjacency comes from a [`GraphSnapshot`] of a mutable
/// graph — base CSR slices for untouched vertices, merged overlay slices
/// for mutated ones. Charges the same gather bytes as [`CsrAccess`] over
/// the *logical* degree, so a snapshot run and a run on the compacted CSR
/// of the same epoch count identical global-memory traffic.
///
/// `entry_epoch` reports the per-vertex 1-hop mutation version
/// ([`GraphSnapshot::entry_version`]), not the graph epoch: cached
/// CTPS/alias entries for vertices whose neighborhood is untouched
/// (tag 0, the same tag [`CsrAccess`] uses) stay valid across epochs and
/// across compaction, while entries whose bias inputs an edit touched —
/// the edited vertex *and* its neighbors, since static biases such as
/// degree bias read the far endpoint's adjacency — go stale lazily the
/// next time they are looked up.
pub struct DeltaAccess<'g> {
    /// The frozen snapshot this access reads.
    pub snapshot: &'g GraphSnapshot,
}

impl NeighborAccess for DeltaAccess<'_> {
    fn graph(&self) -> GraphView<'_> {
        self.snapshot.view()
    }

    fn gather(&mut self, v: VertexId, stats: &mut SimStats) -> Gathered<'_> {
        let view = self.snapshot.view();
        stats.read_gmem(gather_bytes(view.is_weighted(), view.degree(v)));
        self.fetch(v)
    }

    fn fetch(&mut self, v: VertexId) -> Gathered<'_> {
        let view = self.snapshot.view();
        Gathered { graph: view, neighbors: view.neighbors(v), weights: view.neighbor_weights(v) }
    }

    fn epoch(&self) -> u64 {
        self.snapshot.epoch()
    }

    fn entry_epoch(&self, v: VertexId) -> u64 {
        self.snapshot.entry_version(v)
    }
}

/// Snapshot access for the out-of-memory scheduler: untouched vertices
/// read their owning partition's resident slice (partitions are built
/// from the snapshot's base CSR), mutated vertices read their merged
/// overlay slice (the overlay is small and host-pinned; its transfer is
/// not separately modeled — see DESIGN.md). `entry_epoch` composes the
/// stream's residency epoch with the vertex's mutation version so either
/// a partition swap *or* a mutation invalidates a cached entry.
pub struct DeltaPartitionAccess<'g> {
    /// The frozen snapshot this access reads.
    pub snapshot: &'g GraphSnapshot,
    /// Partitioning of the snapshot's base CSR.
    pub parts: &'g PartitionSet,
    /// Residency epoch of the stream this access serves.
    pub residency_epoch: u64,
}

impl NeighborAccess for DeltaPartitionAccess<'_> {
    fn graph(&self) -> GraphView<'_> {
        self.snapshot.view()
    }

    fn gather(&mut self, v: VertexId, stats: &mut SimStats) -> Gathered<'_> {
        let deg = match self.snapshot.delta_adjacency(v) {
            Some((n, _)) => n.len(),
            None => self.parts.get(self.parts.partition_of(v)).degree(v),
        };
        stats.read_gmem(gather_bytes(self.snapshot.view().is_weighted(), deg));
        self.fetch(v)
    }

    fn fetch(&mut self, v: VertexId) -> Gathered<'_> {
        let graph = self.snapshot.view();
        match self.snapshot.delta_adjacency(v) {
            Some((neighbors, weights)) => Gathered { graph, neighbors, weights },
            None => {
                let p = self.parts.get(self.parts.partition_of(v));
                Gathered { graph, neighbors: p.neighbors(v), weights: p.neighbor_weights(v) }
            }
        }
    }

    fn epoch(&self) -> u64 {
        self.residency_epoch
    }

    fn entry_epoch(&self, v: VertexId) -> u64 {
        (self.residency_epoch << 32) | (self.snapshot.entry_version(v) & 0xffff_ffff)
    }
}

/// Where the kernel's outputs go: sampled edges (`emit`) and next-depth
/// frontier offers (`push`). The sink owns without-replacement filtering
/// and whatever staging its runtime needs (pool push, partition queue +
/// outbox, per-instance vectors).
pub trait FrontierSink {
    /// Records a sampled edge for `entry`'s instance.
    fn emit(&mut self, entry: &StepEntry, edge: (VertexId, VertexId));

    /// Offers `vertex` (with predecessor `prev`) to `entry`'s instance at
    /// depth `entry.depth + 1`. The kernel has already checked the depth
    /// budget; the sink decides acceptance (visited filter) and placement.
    fn push(
        &mut self,
        entry: &StepEntry,
        vertex: VertexId,
        prev: Option<VertexId>,
        stats: &mut SimStats,
    );
}

/// The engine-style sink: edges append to one output vector, offers pass
/// the without-replacement visited filter (charged per the collision
/// detector, the Fig. 12 cost) and land in the instance's next pool.
/// Shared by the in-memory engine, the unified-memory comparator, and the
/// out-of-memory pooled path — anything that keeps per-instance pools.
pub struct PoolSink<'a> {
    /// Structural config (consulted for `without_replacement`).
    pub cfg: &'a AlgoConfig,
    /// Collision detector whose visited-check cost is charged per offer.
    pub detector: DetectorKind,
    /// The instance's visited set.
    pub visited: &'a mut HashSet<VertexId>,
    /// The instance's next frontier pool.
    pub next: &'a mut Vec<PoolSlot>,
    /// The instance's sampled edges.
    pub out: &'a mut Vec<(VertexId, VertexId)>,
}

impl FrontierSink for PoolSink<'_> {
    fn emit(&mut self, _entry: &StepEntry, edge: (VertexId, VertexId)) {
        self.out.push(edge);
    }

    fn push(
        &mut self,
        _entry: &StepEntry,
        vertex: VertexId,
        prev: Option<VertexId>,
        stats: &mut SimStats,
    ) {
        if self.cfg.without_replacement {
            charge_visited_check(self.detector, self.visited.len(), stats);
            if !self.visited.insert(vertex) {
                return; // already sampled once (§II-A)
            }
        }
        stats.frontier_ops += 1;
        self.next.push(PoolSlot { vertex, prev });
    }
}

/// Emit-only sink for [`StepKernel::expand_replace`]: biased-replace
/// steps mutate the pool in place and never push, so only `emit` is
/// reachable.
pub struct EmitSink<'a>(pub &'a mut Vec<(VertexId, VertexId)>);

impl FrontierSink for EmitSink<'_> {
    fn emit(&mut self, _entry: &StepEntry, edge: (VertexId, VertexId)) {
        self.0.push(edge);
    }

    fn push(&mut self, _e: &StepEntry, _v: VertexId, _p: Option<VertexId>, _s: &mut SimStats) {
        unreachable!("biased-replace steps mutate the pool in place and never push");
    }
}

/// Assigns the schedule-independent `trial` ordinal: the k-th duplicate of
/// `(instance, vertex)` seen since the last [`TrialCounter::reset`] gets
/// trial `k`. Drivers reset the counter at each depth step, so the
/// ordinal is "occurrence index within this instance's frontier at this
/// depth" — well-defined because a single instance's frontier is always
/// processed sequentially, in insertion order, by every runtime.
#[derive(Debug, Default)]
pub struct TrialCounter(HashMap<(u32, VertexId), u32>);

impl TrialCounter {
    /// An empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Next trial ordinal for `(instance, vertex)`.
    pub fn next(&mut self, instance: u32, vertex: VertexId) -> u32 {
        let n = self.0.entry((instance, vertex)).or_insert(0);
        let t = *n;
        *n += 1;
        t
    }

    /// Clears the counter (call at each depth-step boundary).
    pub fn reset(&mut self) {
        self.0.clear();
    }
}

/// Reusable per-worker expand arena: every buffer a step needs —
/// candidate union pool, edge/vertex bias lanes, and the full
/// [`SelectScratch`] — owned once per worker (or stream) and cleared,
/// never dropped, between steps. With a warm scratch a steady-state
/// expand performs **zero heap allocations**; the on-GPU analog is the
/// warp's shared-memory working set, allocated at kernel launch rather
/// than per step.
#[derive(Debug, Default)]
pub struct StepScratch {
    /// Union candidate pool (shared-layer steps gather every frontier
    /// slot's adjacency here; per-vertex steps borrow CSR ranges
    /// directly and leave this untouched).
    cands: Vec<EdgeCand>,
    /// EDGEBIAS lane per candidate.
    biases: Vec<f64>,
    /// The SELECT arena (CTPS, detector bitmap, lane buffers).
    select: SelectScratch,
    /// Alias-method lane: the table rebuilt on an adaptive cache miss
    /// (then cloned into the cache by admission).
    alias: AliasTable,
    /// Vose worklists for the alias lane.
    alias_build: AliasBuildScratch,
    /// Live rejection-acceptance feedback for the method chooser (one per
    /// worker, like the rest of the arena — health is a local property).
    rej_feedback: RejectionFeedback,
    /// Debug-only rebuild lane: cache hits re-derive the CTPS here and
    /// assert it matches the cached bounds bit for bit.
    #[cfg(debug_assertions)]
    dbg_ctps: crate::ctps::Ctps,
    /// Debug-only bias lane: group-shared expansions re-derive each
    /// entry's own EDGEBIAS lane here and assert the shared build (keyed
    /// by vertex alone) really is prev/instance-independent.
    #[cfg(debug_assertions)]
    dbg_biases: Vec<f64>,
}

impl StepScratch {
    /// An empty arena; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }
}

thread_local! {
    static THREAD_SCRATCH: RefCell<StepScratch> = RefCell::new(StepScratch::new());
}

/// Runs `f` with this thread's shared [`StepScratch`] — the
/// one-arena-per-worker pattern for runtimes that launch kernel closures
/// on a thread pool and cannot thread `&mut` scratch through a `Fn`
/// bound. Not reentrant: `f` must not call `with_thread_scratch` again
/// (the inner borrow would panic), which the kernel never does.
pub fn with_thread_scratch<R>(f: impl FnOnce(&mut StepScratch) -> R) -> R {
    THREAD_SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// The shared expand kernel: the Fig. 2b step pipeline bound to one
/// algorithm, SELECT configuration, and RNG seed.
pub struct StepKernel<'a> {
    algo: &'a dyn Algorithm,
    cfg: AlgoConfig,
    select: SelectConfig,
    use_simt_select: bool,
    seed: u64,
    cache: Option<&'a CtpsCache>,
    force_rebuild: bool,
    method_policy: MethodPolicy,
}

impl<'a> StepKernel<'a> {
    /// A kernel for `algo` with the paper's best SELECT configuration.
    pub fn new(algo: &'a dyn Algorithm, seed: u64) -> Self {
        StepKernel {
            algo,
            cfg: algo.config(),
            select: SelectConfig::paper_best(),
            use_simt_select: false,
            seed,
            cache: None,
            force_rebuild: false,
            method_policy: MethodPolicy::ForceIts,
        }
    }

    /// Sets the sampling-method policy. The default,
    /// [`MethodPolicy::ForceIts`], keeps the kernel bit-identical to the
    /// pinned goldens; [`MethodPolicy::Adaptive`] lets
    /// [`crate::method::choose_method`] pick alias/rejection per
    /// expansion (distribution-equal, not bit-equal — the methods consume
    /// different Philox draws).
    pub fn with_method_policy(mut self, policy: MethodPolicy) -> Self {
        self.method_policy = policy;
        self
    }

    /// Overrides the SELECT configuration.
    pub fn with_select(mut self, select: SelectConfig) -> Self {
        self.select = select;
        self
    }

    /// Routes without-replacement SELECT through the lane-level SIMT
    /// executor (distribution-identical; additionally tracks divergence).
    pub fn with_simt_select(mut self, use_simt: bool) -> Self {
        self.use_simt_select = use_simt;
        self
    }

    /// Shares a hot-vertex CTPS cache across the expansions this kernel
    /// runs. Consulted only when the algorithm's edge bias is static and
    /// non-uniform and the SELECT configuration reuses a built CTPS
    /// unmodified (see [`crate::ctps_cache`]); sampled output is
    /// bit-identical with or without it.
    pub fn with_ctps_cache(mut self, cache: Option<&'a CtpsCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Forces every expansion down the materialized rebuild path — no
    /// closed-form uniform selection, no CTPS cache. The bench baseline;
    /// output is bit-identical either way.
    pub fn with_force_rebuild(mut self, force: bool) -> Self {
        self.force_rebuild = force;
        self
    }

    /// True when the SELECT configuration consumes a built CTPS without
    /// mutating it mid-select — the precondition for both the closed-form
    /// uniform path and the CTPS cache. Updated sampling rebuilds the
    /// CTPS per round; the SIMT executor owns its own build.
    fn select_reuses_ctps(&self) -> bool {
        if self.cfg.without_replacement {
            !self.use_simt_select && self.select.strategy != SelectStrategy::Updated
        } else {
            true
        }
    }

    /// The cache, if this kernel's algorithm/SELECT combination may use it.
    fn effective_cache(&self) -> Option<&'a CtpsCache> {
        if self.force_rebuild
            || self.algo.edge_bias_is_uniform()
            || !self.algo.edge_bias_is_static()
            || !self.select_reuses_ctps()
        {
            return None;
        }
        self.cache
    }

    /// True when uniform-bias selection is served closed-form (no bias
    /// lane, no materialized CTPS) — charge-identical and bit-identical
    /// to the materialized path.
    fn uniform_closed_form(&self) -> bool {
        self.algo.edge_bias_is_uniform() && !self.force_rebuild && self.select_reuses_ctps()
    }

    /// The algorithm's structural configuration.
    pub fn cfg(&self) -> &AlgoConfig {
        &self.cfg
    }

    /// The bound algorithm.
    pub fn algo(&self) -> &dyn Algorithm {
        self.algo
    }

    /// The SELECT configuration in effect.
    pub fn select(&self) -> SelectConfig {
        self.select
    }

    /// Expands one frontier entry with its own neighbor pool — the
    /// [`crate::api::FrontierMode::IndependentPerVertex`] step (neighbor
    /// sampling, forest fire, snowball, and all walk variants).
    ///
    /// `home` is the instance's home seed, handed to the `UPDATE` and
    /// dead-end hooks (restart targets).
    pub fn expand<N: NeighborAccess, S: FrontierSink>(
        &self,
        access: &mut N,
        entry: &StepEntry,
        home: VertexId,
        sink: &mut S,
        scratch: &mut StepScratch,
        stats: &mut SimStats,
    ) {
        let rng = Philox::for_task(
            self.seed,
            task_key(entry.instance, entry.depth, entry.vertex, entry.trial),
        );
        self.expand_rng(access, entry, home, rng, sink, scratch, stats)
    }

    /// [`Self::expand`] with the entry's RNG stream supplied by the
    /// caller — the depth-synchronous driver batch-generates every
    /// frontier entry's first Philox block up front (the cuRAND-style
    /// 4-counters-per-call kernel) and hands each stream in via
    /// [`Philox::with_first_block`]. The stream must be positioned at
    /// draw 0 of `task_key(entry.instance, entry.depth, entry.vertex,
    /// entry.trial)` or output determinism is lost.
    #[allow(clippy::too_many_arguments)]
    pub fn expand_rng<N: NeighborAccess, S: FrontierSink>(
        &self,
        access: &mut N,
        entry: &StepEntry,
        home: VertexId,
        mut rng: Philox,
        sink: &mut S,
        scratch: &mut StepScratch,
        stats: &mut SimStats,
    ) {
        let v = entry.vertex;

        // The method chooser covers independent per-vertex, with-
        // replacement, non-uniform expansions — the regime where ITS,
        // alias, and rejection actually compete. Everything else (uniform
        // closed-form, without-replacement collision loops, pool-level
        // steps) keeps its existing ITS-shaped path per the decision
        // table in [`crate::method`].
        if self.method_policy == MethodPolicy::Adaptive
            && !self.force_rebuild
            && !self.cfg.without_replacement
            && !self.algo.edge_bias_is_uniform()
        {
            self.expand_adaptive(access, entry, home, &mut rng, sink, scratch, stats);
            return;
        }

        let cache = self.effective_cache();
        // The 1-hop mutation tag only keys the cache — computing it costs
        // O(overlay ∩ adjacency), so the uncached path must not pay it.
        let epoch = if cache.is_some() { access.entry_epoch(v) } else { 0 };
        if let Some(cache) = cache {
            match cache.lookup_into(v, epoch, &mut scratch.select.ctps) {
                CacheOutcome::Hit { selectable, degree } => {
                    stats.ctps_cache_hits += 1;
                    self.expand_cached(
                        access,
                        entry,
                        home,
                        selectable as usize,
                        degree as usize,
                        &mut rng,
                        sink,
                        scratch,
                        stats,
                    );
                    return;
                }
                CacheOutcome::Miss => stats.ctps_cache_misses += 1,
            }
        }

        let gat = access.gather(v, stats);
        let g = gat.graph;

        if gat.neighbors.is_empty() {
            match self.algo.on_dead_end(g, v, home, &mut rng) {
                UpdateAction::Add(w) => self.offer(entry, w, Some(v), sink, stats),
                UpdateAction::Discard => {}
            }
            return;
        }

        let k = self.cfg.neighbor_size.realize(gat.neighbors.len(), &mut rng);
        if k == 0 {
            return;
        }
        let StepScratch { biases, select, .. } = scratch;
        if self.uniform_closed_form() {
            if self.method_policy == MethodPolicy::Adaptive {
                stats.method_uniform += 1;
            }
            // The bias lane would be all-ones: charge its (skipped) fill
            // and serve SELECT closed-form — bit-identical picks and
            // charges, no lane write, no materialized CTPS.
            let n = gat.neighbors.len();
            #[cfg(debug_assertions)]
            for i in 0..n {
                debug_assert_eq!(
                    self.algo.edge_bias(g, &gat.edge(i, v, entry.prev)),
                    1.0,
                    "edge_bias_is_uniform() contradicted by edge_bias()"
                );
            }
            stats.warp_cycles += n.div_ceil(32) as u64;
            if self.cfg.without_replacement {
                select_without_replacement_uniform_into(n, k, self.select, select, &mut rng, stats);
            } else {
                select.out.clear();
                for _ in 0..k {
                    if let Some(i) = select_one_uniform(n, &mut rng, stats) {
                        select.out.push(i);
                    }
                }
            }
        } else {
            if self.method_policy == MethodPolicy::Adaptive {
                stats.method_its += 1;
            }
            self.fill_biases(&gat, v, entry.prev, biases, stats);
            self.select_picks_into(biases, k, &mut rng, select, stats);
            if let Some(cache) = cache {
                // The select left its pristine CTPS build in the arena
                // (Updated sampling, which masks it in place, never takes
                // the cache path): offer it for admission.
                let selectable = biases.iter().filter(|&&b| b > 0.0).count();
                if selectable > 0 && ctps_cache::widths_agree(&select.ctps, biases) {
                    cache.promote(v, epoch, &select.ctps, selectable as u32, biases.len() as u32);
                }
            }
        }
        self.emit_picks(&gat, entry, home, &select.out, 0, &mut rng, sink, stats);
    }

    /// The CTPS/alias cache this kernel's expansions may consult for
    /// per-vertex state, if any — the depth-synchronous driver prefetches
    /// the owning shard alongside the CSR row. A hint only: over-approxi-
    /// mating (static-bias kernels whose SELECT ends up not consulting the
    /// cache) costs one harmless prefetch, never correctness.
    pub fn prefetch_cache(&self) -> Option<&'a CtpsCache> {
        if self.algo.edge_bias_is_static() {
            self.cache
        } else {
            None
        }
    }

    /// True when co-located frontier entries (same current vertex, same
    /// depth) may legally share one bias fill + CTPS build: the bias is
    /// static (keyed by vertex alone — the CTPS cache's legality
    /// argument), non-uniform (uniform selection is closed-form, there is
    /// no build to share), and SELECT consumes the built CTPS unmodified.
    /// A kernel with a CTPS cache attached already shares builds through
    /// the cache, and an Adaptive with-replacement kernel branches to the
    /// method chooser before the ITS lane — both opt out here. Entries of
    /// a non-shareable kernel still benefit from grouped execution
    /// (sorted-vertex locality, prefetch, batched Philox) via per-entry
    /// [`Self::expand_rng`].
    pub fn group_shareable(&self) -> bool {
        !self.force_rebuild
            && self.algo.edge_bias_is_static()
            && !self.algo.edge_bias_is_uniform()
            && self.select_reuses_ctps()
            && self.effective_cache().is_none()
            && (self.method_policy != MethodPolicy::Adaptive || self.cfg.without_replacement)
    }

    /// Builds the shared per-vertex state one vertex-group of co-located
    /// walkers will reuse: the EDGEBIAS lane in `scratch.biases` and the
    /// CTPS in `scratch.select.ctps`, via an **uncharged** fetch. The
    /// work each walker would have charged for the fill and the rebuild
    /// is captured in the returned deltas; [`Self::expand_in_group`]
    /// replays them per entry so `SimStats` stay charge-identical to
    /// instance-major execution while the actual compute runs once.
    ///
    /// Returns `None` when the group cannot share — empty adjacency
    /// (dead-end hook needs the entry's own RNG) or a degenerate all-zero
    /// bias lane — in which case nothing was charged and the caller falls
    /// back to per-entry [`Self::expand_rng`].
    pub fn prepare_group<N: NeighborAccess>(
        &self,
        access: &mut N,
        v: VertexId,
        prev: Option<VertexId>,
        scratch: &mut StepScratch,
    ) -> Option<SharedBuild> {
        debug_assert!(self.group_shareable(), "prepare_group on a non-shareable kernel");
        let gat = access.fetch(v);
        if gat.neighbors.is_empty() {
            return None;
        }
        let StepScratch { biases, select, .. } = scratch;
        let mut fill_delta = SimStats::new();
        self.fill_biases(&gat, v, prev, biases, &mut fill_delta);
        let mut rebuild_delta = SimStats::new();
        if !select.ctps.rebuild(biases, &mut rebuild_delta) {
            return None;
        }
        let selectable = biases.iter().filter(|&&b| b > 0.0).count();
        Some(SharedBuild { fill_delta, rebuild_delta, selectable })
    }

    /// Expands one entry of a vertex-group against the shared build left
    /// in `scratch` by [`Self::prepare_group`] — same picks, same emitted
    /// edges, same frontier offers, and same stats charges as
    /// [`Self::expand`], with the bias fill and CTPS build(s) replayed
    /// from `build`'s deltas instead of recomputed. The caller supplies
    /// the entry's RNG stream (batched first blocks); `scratch.biases`
    /// and `scratch.select.ctps` must be untouched since `prepare_group`.
    #[allow(clippy::too_many_arguments)]
    pub fn expand_in_group<N: NeighborAccess, S: FrontierSink>(
        &self,
        access: &mut N,
        entry: &StepEntry,
        home: VertexId,
        build: &SharedBuild,
        mut rng: Philox,
        sink: &mut S,
        scratch: &mut StepScratch,
        stats: &mut SimStats,
    ) {
        let v = entry.vertex;
        let gat = access.gather(v, stats);
        debug_assert!(!gat.neighbors.is_empty(), "prepare_group admitted a dead end");
        let k = self.cfg.neighbor_size.realize(gat.neighbors.len(), &mut rng);
        if k == 0 {
            return;
        }
        if self.method_policy == MethodPolicy::Adaptive {
            stats.method_its += 1;
        }
        stats.merge(&build.fill_delta);
        #[cfg(debug_assertions)]
        {
            scratch.dbg_biases.clear();
            scratch.dbg_biases.extend(
                (0..gat.neighbors.len())
                    .map(|i| self.algo.edge_bias(gat.graph, &gat.edge(i, v, entry.prev))),
            );
            assert_eq!(
                scratch.dbg_biases, scratch.biases,
                "edge_bias_is_static() contradicted: v{v}'s bias lane depends on the walker"
            );
        }
        let select = &mut scratch.select;
        if self.cfg.without_replacement {
            // Instance-major charges one rebuild per entry inside
            // `select_without_replacement_into`; replay it.
            stats.merge(&build.rebuild_delta);
            select_without_replacement_preloaded_into(
                build.selectable,
                k,
                self.select,
                select,
                &mut rng,
                stats,
            );
        } else {
            // ...and one rebuild per *pick* via `select_one_with`.
            select.out.clear();
            for _ in 0..k {
                stats.merge(&build.rebuild_delta);
                if let Some(i) = select_one_preloaded(&select.ctps, &mut rng, stats) {
                    select.out.push(i);
                }
            }
        }
        self.emit_picks(&gat, entry, home, &select.out, 0, &mut rng, sink, stats);
    }

    /// The cache-hit expand: the CTPS is already in the select arena
    /// (copied by the cache lookup); selection binary-searches it
    /// directly. Consumes exactly the RNG draws of the rebuild path —
    /// the cache changes the charged cost (a cached-table read instead of
    /// gather + bias fill + scan), never the sampled output, which debug
    /// builds assert bound for bound against a fresh rebuild.
    #[allow(clippy::too_many_arguments)]
    fn expand_cached<N: NeighborAccess, S: FrontierSink>(
        &self,
        access: &mut N,
        entry: &StepEntry,
        home: VertexId,
        selectable: usize,
        degree: usize,
        rng: &mut Philox,
        sink: &mut S,
        scratch: &mut StepScratch,
        stats: &mut SimStats,
    ) {
        let v = entry.vertex;
        if self.method_policy == MethodPolicy::Adaptive {
            // Only without-replacement static-bias kernels reach here
            // under Adaptive (with-replacement ones branch to
            // `expand_adaptive`) — and those stay on ITS per the table.
            stats.method_its += 1;
        }
        // Cached-table read: the row header plus the bound words a binary
        // search touches (≤ 8 modeled probes, as in the eager A7 cache).
        stats.read_gmem(16 + 8 * degree.min(8));
        let gat = access.fetch(v);
        debug_assert_eq!(gat.neighbors.len(), degree, "cached degree diverged from adjacency");
        // Empty CTPSs are never admitted, so degree > 0: no dead-end here.
        let k = self.cfg.neighbor_size.realize(degree, rng);
        if k == 0 {
            return;
        }
        #[cfg(debug_assertions)]
        {
            let mut check = SimStats::new();
            scratch.biases.clear();
            scratch.biases.extend(
                (0..degree).map(|i| self.algo.edge_bias(gat.graph, &gat.edge(i, v, entry.prev))),
            );
            scratch.dbg_ctps.rebuild(&scratch.biases, &mut check);
            assert_eq!(
                scratch.dbg_ctps, scratch.select.ctps,
                "cached CTPS of v{v} diverged from a fresh rebuild"
            );
            assert_eq!(scratch.biases.iter().filter(|&&b| b > 0.0).count(), selectable);
        }
        let select = &mut scratch.select;
        if self.cfg.without_replacement {
            select_without_replacement_preloaded_into(
                selectable,
                k,
                self.select,
                select,
                rng,
                stats,
            );
        } else {
            select.out.clear();
            for _ in 0..k {
                if let Some(i) = select_one_preloaded(&select.ctps, rng, stats) {
                    select.out.push(i);
                }
            }
        }
        let pick_bytes = 4 + if gat.graph.is_weighted() { 4 } else { 0 };
        self.emit_picks(&gat, entry, home, &select.out, pick_bytes, rng, sink, stats);
    }

    /// The adaptive per-vertex expand: [`crate::method::choose_method`]
    /// picks the sampling method per expansion.
    ///
    /// - **Static bias, cache attached** — alias fast path. A hit samples
    ///   O(1) rows straight off the cached table *under the shard lock*
    ///   (no O(d) copy-out); a miss builds the table once in the scratch
    ///   lane, samples it, and offers it for admission.
    /// - **Dynamic bias with an a-priori bound** — rejection: each throw
    ///   evaluates only the *proposed* candidate's bias, where ITS must
    ///   evaluate all `d` of them (the node2vec win). A trial cap with an
    ///   exact-ITS fallback guarantees termination; mixing exact methods
    ///   preserves the target distribution.
    /// - Everything else — the existing ITS lane.
    ///
    /// Every method draws from the same per-task Philox stream but
    /// consumes different draw counts, so Adaptive output is
    /// distribution-equal (chi-square validated) to `ForceIts`, never
    /// bit-equal.
    #[allow(clippy::too_many_arguments)]
    fn expand_adaptive<N: NeighborAccess, S: FrontierSink>(
        &self,
        access: &mut N,
        entry: &StepEntry,
        home: VertexId,
        rng: &mut Philox,
        sink: &mut S,
        scratch: &mut StepScratch,
        stats: &mut SimStats,
    ) {
        let v = entry.vertex;
        let static_bias = self.algo.edge_bias_is_static();
        let cache = if static_bias { self.cache } else { None };
        // As in `expand`: the 1-hop tag is cache-keying cost only.
        let epoch = if cache.is_some() { access.entry_epoch(v) } else { 0 };

        if let Some(cache) = cache {
            let select = &mut scratch.select;
            let served = cache.with_alias_entry(v, epoch, |table, _selectable| {
                let degree = table.len();
                let k = self.cfg.neighbor_size.realize(degree, rng);
                select.out.clear();
                // Cached-row read: the header once, one alias row per draw.
                stats.read_gmem(16);
                for _ in 0..k {
                    stats.read_gmem(12);
                    select.out.push(table.sample(rng, stats));
                }
                stats.selections += select.out.len() as u64;
                degree
            });
            if let Some(degree) = served {
                stats.ctps_cache_hits += 1;
                stats.method_alias += 1;
                let gat = access.fetch(v);
                debug_assert_eq!(
                    gat.neighbors.len(),
                    degree,
                    "cached degree diverged from adjacency"
                );
                let pick_bytes = 4 + if gat.graph.is_weighted() { 4 } else { 0 };
                self.emit_picks(
                    &gat,
                    entry,
                    home,
                    &scratch.select.out,
                    pick_bytes,
                    rng,
                    sink,
                    stats,
                );
                return;
            }
            stats.ctps_cache_misses += 1;
        }

        let gat = access.gather(v, stats);
        let g = gat.graph;
        if gat.neighbors.is_empty() {
            match self.algo.on_dead_end(g, v, home, rng) {
                UpdateAction::Add(w) => self.offer(entry, w, Some(v), sink, stats),
                UpdateAction::Discard => {}
            }
            return;
        }
        let n = gat.neighbors.len();
        let k = self.cfg.neighbor_size.realize(n, rng);
        if k == 0 {
            return;
        }

        let StepScratch { biases, select, alias, alias_build, rej_feedback, .. } = scratch;
        let bound = if static_bias {
            None
        } else {
            self.algo.edge_bias_bound(g, v, entry.prev).filter(|b| b.is_finite() && *b > 0.0)
        };
        let ctx = MethodContext {
            uniform: false,
            static_bias,
            without_replacement: false,
            degree: n,
            cache_available: cache.is_some(),
            bound_available: bound.is_some(),
            rejection_allowed: !static_bias && rej_feedback.allow(),
            skew: None,
        };
        match choose_method(&ctx) {
            SelectMethod::CachedAlias => {
                // Cache miss: build the table once, sample O(1) per pick,
                // then offer it for admission so the next expansion of v
                // hits without the O(d) build.
                self.fill_biases(&gat, v, entry.prev, biases, stats);
                if alias.rebuild(biases, alias_build, stats) {
                    stats.method_alias += 1;
                    select.out.clear();
                    for _ in 0..k {
                        select.out.push(alias.sample(rng, stats));
                    }
                    stats.selections += select.out.len() as u64;
                    let selectable = biases.iter().filter(|&&b| b > 0.0).count();
                    cache.expect("CachedAlias implies cache_available").promote_alias(
                        v,
                        epoch,
                        alias,
                        selectable as u32,
                    );
                } else {
                    // Degenerate lane (all-zero biases): the exact ITS
                    // lane is the arbiter — it yields no picks either.
                    stats.method_its += 1;
                    self.select_picks_into(biases, k, rng, select, stats);
                }
            }
            SelectMethod::Rejection => {
                stats.method_rejection += 1;
                let bound = bound.expect("Rejection implies bound_available");
                select.out.clear();
                let mut deferred = 0usize;
                for _ in 0..k {
                    let before = stats.rejection_trials;
                    let pick = select_one_rejection(
                        n,
                        bound,
                        REJECTION_MAX_TRIALS,
                        |col| self.algo.edge_bias(g, &gat.edge(col, v, entry.prev)),
                        rng,
                        stats,
                    );
                    rej_feedback.record(stats.rejection_trials - before);
                    match pick {
                        Some(col) => select.out.push(col),
                        None => deferred += 1,
                    }
                }
                if deferred > 0 {
                    // Cap exhausted (skew the bound could not see): serve
                    // the remaining picks from the exact ITS lane.
                    self.fill_biases(&gat, v, entry.prev, biases, stats);
                    for _ in 0..deferred {
                        if let Some(i) = select_one_with(biases, &mut select.ctps, rng, stats) {
                            select.out.push(i);
                        }
                    }
                }
            }
            SelectMethod::Its | SelectMethod::ClosedFormUniform => {
                stats.method_its += 1;
                self.fill_biases(&gat, v, entry.prev, biases, stats);
                self.select_picks_into(biases, k, rng, select, stats);
            }
        }
        self.emit_picks(&gat, entry, home, &select.out, 0, rng, sink, stats);
    }

    /// The accept → emit → UPDATE → offer tail of a per-vertex step,
    /// shared by the rebuild and cache-hit paths. A nonzero `pick_bytes`
    /// charges a global-memory read per pick — the cache-hit path reads
    /// only the picked neighbors, where the rebuild path already paid for
    /// the full adjacency gather.
    #[allow(clippy::too_many_arguments)]
    fn emit_picks<S: FrontierSink>(
        &self,
        gat: &Gathered<'_>,
        entry: &StepEntry,
        home: VertexId,
        picks: &[usize],
        pick_bytes: usize,
        rng: &mut Philox,
        sink: &mut S,
        stats: &mut SimStats,
    ) {
        let v = entry.vertex;
        let g = gat.graph;
        for &idx in picks {
            if pick_bytes > 0 {
                stats.read_gmem(pick_bytes);
            }
            let mut cand = gat.edge(idx, v, entry.prev);
            if let Some(w) = self.algo.accept(g, &cand, rng) {
                if w == v {
                    // Rejected move (metropolis-hastings stays): the step
                    // is consumed; the walker remains at v with its
                    // predecessor unchanged.
                    self.offer(entry, v, entry.prev, sink, stats);
                    continue;
                }
                cand.u = w;
            }
            sink.emit(entry, (cand.v, cand.u));
            match self.algo.update(g, &cand, home, rng) {
                UpdateAction::Add(w) => self.offer(entry, w, Some(v), sink, stats),
                UpdateAction::Discard => {}
            }
        }
    }

    /// Expands a whole frontier against one shared neighbor pool — the
    /// [`crate::api::FrontierMode::SharedLayer`] step (layer sampling,
    /// §II-A): `NeighborSize` vertices are selected from the union pool.
    #[allow(clippy::too_many_arguments)] // mirrors the device kernel's launch signature
    pub fn expand_layer<N: NeighborAccess, S: FrontierSink>(
        &self,
        access: &mut N,
        instance: u32,
        depth: u32,
        frontier: &[PoolSlot],
        sink: &mut S,
        scratch: &mut StepScratch,
        stats: &mut SimStats,
    ) {
        let entry = StepEntry { instance, depth, vertex: POOL_STEP_VERTEX, prev: None, trial: 0 };
        let mut rng = Philox::for_task(self.seed, task_key(instance, depth, POOL_STEP_VERTEX, 0));
        let StepScratch { cands, biases, select, .. } = scratch;
        cands.clear();
        for slot in frontier {
            let gat = access.gather(slot.vertex, stats);
            for i in 0..gat.neighbors.len() {
                cands.push(gat.edge(i, slot.vertex, slot.prev));
            }
        }
        if cands.is_empty() {
            return;
        }
        let k = self.cfg.neighbor_size.realize(cands.len(), &mut rng);
        let g = access.graph();
        self.fill_biases_cands(g, cands, biases, stats);
        self.select_picks_into(biases, k, &mut rng, select, stats);
        for &idx in select.out.iter() {
            let cand = cands[idx];
            sink.emit(&entry, (cand.v, cand.u));
            match self.algo.update(g, &cand, cand.v, &mut rng) {
                UpdateAction::Add(w) => self.offer(&entry, w, Some(cand.v), sink, stats),
                UpdateAction::Discard => {}
            }
        }
    }

    /// One biased-replace step — the
    /// [`crate::api::FrontierMode::BiasedReplace`] step (multi-dimensional
    /// random walk, Fig. 4): `VERTEXBIAS` selects one pool vertex, one of
    /// its neighbors is sampled, and the neighbor replaces the pool slot.
    /// The pool is mutated in place; `sink` only receives `emit`s (use
    /// [`EmitSink`]).
    ///
    /// `pool_biases` is the caller-owned `VERTEXBIAS` lane, maintained
    /// **incrementally**: the first step (or any step where its length
    /// disagrees with the pool) scans the whole pool, after which each
    /// UPDATE touches only the one replaced slot — amortizing what §V's
    /// Fig. 9b workload otherwise pays as a full `O(pool)` rescan per
    /// sampled edge. Keep one lane per pool, clear it whenever the pool
    /// is re-seeded. Sampled output is identical to rescanning.
    #[allow(clippy::too_many_arguments)] // mirrors the device kernel's launch signature
    pub fn expand_replace<N: NeighborAccess, S: FrontierSink>(
        &self,
        access: &mut N,
        instance: u32,
        depth: u32,
        home: VertexId,
        pool: &mut Vec<PoolSlot>,
        pool_biases: &mut Vec<f64>,
        sink: &mut S,
        scratch: &mut StepScratch,
        stats: &mut SimStats,
    ) {
        let entry = StepEntry { instance, depth, vertex: POOL_STEP_VERTEX, prev: None, trial: 0 };
        let mut rng = Philox::for_task(self.seed, task_key(instance, depth, POOL_STEP_VERTEX, 0));
        let StepScratch { biases, select, .. } = scratch;

        // Frontier selection by VERTEXBIAS (Fig. 2b line 4). Cold lane:
        // full scan. Warm lane: already maintained by the previous step's
        // UPDATE, nothing to read.
        if pool_biases.len() != pool.len() {
            pool_biases.clear();
            let g = access.graph();
            pool_biases.extend(pool.iter().map(|s| self.algo.vertex_bias(g, s.vertex)));
            stats.read_gmem(4 * pool.len()); // degree reads for the biases
        } else {
            debug_assert!(
                {
                    let g = access.graph();
                    pool.iter()
                        .zip(pool_biases.iter())
                        .all(|(s, &b)| b == self.algo.vertex_bias(g, s.vertex))
                },
                "incrementally maintained VERTEXBIAS lane diverged from the pool"
            );
        }
        let Some(j) = select_one_with(pool_biases, &mut select.ctps, &mut rng, stats) else {
            pool.clear();
            pool_biases.clear();
            return;
        };
        let slot = pool[j];
        let v = slot.vertex;
        let gat = access.gather(v, stats);
        let g = gat.graph;

        if gat.neighbors.is_empty() {
            match self.algo.on_dead_end(g, v, home, &mut rng) {
                UpdateAction::Add(w) => {
                    pool[j] = PoolSlot { vertex: w, prev: Some(v) };
                    pool_biases[j] = self.algo.vertex_bias(g, w);
                    stats.read_gmem(4); // the one replaced slot's degree
                }
                UpdateAction::Discard => {
                    pool.swap_remove(j);
                    pool_biases.swap_remove(j);
                }
            }
            return;
        }

        let idx = if self.uniform_closed_form() {
            // Uniform EDGEBIAS (the MDRW case): closed-form neighbor
            // selection, charge-identical to the materialized lane.
            let n = gat.neighbors.len();
            #[cfg(debug_assertions)]
            for i in 0..n {
                debug_assert_eq!(
                    self.algo.edge_bias(g, &gat.edge(i, v, slot.prev)),
                    1.0,
                    "edge_bias_is_uniform() contradicted by edge_bias()"
                );
            }
            stats.warp_cycles += n.div_ceil(32) as u64;
            select_one_uniform(n, &mut rng, stats)
        } else {
            self.fill_biases(&gat, v, slot.prev, biases, stats);
            select_one_with(biases, &mut select.ctps, &mut rng, stats)
        };
        let Some(idx) = idx else {
            pool.swap_remove(j);
            pool_biases.swap_remove(j);
            return;
        };
        let cand = gat.edge(idx, v, slot.prev);
        sink.emit(&entry, (cand.v, cand.u));
        match self.algo.update(g, &cand, home, &mut rng) {
            UpdateAction::Add(w) => {
                pool[j] = PoolSlot { vertex: w, prev: Some(v) };
                pool_biases[j] = self.algo.vertex_bias(g, w);
                stats.read_gmem(4); // the one replaced slot's degree
            }
            UpdateAction::Discard => {
                pool.swap_remove(j);
                pool_biases.swap_remove(j);
            }
        }
        stats.frontier_ops += 1;
    }

    /// EDGEBIAS over a gathered adjacency, filling the caller's bias
    /// lane and charging one warp-cycle per 32 lanes of evaluation. When
    /// the algorithm declares its edge bias uniform
    /// ([`Algorithm::edge_bias_is_uniform`]) the lane is filled with 1.0
    /// directly — no per-neighbor hook calls, no `EdgeCand`
    /// materialization (debug builds still verify the claim).
    fn fill_biases(
        &self,
        gat: &Gathered<'_>,
        v: VertexId,
        prev: Option<VertexId>,
        biases: &mut Vec<f64>,
        stats: &mut SimStats,
    ) {
        biases.clear();
        if self.algo.edge_bias_is_uniform() {
            biases.resize(gat.neighbors.len(), 1.0);
            #[cfg(debug_assertions)]
            for i in 0..gat.neighbors.len() {
                debug_assert_eq!(
                    self.algo.edge_bias(gat.graph, &gat.edge(i, v, prev)),
                    1.0,
                    "edge_bias_is_uniform() contradicted by edge_bias()"
                );
            }
        } else {
            biases.extend(
                (0..gat.neighbors.len())
                    .map(|i| self.algo.edge_bias(gat.graph, &gat.edge(i, v, prev))),
            );
        }
        stats.warp_cycles += biases.len().div_ceil(32) as u64;
    }

    /// [`Self::fill_biases`] over an already-materialized candidate pool
    /// (the shared-layer union pool).
    fn fill_biases_cands(
        &self,
        g: GraphView<'_>,
        cands: &[EdgeCand],
        biases: &mut Vec<f64>,
        stats: &mut SimStats,
    ) {
        biases.clear();
        if self.algo.edge_bias_is_uniform() {
            biases.resize(cands.len(), 1.0);
            debug_assert!(
                cands.iter().all(|c| self.algo.edge_bias(g, c) == 1.0),
                "edge_bias_is_uniform() contradicted by edge_bias()"
            );
        } else {
            biases.extend(cands.iter().map(|c| self.algo.edge_bias(g, c)));
        }
        stats.warp_cycles += biases.len().div_ceil(32) as u64;
    }

    /// SELECT: without-replacement (per the run's strategy/SIMT options)
    /// or `k` independent with-replacement draws. The picks land in
    /// `select.out`.
    fn select_picks_into(
        &self,
        biases: &[f64],
        k: usize,
        rng: &mut Philox,
        select: &mut SelectScratch,
        stats: &mut SimStats,
    ) {
        if self.cfg.without_replacement {
            if self.use_simt_select && self.select.strategy != SelectStrategy::Updated {
                select_without_replacement_simt_into(biases, k, self.select, select, rng, stats);
            } else {
                select_without_replacement_into(biases, k, self.select, select, rng, stats);
            }
        } else {
            select.out.clear();
            for _ in 0..k {
                if let Some(i) = select_one_with(biases, &mut select.ctps, rng, stats) {
                    select.out.push(i);
                }
            }
        }
    }

    /// UPDATE's frontier push, gated by the depth budget: entries that
    /// could never be expanded (their depth would reach the configured
    /// limit) are dropped here, identically in every runtime.
    fn offer<S: FrontierSink>(
        &self,
        entry: &StepEntry,
        vertex: VertexId,
        prev: Option<VertexId>,
        sink: &mut S,
        stats: &mut SimStats,
    ) {
        if entry.depth as usize + 1 >= self.cfg.depth {
            return; // depth budget exhausted (§V-B correctness guard)
        }
        sink.push(entry, vertex, prev, stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{FrontierMode, NeighborSize};
    use csaw_graph::generators::toy_graph;

    struct Ns2;
    impl Algorithm for Ns2 {
        fn name(&self) -> &'static str {
            "ns2"
        }
        fn config(&self) -> AlgoConfig {
            AlgoConfig {
                depth: 2,
                neighbor_size: NeighborSize::Constant(2),
                frontier: FrontierMode::IndependentPerVertex,
                without_replacement: true,
            }
        }
    }

    fn expand_once(seed: u64, entry: &StepEntry) -> (Vec<(u32, u32)>, Vec<PoolSlot>) {
        let g = toy_graph();
        let algo = Ns2;
        let kernel = StepKernel::new(&algo, seed);
        let cfg = algo.config();
        let mut access = CsrAccess { graph: &g };
        let mut visited = HashSet::new();
        let mut next = Vec::new();
        let mut out = Vec::new();
        let mut stats = SimStats::new();
        let mut sink = PoolSink {
            cfg: &cfg,
            detector: SelectConfig::paper_best().detector,
            visited: &mut visited,
            next: &mut next,
            out: &mut out,
        };
        let mut scratch = StepScratch::new();
        kernel.expand(&mut access, entry, entry.vertex, &mut sink, &mut scratch, &mut stats);
        (out, next)
    }

    #[test]
    fn expansion_is_a_pure_function_of_its_key() {
        let entry = StepEntry { instance: 7, depth: 0, vertex: 8, prev: None, trial: 0 };
        let (a_out, a_next) = expand_once(42, &entry);
        let (b_out, b_next) = expand_once(42, &entry);
        assert_eq!(a_out, b_out);
        assert_eq!(a_next, b_next);
        assert!(!a_out.is_empty());
        for &(v, u) in &a_out {
            assert!(toy_graph().has_edge(v, u));
        }
    }

    #[test]
    fn distinct_key_components_change_the_draws() {
        let base = StepEntry { instance: 0, depth: 0, vertex: 8, prev: None, trial: 0 };
        let (base_out, _) = expand_once(1, &base);
        let variants = [
            StepEntry { instance: 1, ..base },
            StepEntry { depth: 1, ..base },
            StepEntry { trial: 1, ..base },
        ];
        // At least one variant must differ — with 2-of-5 selection the
        // odds of all three colliding by chance are negligible, and a key
        // that ignored a component would collide on *every* seed.
        let mut any_differ = false;
        for v in variants {
            let (out, _) = expand_once(1, &v);
            any_differ |= out != base_out;
        }
        assert!(any_differ, "key components must reach the RNG stream");
    }

    #[test]
    fn depth_budget_blocks_final_depth_pushes() {
        // depth 1 of a depth-2 algorithm: edges still emit, pushes don't.
        let entry = StepEntry { instance: 0, depth: 1, vertex: 8, prev: None, trial: 0 };
        let (out, next) = expand_once(3, &entry);
        assert!(!out.is_empty());
        assert!(next.is_empty(), "final-depth entries must not reach the sink");
    }

    #[test]
    fn trial_counter_numbers_duplicates_per_instance() {
        let mut t = TrialCounter::new();
        assert_eq!(t.next(0, 5), 0);
        assert_eq!(t.next(0, 5), 1);
        assert_eq!(t.next(1, 5), 0, "instances are independent");
        assert_eq!(t.next(0, 6), 0, "vertices are independent");
        t.reset();
        assert_eq!(t.next(0, 5), 0, "reset forgets prior steps");
    }

    #[test]
    fn gather_bytes_counts_weights() {
        assert_eq!(gather_bytes(false, 10), 16 + 40);
        assert_eq!(gather_bytes(true, 10), 16 + 80);
    }
}
