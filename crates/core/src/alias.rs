//! The alias method (Walker 1977; paper §II-B, Fig. 1d).
//!
//! Converts the sparse 2-D dartboard into a dense one where each bin holds
//! at most two candidates, giving O(1) sampling after O(n) preprocessing.
//! The paper rejects it for C-SAW because "the drawback of alias method is
//! its high preprocessing cost", which cannot be amortized when biases are
//! dynamic — this module exists for the A3 selection ablation and for the
//! KnightKing-like baseline (which precomputes alias tables for static
//! biases).

use csaw_gpu::stats::SimStats;
use csaw_gpu::Philox;

/// Reusable worklists for [`AliasTable::rebuild`], so steady-state table
/// builds allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct AliasBuildScratch {
    small: Vec<usize>,
    large: Vec<usize>,
}

/// A built alias table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AliasTable {
    /// Probability of keeping bin `i`'s primary candidate.
    prob: Vec<f64>,
    /// The alternate candidate stored in bin `i`.
    alias: Vec<u32>,
}

impl AliasTable {
    /// An empty table, for use as a [`AliasTable::rebuild`] target.
    pub fn empty() -> AliasTable {
        AliasTable { prob: Vec::new(), alias: Vec::new() }
    }

    /// Builds the table with Vose's O(n) algorithm. Returns `None` when
    /// the bias array is empty, contains a non-finite or negative entry
    /// (matching the CTPS build contract), or sums to zero.
    /// Preprocessing work is charged to `stats` (one pass to scale + one
    /// pass to pair bins).
    pub fn build(biases: &[f64], stats: &mut SimStats) -> Option<AliasTable> {
        let mut t = AliasTable::empty();
        t.rebuild(biases, &mut AliasBuildScratch::default(), stats).then_some(t)
    }

    /// Allocation-free form of [`AliasTable::build`]: rebuilds `self` in
    /// place over `biases`, reusing its own buffers and the caller's
    /// worklists. Returns `false` (leaving the table empty) on the same
    /// inputs `build` rejects.
    pub fn rebuild(
        &mut self,
        biases: &[f64],
        scratch: &mut AliasBuildScratch,
        stats: &mut SimStats,
    ) -> bool {
        self.prob.clear();
        self.alias.clear();
        let n = biases.len();
        // Validate per entry, not just the sum: `[2.0, -1.0]` must not
        // slip through on `total > 0` and produce out-of-range `prob`
        // entries and bogus alias rows.
        if n == 0 || biases.iter().any(|&b| !b.is_finite() || b < 0.0) {
            return false;
        }
        let total: f64 = biases.iter().sum();
        if total <= 0.0 {
            return false;
        }
        stats.warp_cycles += 2 * n as u64; // scale pass + pairing pass

        self.prob.extend(biases.iter().map(|&b| b * n as f64 / total));
        self.alias.resize(n, 0);
        scratch.small.clear();
        scratch.large.clear();
        scratch.small.extend((0..n).filter(|&i| self.prob[i] < 1.0));
        scratch.large.extend((0..n).filter(|&i| self.prob[i] >= 1.0));

        while let (Some(&s), Some(&l)) = (scratch.small.last(), scratch.large.last()) {
            scratch.small.pop();
            self.alias[s] = l as u32;
            self.prob[l] -= 1.0 - self.prob[s];
            if self.prob[l] < 1.0 {
                scratch.large.pop();
                scratch.small.push(l);
            }
        }
        // Remaining bins are exactly 1 up to FP error.
        for &i in scratch.small.iter().chain(scratch.large.iter()) {
            self.prob[i] = 1.0;
        }
        true
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table is empty (never produced by [`AliasTable::build`]).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one candidate in O(1): a uniform bin plus a biased coin.
    pub fn sample(&self, rng: &mut Philox, stats: &mut SimStats) -> usize {
        stats.rng_draws += 2;
        // Two draws + one dependent read of the alias row.
        stats.warp_cycles += 8 + 16;
        let bin = rng.below(self.prob.len() as u64) as usize;
        if rng.uniform() < self.prob[bin] {
            bin
        } else {
            self.alias[bin] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_hold_valid_aliases() {
        let mut s = SimStats::new();
        let t = AliasTable::build(&[3.0, 6.0, 2.0, 2.0, 2.0], &mut s).unwrap();
        assert_eq!(t.len(), 5);
        for i in 0..5 {
            assert!((0.0..=1.0 + 1e-9).contains(&t.prob[i]));
            assert!(t.alias[i] < 5);
        }
    }

    #[test]
    fn sampling_matches_bias_distribution() {
        let biases = [3.0, 6.0, 2.0, 2.0, 2.0];
        let mut s = SimStats::new();
        let t = AliasTable::build(&biases, &mut s).unwrap();
        let mut rng = Philox::new(4);
        let n = 300_000;
        let mut counts = [0usize; 5];
        for _ in 0..n {
            counts[t.sample(&mut rng, &mut s)] += 1;
        }
        let total: f64 = biases.iter().sum();
        for (i, &c) in counts.iter().enumerate() {
            let f = c as f64 / n as f64;
            let p = biases[i] / total;
            assert!((f - p).abs() < 0.01, "bin {i}: {f} vs {p}");
        }
    }

    #[test]
    fn uniform_biases_degenerate_cleanly() {
        let mut s = SimStats::new();
        let t = AliasTable::build(&[1.0; 8], &mut s).unwrap();
        for i in 0..8 {
            assert!((t.prob[i] - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_or_zero_is_none() {
        let mut s = SimStats::new();
        assert!(AliasTable::build(&[], &mut s).is_none());
        assert!(AliasTable::build(&[0.0, 0.0], &mut s).is_none());
    }

    #[test]
    fn extreme_skew_is_exact() {
        let biases = [1000.0, 1.0];
        let mut s = SimStats::new();
        let t = AliasTable::build(&biases, &mut s).unwrap();
        let mut rng = Philox::new(5);
        let hits = (0..200_000).filter(|_| t.sample(&mut rng, &mut s) == 1).count();
        let f = hits as f64 / 200_000.0;
        let p = 1.0 / 1001.0;
        assert!((f - p).abs() < 0.002, "{f} vs {p}");
    }

    #[test]
    fn preprocessing_cost_is_linear() {
        let mut s1 = SimStats::new();
        AliasTable::build(&vec![1.0; 100], &mut s1).unwrap();
        let mut s2 = SimStats::new();
        AliasTable::build(&vec![1.0; 200], &mut s2).unwrap();
        assert_eq!(s2.warp_cycles, 2 * s1.warp_cycles);
    }

    /// Regression: `[2.0, -1.0]` sums to 1.0 and used to pass the
    /// sum-only validation, producing a `prob` entry of 4.0 and a bogus
    /// alias row. Every invalid entry must now be rejected outright.
    #[test]
    fn negative_or_non_finite_entries_are_rejected() {
        let mut s = SimStats::new();
        assert!(AliasTable::build(&[2.0, -1.0], &mut s).is_none());
        assert!(AliasTable::build(&[1.0, f64::NAN], &mut s).is_none());
        assert!(AliasTable::build(&[1.0, f64::INFINITY], &mut s).is_none());
        assert!(AliasTable::build(&[1.0, f64::NEG_INFINITY], &mut s).is_none());
        // A rejected build charges no preprocessing work.
        assert_eq!(s.warp_cycles, 0);
    }

    #[test]
    fn rebuild_matches_build_and_reuses_buffers() {
        let biases = [3.0, 6.0, 2.0, 2.0, 2.0];
        let mut s = SimStats::new();
        let built = AliasTable::build(&biases, &mut s).unwrap();
        let mut t = AliasTable::empty();
        let mut scratch = AliasBuildScratch::default();
        // Dirty the table first, then rebuild over the same biases.
        assert!(t.rebuild(&[1.0, 9.0], &mut scratch, &mut s));
        assert!(t.rebuild(&biases, &mut scratch, &mut s));
        assert_eq!(t, built);
        // A failed rebuild leaves the table empty, not half-written.
        assert!(!t.rebuild(&[2.0, -1.0], &mut scratch, &mut s));
        assert!(t.is_empty());
    }
}
