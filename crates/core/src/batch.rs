//! Depth-synchronous batched execution — the engine's loop interchange.
//!
//! The instance-major engine ([`crate::engine`]) runs each instance to
//! completion: every step is a dependent CSR pointer-chase, so a host
//! core stalls on DRAM once the graph falls out of cache. C-SAW's GPU
//! hides that latency with thousands of concurrent warps; ThunderRW's
//! CPU answer — and this module's — is to advance **all instances in
//! lockstep one depth at a time** over a flat `(instance, vertex)`
//! frontier, which buys three things per depth:
//!
//! 1. **Software prefetch**: upcoming frontier rows are known an entire
//!    depth in advance, so the driver issues `_mm_prefetch` hints a
//!    configurable distance ahead ([`NeighborAccess::prefetch_index`] /
//!    `prefetch_adjacency`, plus the CTPS-cache shard).
//! 2. **Vertex grouping**: entries are expanded in vertex-sorted order,
//!    so co-located walkers reuse a hot adjacency row, and — when the
//!    bias is static ([`StepKernel::group_shareable`]) — share one
//!    EDGEBIAS fill + CTPS build per group instead of one per walker.
//! 3. **Batched Philox**: every entry's first RNG block is generated
//!    up front in one tight loop ([`Philox::first_blocks_into`], the
//!    cuRAND idiom of 4 counters per call into a lane buffer).
//!
//! # Why the output is bit-identical
//!
//! Every expansion draws from a stream keyed by
//! `task_key(instance, depth, vertex, trial)` — logical position, never
//! execution order — so *expanding* in any order produces the same picks
//! per entry. Order-dependent state lives only in the sinks (output
//! append order, the without-replacement visited filter); the driver
//! therefore **records** each entry's emits and frontier offers during
//! grouped expansion and **replays** them in flat order, reproducing the
//! instance-major sink sequence exactly. Trials are assigned in flat
//! order before sorting, and the flat frontier stays instance-contiguous
//! by induction (replay appends offers in flat order), so the trial
//! ordinals match instance-major at every depth.
//!
//! Stats are charge-identical too: shared builds capture the fill/rebuild
//! charges they saved as deltas ([`crate::step::SharedBuild`]) and replay
//! them per entry, and visited-check charges are applied at replay where
//! the per-instance visited sizes match the instance-major sequence. Only
//! the `batch_*` counters (groups, histogram, prefetch coverage) are new
//! — they are zero under instance-major execution.
//!
//! All buffers live in a [`BatchArena`] double-buffered between depths:
//! with a warm arena a steady-state depth performs zero heap allocations
//! (the PR-5 gate, extended to this mode by `tests/step_alloc.rs`).

use crate::collision::charge_visited_check;
use crate::frontier::BatchSlot;
use crate::step::{
    FrontierSink, NeighborAccess, SharedBuild, StepEntry, StepKernel, StepScratch, TrialCounter,
};
use csaw_gpu::rng::task_key;
use csaw_gpu::stats::SimStats;
use csaw_gpu::Philox;
use csaw_graph::VertexId;
use std::cell::RefCell;
use std::collections::HashSet;

/// One chunk instance: its global id (keys RNG streams) and seed set.
#[derive(Debug, Clone, Copy)]
pub struct ChunkInstance<'a> {
    /// Global instance id (`instance_base + local index`).
    pub global_id: u32,
    /// The instance's seed vertices.
    pub seeds: &'a [VertexId],
}

/// Records one entry's sink traffic during grouped expansion for later
/// replay in flat order. Charges nothing — the replay applies the
/// order-dependent charges (visited checks, frontier ops) against the
/// per-instance state exactly as instance-major execution would.
pub struct RecordSink<'a> {
    /// Sampled edges, appended in pick order.
    pub emits: &'a mut Vec<(VertexId, VertexId)>,
    /// Frontier offers (vertex, prev), post depth-gate, pre visited
    /// filter — the filter is order-dependent and runs at replay.
    pub offers: &'a mut Vec<(VertexId, Option<VertexId>)>,
}

impl FrontierSink for RecordSink<'_> {
    fn emit(&mut self, _entry: &StepEntry, edge: (VertexId, VertexId)) {
        self.emits.push(edge);
    }

    fn push(
        &mut self,
        _entry: &StepEntry,
        vertex: VertexId,
        prev: Option<VertexId>,
        _stats: &mut SimStats,
    ) {
        self.offers.push((vertex, prev));
    }
}

/// Reusable buffers of the depth-synchronous driver — the double-buffered
/// frontier arenas plus every per-depth lane. Owned once per worker (or
/// handed in explicitly by the allocation gate) and cleared, never
/// dropped, between depths and chunks: a warm arena makes a steady-state
/// depth allocation-free.
#[derive(Debug, Default)]
pub struct BatchArena {
    /// Current depth's flat frontier (instance-contiguous).
    cur: Vec<BatchSlot>,
    /// Next depth's flat frontier, filled by replay.
    next: Vec<BatchSlot>,
    /// Indices into `cur`, sorted by `(vertex, index)` — the grouped
    /// expansion order.
    order: Vec<u32>,
    /// Start offset (into `order`) of each vertex-group, plus one
    /// past-the-end sentinel.
    group_starts: Vec<u32>,
    /// Per-entry RNG task keys, in flat order.
    tasks: Vec<u64>,
    /// Per-entry first Philox blocks, batch-generated from `tasks`.
    blocks: Vec<[u32; 4]>,
    /// Recorded sampled edges across the whole depth.
    emits: Vec<(VertexId, VertexId)>,
    /// Recorded frontier offers across the whole depth.
    offers: Vec<(VertexId, Option<VertexId>)>,
    /// Per-entry spans into `emits`/`offers`, indexed by flat position:
    /// `(emit_start, emit_end, offer_start, offer_end)`.
    spans: Vec<(u32, u32, u32, u32)>,
    /// Flat-order trial assignment (reset per depth).
    trials: TrialCounter,
    /// Per-instance visited sets (without-replacement filter), reused
    /// across chunks — clearing keeps capacity.
    visited: Vec<HashSet<VertexId>>,
}

impl BatchArena {
    /// An empty arena; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }
}

thread_local! {
    static THREAD_ARENA: RefCell<BatchArena> = RefCell::new(BatchArena::new());
}

/// Runs `f` with this thread's shared [`BatchArena`] — one arena per
/// worker, exactly like [`crate::step::with_thread_scratch`] (and with
/// the same non-reentrancy caveat).
pub fn with_thread_arena<R>(f: impl FnOnce(&mut BatchArena) -> R) -> R {
    THREAD_ARENA.with(|a| f(&mut a.borrow_mut()))
}

/// Drives one chunk of [`crate::api::FrontierMode::IndependentPerVertex`]
/// instances depth-synchronously. `outs[i]` receives instance `i`'s
/// sampled edges and `per_inst[i]` its work counters; both must have one
/// entry per chunk instance. The caller owns the kernel (algorithm,
/// SELECT config, seed, cache, policy) and the access; the driver owns
/// the loop interchange.
///
/// Group-level charges with no single owning walker — the `batch_*`
/// counters — are attributed to the instance of each group's first entry
/// (deterministic and conservation-clean: per-instance counters still sum
/// to the chunk totals).
#[allow(clippy::too_many_arguments)]
pub fn run_chunk<N: NeighborAccess>(
    kernel: &StepKernel<'_>,
    access: &mut N,
    instances: &[ChunkInstance<'_>],
    seed: u64,
    prefetch_distance: usize,
    outs: &mut [Vec<(VertexId, VertexId)>],
    per_inst: &mut [SimStats],
    arena: &mut BatchArena,
    scratch: &mut StepScratch,
) {
    let cfg = *kernel.cfg();
    assert_eq!(instances.len(), outs.len(), "one output vector per instance");
    assert_eq!(instances.len(), per_inst.len(), "one counter set per instance");
    let detector = kernel.select().detector;
    let shareable = kernel.group_shareable();
    let cache = kernel.prefetch_cache();

    // Seed the flat frontier instance-contiguously and the visited sets,
    // mirroring `drive_instance`'s per-instance setup.
    if arena.visited.len() < instances.len() {
        arena.visited.resize_with(instances.len(), HashSet::new);
    }
    arena.cur.clear();
    arena.next.clear();
    for (i, inst) in instances.iter().enumerate() {
        arena.visited[i].clear();
        if cfg.without_replacement {
            arena.visited[i].extend(inst.seeds.iter().copied());
        }
        for &s in inst.seeds {
            arena.cur.push(BatchSlot { instance: i as u32, vertex: s, prev: None, trial: 0 });
        }
    }

    for depth in 0..cfg.depth as u32 {
        if arena.cur.is_empty() {
            break;
        }
        let n = arena.cur.len();

        // Per-depth frontier charge: instance-major charges each instance
        // `frontier.len()` at the top of its depth; one unit per flat
        // entry lands identically.
        for slot in arena.cur.iter() {
            per_inst[slot.instance as usize].frontier_ops += 1;
        }

        // Trial ordinals in flat order, *before* sorting — the flat
        // frontier is instance-contiguous, so this visits each instance's
        // entries in exactly the order its per-instance pool would.
        arena.trials.reset();
        arena.tasks.clear();
        for slot in arena.cur.iter_mut() {
            slot.trial =
                arena.trials.next(instances[slot.instance as usize].global_id, slot.vertex);
            arena.tasks.push(task_key(
                instances[slot.instance as usize].global_id,
                depth,
                slot.vertex,
                slot.trial,
            ));
        }

        // Batched Philox: all first blocks in one pass over the task keys.
        Philox::first_blocks_into(seed, &arena.tasks, &mut arena.blocks);

        // Vertex grouping: sort an index array, never the slots — the
        // secondary index key makes the order deterministic (and equal to
        // a stable sort) for any sort algorithm.
        arena.order.clear();
        arena.order.extend(0..n as u32);
        {
            let cur = &arena.cur;
            arena.order.sort_unstable_by_key(|&i| (cur[i as usize].vertex, i));
        }
        arena.group_starts.clear();
        for (pos, &i) in arena.order.iter().enumerate() {
            if pos == 0
                || arena.cur[i as usize].vertex != arena.cur[arena.order[pos - 1] as usize].vertex
            {
                arena.group_starts.push(pos as u32);
            }
        }
        arena.group_starts.push(n as u32);
        let groups = arena.group_starts.len() - 1;

        // Prefetch coverage model: the pipeline needs `adj_dist` groups of
        // lead time before a row can arrive early, so the first
        // min(adj_dist, groups) groups of each depth count as misses and
        // the rest as hits (hits + misses == groups, asserted by the
        // conservation tests). Distance 0 disables prefetching entirely.
        let adj_dist = if prefetch_distance == 0 { 0 } else { (prefetch_distance / 2).max(1) };
        let covered = if prefetch_distance == 0 { 0 } else { groups.saturating_sub(adj_dist) };

        arena.emits.clear();
        arena.offers.clear();
        arena.spans.clear();
        arena.spans.resize(n, (0, 0, 0, 0));

        for gi in 0..groups {
            let start = arena.group_starts[gi] as usize;
            let end = arena.group_starts[gi + 1] as usize;
            let v = arena.cur[arena.order[start] as usize].vertex;

            // Look-ahead prefetch: indices far out (cheap, one line),
            // adjacency closer in (it lands later but is bigger).
            if prefetch_distance > 0 {
                if let Some(&i) = arena
                    .group_starts
                    .get(gi + prefetch_distance)
                    .filter(|&&s| (s as usize) < n)
                    .map(|&s| &arena.order[s as usize])
                {
                    access.prefetch_index(arena.cur[i as usize].vertex);
                }
                if let Some(&i) = arena
                    .group_starts
                    .get(gi + adj_dist)
                    .filter(|&&s| (s as usize) < n)
                    .map(|&s| &arena.order[s as usize])
                {
                    let pv = arena.cur[i as usize].vertex;
                    access.prefetch_adjacency(pv);
                    if let Some(cache) = cache {
                        cache.prefetch_shard(pv);
                    }
                }
            }

            // Frontier-occupancy observability, attributed to the group's
            // first entry's instance.
            let owner = arena.cur[arena.order[start] as usize].instance as usize;
            per_inst[owner].record_batch_group(end - start);
            if gi < groups - covered {
                per_inst[owner].batch_prefetch_misses += 1;
            } else {
                per_inst[owner].batch_prefetch_hits += 1;
            }

            // One shared bias fill + CTPS build per group when legal;
            // per-entry expansion (still grouped, prefetched, and
            // batch-seeded) otherwise.
            let build: Option<SharedBuild> = if shareable {
                let prev = arena.cur[arena.order[start] as usize].prev;
                kernel.prepare_group(access, v, prev, scratch)
            } else {
                None
            };

            for &i in &arena.order[start..end] {
                let idx = i as usize;
                let slot = arena.cur[idx];
                let inst = slot.instance as usize;
                let entry = StepEntry {
                    instance: instances[inst].global_id,
                    depth,
                    vertex: slot.vertex,
                    prev: slot.prev,
                    trial: slot.trial,
                };
                let rng = Philox::with_first_block(seed, arena.tasks[idx], arena.blocks[idx]);
                let home = instances[inst].seeds.first().copied().unwrap_or(0);
                let e0 = arena.emits.len() as u32;
                let o0 = arena.offers.len() as u32;
                {
                    let mut sink =
                        RecordSink { emits: &mut arena.emits, offers: &mut arena.offers };
                    match &build {
                        Some(b) => kernel.expand_in_group(
                            access,
                            &entry,
                            home,
                            b,
                            rng,
                            &mut sink,
                            scratch,
                            &mut per_inst[inst],
                        ),
                        None => kernel.expand_rng(
                            access,
                            &entry,
                            home,
                            rng,
                            &mut sink,
                            scratch,
                            &mut per_inst[inst],
                        ),
                    }
                }
                arena.spans[idx] = (e0, arena.emits.len() as u32, o0, arena.offers.len() as u32);
            }
        }

        // Replay in flat order: output append order, the visited filter's
        // charge/accept sequence, and next-frontier contiguity all match
        // instance-major execution exactly.
        arena.next.clear();
        for idx in 0..n {
            let slot = arena.cur[idx];
            let inst = slot.instance as usize;
            let (e0, e1, o0, o1) = arena.spans[idx];
            outs[inst].extend_from_slice(&arena.emits[e0 as usize..e1 as usize]);
            for &(vertex, prev) in &arena.offers[o0 as usize..o1 as usize] {
                let stats = &mut per_inst[inst];
                if cfg.without_replacement {
                    charge_visited_check(detector, arena.visited[inst].len(), stats);
                    if !arena.visited[inst].insert(vertex) {
                        continue;
                    }
                }
                stats.frontier_ops += 1;
                arena.next.push(BatchSlot { instance: slot.instance, vertex, prev, trial: 0 });
            }
        }
        std::mem::swap(&mut arena.cur, &mut arena.next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{AlgoConfig, Algorithm, FrontierMode, NeighborSize};
    use crate::step::CsrAccess;
    use csaw_graph::generators::toy_graph;

    struct Ns2;
    impl Algorithm for Ns2 {
        fn name(&self) -> &'static str {
            "ns2"
        }
        fn config(&self) -> AlgoConfig {
            AlgoConfig {
                depth: 3,
                neighbor_size: NeighborSize::Constant(2),
                frontier: FrontierMode::IndependentPerVertex,
                without_replacement: true,
            }
        }
    }

    #[test]
    fn chunk_matches_instance_major_engine() {
        let g = toy_graph();
        let algo = Ns2;
        let seeds: Vec<Vec<u32>> = vec![vec![8], vec![0], vec![8], vec![5]];
        let reference = crate::engine::Sampler::new(&g, &algo).run(&seeds);

        let kernel = StepKernel::new(&algo, 0x5eed);
        let mut access = CsrAccess { graph: &g };
        let chunk: Vec<ChunkInstance<'_>> = seeds
            .iter()
            .enumerate()
            .map(|(i, s)| ChunkInstance { global_id: i as u32, seeds: s })
            .collect();
        let mut outs = vec![Vec::new(); seeds.len()];
        let mut per_inst = vec![SimStats::new(); seeds.len()];
        let mut arena = BatchArena::new();
        let mut scratch = StepScratch::new();
        run_chunk(
            &kernel,
            &mut access,
            &chunk,
            0x5eed,
            4,
            &mut outs,
            &mut per_inst,
            &mut arena,
            &mut scratch,
        );
        assert_eq!(outs, reference.instances);

        // Aggregate stats are charge-identical modulo the batch_* counters
        // (instance-major never forms groups). sampled_edges is tallied by
        // the engine from outputs, so exclude it the same way here.
        let mut total: SimStats = per_inst.iter().copied().sum();
        assert!(total.batch_groups > 0);
        assert_eq!(
            total.batch_prefetch_hits + total.batch_prefetch_misses,
            total.batch_groups,
            "prefetch coverage must conserve"
        );
        assert_eq!(total.batch_group_hist.iter().sum::<u64>(), total.batch_groups);
        total.batch_groups = 0;
        total.batch_group_entries = 0;
        total.batch_group_hist = [0; 8];
        total.batch_prefetch_hits = 0;
        total.batch_prefetch_misses = 0;
        total.sampled_edges = reference.stats.sampled_edges;
        assert_eq!(total, reference.stats);
    }

    #[test]
    fn warm_arena_reruns_identically() {
        let g = toy_graph();
        let algo = Ns2;
        let seeds: Vec<Vec<u32>> = vec![vec![8], vec![2]];
        let kernel = StepKernel::new(&algo, 7);
        let chunk: Vec<ChunkInstance<'_>> = seeds
            .iter()
            .enumerate()
            .map(|(i, s)| ChunkInstance { global_id: i as u32, seeds: s })
            .collect();
        let mut arena = BatchArena::new();
        let mut scratch = StepScratch::new();
        let mut run = || {
            let mut access = CsrAccess { graph: &g };
            let mut outs = vec![Vec::new(); seeds.len()];
            let mut per_inst = vec![SimStats::new(); seeds.len()];
            run_chunk(
                &kernel,
                &mut access,
                &chunk,
                7,
                8,
                &mut outs,
                &mut per_inst,
                &mut arena,
                &mut scratch,
            );
            outs
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "a warm arena must not leak state between chunks");
    }
}
