//! Forest fire sampling (Leskovec & Faloutsos 2006; paper §II-A).
//!
//! "A probabilistic version of neighbor sampling, which selects a variable
//! number of neighbors for each vertex based on a burning probability."
//! The burn count is geometric with parameter `pf` (mean `pf / (1-pf)`),
//! matching the paper's evaluation setting `Pf = 0.7`.

use crate::api::{AlgoConfig, Algorithm, FrontierMode, NeighborSize};

/// Forest fire sampling.
#[derive(Debug, Clone, Copy)]
pub struct ForestFire {
    /// Burning probability (the paper's evaluation uses 0.7).
    pub pf: f64,
    /// Hops.
    pub depth: usize,
}

impl ForestFire {
    /// The paper's evaluation configuration: `Pf = 0.7`.
    pub fn paper(depth: usize) -> Self {
        ForestFire { pf: 0.7, depth }
    }
}

impl Algorithm for ForestFire {
    fn name(&self) -> &'static str {
        "forest-fire"
    }
    fn config(&self) -> AlgoConfig {
        AlgoConfig {
            depth: self.depth,
            neighbor_size: NeighborSize::Geometric { pf: self.pf },
            frontier: FrontierMode::IndependentPerVertex,
            without_replacement: true,
        }
    }
    fn edge_bias_is_uniform(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Sampler;
    use csaw_graph::generators::{ring_lattice, toy_graph};

    #[test]
    fn burn_count_mean_tracks_pf() {
        // On a high-degree regular graph the per-vertex burn count is an
        // uncapped geometric; first-hop counts should average pf/(1-pf).
        let g = ring_lattice(1000, 10); // degree 20 ≫ mean burn 2.33
        let algo = ForestFire::paper(1);
        let seeds: Vec<u32> = (0..2000).map(|i| (i % 1000) as u32).collect();
        let out = Sampler::new(&g, &algo).run_single_seeds(&seeds);
        let mean = out.sampled_edges() as f64 / out.instances.len() as f64;
        let expect = 0.7 / 0.3;
        assert!((mean - expect).abs() < 0.15, "burn mean {mean} vs {expect}");
    }

    #[test]
    fn zero_pf_burns_nothing() {
        let g = toy_graph();
        let algo = ForestFire { pf: 0.0, depth: 3 };
        let out = Sampler::new(&g, &algo).run_single_seeds(&[8, 0]);
        assert_eq!(out.sampled_edges(), 0);
    }

    #[test]
    fn fire_spreads_with_depth() {
        let g = toy_graph();
        let shallow = Sampler::new(&g, &ForestFire::paper(1)).run_single_seeds(&vec![8u32; 500]);
        let deep = Sampler::new(&g, &ForestFire::paper(4)).run_single_seeds(&vec![8u32; 500]);
        assert!(deep.sampled_edges() > shallow.sampled_edges());
    }

    #[test]
    fn sampled_edges_are_real_and_without_replacement() {
        let g = toy_graph();
        let algo = ForestFire { pf: 0.9, depth: 5 };
        let out = Sampler::new(&g, &algo).run_single_seeds(&vec![0u32; 100]);
        for inst in &out.instances {
            for &(v, u) in inst {
                assert!(g.has_edge(v, u));
            }
            let mut pairs = inst.clone();
            pairs.sort_unstable();
            let n = pairs.len();
            pairs.dedup();
            assert_eq!(pairs.len(), n, "re-expansion under without-replacement");
        }
    }
}
