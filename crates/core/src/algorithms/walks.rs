//! First-order random-walk variants (paper §II-A).

use crate::api::{AlgoConfig, Algorithm, EdgeCand, FrontierMode, NeighborSize, UpdateAction};
use csaw_gpu::Philox;
use csaw_graph::{GraphView, VertexId};

fn walk_config(length: usize) -> AlgoConfig {
    AlgoConfig {
        depth: length,
        neighbor_size: NeighborSize::Constant(1),
        frontier: FrontierMode::IndependentPerVertex,
        without_replacement: false,
    }
}

/// Unbiased simple random walk — the Deepwalk walk generator: every
/// neighbor is equally likely.
#[derive(Debug, Clone, Copy)]
pub struct SimpleRandomWalk {
    /// Walk length in steps.
    pub length: usize,
}

impl Algorithm for SimpleRandomWalk {
    fn name(&self) -> &'static str {
        "simple-random-walk"
    }
    fn config(&self) -> AlgoConfig {
        walk_config(self.length)
    }
    fn edge_bias_is_uniform(&self) -> bool {
        true
    }
}

/// Multi-independent random walk (§II-A): semantically a
/// [`SimpleRandomWalk`] run as many independent instances; the engine's
/// instance dimension provides the independence, so this is a named alias
/// with a helper that fans a seed out into `instances` copies.
#[derive(Debug, Clone, Copy)]
pub struct MultiIndependentRandomWalk {
    /// Walk length in steps.
    pub length: usize,
}

impl MultiIndependentRandomWalk {
    /// Fans `seed` out into `instances` independent single-seed instances.
    pub fn fan_out(seed: VertexId, instances: usize) -> Vec<VertexId> {
        vec![seed; instances]
    }
}

impl Algorithm for MultiIndependentRandomWalk {
    fn name(&self) -> &'static str {
        "multi-independent-random-walk"
    }
    fn config(&self) -> AlgoConfig {
        walk_config(self.length)
    }
    fn edge_bias_is_uniform(&self) -> bool {
        true
    }
}

/// Metropolis-Hastings random walk: propose a uniform neighbor `u`, move
/// with probability `min(1, deg(v)/deg(u))`, otherwise stay at `v`
/// (§II-A: "decides to either explore the sampled neighbor or choose to
/// stay at the same vertex based upon the degree of source and neighbor
/// vertices"). The stationary distribution becomes uniform over vertices.
#[derive(Debug, Clone, Copy)]
pub struct MetropolisHastingsWalk {
    /// Walk length in steps (rejected steps are consumed).
    pub length: usize,
}

impl Algorithm for MetropolisHastingsWalk {
    fn name(&self) -> &'static str {
        "metropolis-hastings-walk"
    }
    fn config(&self) -> AlgoConfig {
        walk_config(self.length)
    }
    fn accept(&self, g: GraphView<'_>, e: &EdgeCand, rng: &mut Philox) -> Option<VertexId> {
        let dv = g.degree(e.v) as f64;
        let du = g.degree(e.u) as f64;
        if du <= dv || rng.uniform() < dv / du {
            None // move accepted
        } else {
            Some(e.v) // stay
        }
    }
    fn edge_bias_is_uniform(&self) -> bool {
        true
    }
}

/// Random walk with jump: with probability `p_jump`, teleport to a vertex
/// chosen uniformly at random (§II-A); also jumps out of dead ends.
#[derive(Debug, Clone, Copy)]
pub struct RandomWalkWithJump {
    /// Walk length in steps.
    pub length: usize,
    /// Teleport probability per step.
    pub p_jump: f64,
}

impl Algorithm for RandomWalkWithJump {
    fn name(&self) -> &'static str {
        "random-walk-with-jump"
    }
    fn config(&self) -> AlgoConfig {
        walk_config(self.length)
    }
    fn update(
        &self,
        g: GraphView<'_>,
        e: &EdgeCand,
        _home: VertexId,
        rng: &mut Philox,
    ) -> UpdateAction {
        if rng.chance(self.p_jump) {
            UpdateAction::Add(rng.below(g.num_vertices() as u64) as VertexId)
        } else {
            UpdateAction::Add(e.u)
        }
    }
    fn on_dead_end(
        &self,
        g: GraphView<'_>,
        _v: VertexId,
        _home: VertexId,
        rng: &mut Philox,
    ) -> UpdateAction {
        UpdateAction::Add(rng.below(g.num_vertices() as u64) as VertexId)
    }
    fn edge_bias_is_uniform(&self) -> bool {
        true
    }
}

/// Random walk with restart: with probability `p_restart`, return to the
/// instance's home seed (the personalized-PageRank walk); dead ends also
/// restart.
#[derive(Debug, Clone, Copy)]
pub struct RandomWalkWithRestart {
    /// Walk length in steps.
    pub length: usize,
    /// Restart probability per step.
    pub p_restart: f64,
}

impl Algorithm for RandomWalkWithRestart {
    fn name(&self) -> &'static str {
        "random-walk-with-restart"
    }
    fn config(&self) -> AlgoConfig {
        walk_config(self.length)
    }
    fn update(
        &self,
        _g: GraphView<'_>,
        e: &EdgeCand,
        home: VertexId,
        rng: &mut Philox,
    ) -> UpdateAction {
        if rng.chance(self.p_restart) {
            UpdateAction::Add(home)
        } else {
            UpdateAction::Add(e.u)
        }
    }
    fn on_dead_end(
        &self,
        _g: GraphView<'_>,
        _v: VertexId,
        home: VertexId,
        _rng: &mut Philox,
    ) -> UpdateAction {
        UpdateAction::Add(home)
    }
    fn edge_bias_is_uniform(&self) -> bool {
        true
    }
}

/// Static biased random walk — biased Deepwalk (§II-A): "the degree of
/// each neighbor is used as its bias". This is the Fig. 9a workload.
#[derive(Debug, Clone, Copy)]
pub struct BiasedRandomWalk {
    /// Walk length in steps.
    pub length: usize,
}

impl Algorithm for BiasedRandomWalk {
    fn name(&self) -> &'static str {
        "biased-random-walk"
    }
    fn config(&self) -> AlgoConfig {
        walk_config(self.length)
    }
    fn edge_bias(&self, g: GraphView<'_>, e: &EdgeCand) -> f64 {
        g.degree(e.u) as f64
    }
    fn edge_bias_is_static(&self) -> bool {
        true // degree of the endpoint: per-edge, no walk state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Sampler;
    use csaw_graph::generators::{ring_lattice, toy_graph};
    use std::collections::HashMap;

    #[test]
    fn simple_walk_uniform_over_neighbors() {
        let g = toy_graph();
        let algo = SimpleRandomWalk { length: 1 };
        // 40k instances from v8: first hop should be uniform over its 5
        // neighbors.
        let seeds = vec![8u32; 40_000];
        let out = Sampler::new(&g, &algo).run_single_seeds(&seeds);
        let mut counts: HashMap<VertexId, usize> = HashMap::new();
        for inst in &out.instances {
            *counts.entry(inst[0].1).or_default() += 1;
        }
        for &u in g.neighbors(8) {
            let f = counts[&u] as f64 / 40_000.0;
            assert!((f - 0.2).abs() < 0.02, "neighbor {u}: {f}");
        }
    }

    #[test]
    fn biased_walk_prefers_high_degree() {
        let g = toy_graph();
        let algo = BiasedRandomWalk { length: 1 };
        let seeds = vec![8u32; 60_000];
        let out = Sampler::new(&g, &algo).run_single_seeds(&seeds);
        let mut counts: HashMap<VertexId, usize> = HashMap::new();
        for inst in &out.instances {
            *counts.entry(inst[0].1).or_default() += 1;
        }
        // Fig. 1 biases {3,6,2,2,2}/15 for {5,7,9,10,11}.
        let f7 = counts[&7] as f64 / 60_000.0;
        let f5 = counts[&5] as f64 / 60_000.0;
        assert!((f7 - 0.4).abs() < 0.02, "v7 {f7}");
        assert!((f5 - 0.2).abs() < 0.02, "v5 {f5}");
    }

    #[test]
    fn mh_walk_visits_uniformly_on_ring() {
        // On a regular graph MH accepts everything; stationary = uniform.
        let g = ring_lattice(20, 2);
        let algo = MetropolisHastingsWalk { length: 2000 };
        let out = Sampler::new(&g, &algo).run_single_seeds(&[0, 5, 10]);
        let mut visits = [0usize; 20];
        for inst in &out.instances {
            for &(_, u) in inst {
                visits[u as usize] += 1;
            }
        }
        let total: usize = visits.iter().sum();
        let mean = total as f64 / 20.0;
        for (v, &c) in visits.iter().enumerate() {
            assert!((c as f64 - mean).abs() < 0.25 * mean, "vertex {v}: {c} visits vs mean {mean}");
        }
    }

    #[test]
    fn mh_walk_equalizes_skewed_visits() {
        // On the toy graph, MH should visit low-degree vertices far more
        // often than a simple walk does relative to hubs.
        let g = toy_graph();
        let run_ratio = |simple: bool| {
            let mut visits = [0usize; 13];
            let out = if simple {
                Sampler::new(&g, &SimpleRandomWalk { length: 5000 }).run_single_seeds(&[0, 4, 8])
            } else {
                Sampler::new(&g, &MetropolisHastingsWalk { length: 5000 })
                    .run_single_seeds(&[0, 4, 8])
            };
            for inst in &out.instances {
                for &(_, u) in inst {
                    visits[u as usize] += 1;
                }
            }
            // Hub v7 (deg 6) vs leaf v1 (deg 2).
            visits[7] as f64 / visits[1].max(1) as f64
        };
        assert!(run_ratio(true) > 1.5 * run_ratio(false));
    }

    #[test]
    fn jump_walk_escapes_dead_ends() {
        // Directed chain 0 -> 1 -> 2; plain walk dies at 2, jumping walk
        // keeps going for the full length.
        let g = csaw_graph::CsrBuilder::new().add_edge(0, 1).add_edge(1, 2).build();
        let plain = Sampler::new(&g, &SimpleRandomWalk { length: 50 }).run_single_seeds(&[0]);
        assert!(plain.instances[0].len() <= 2);
        let jump = Sampler::new(&g, &RandomWalkWithJump { length: 50, p_jump: 0.2 })
            .run_single_seeds(&[0]);
        assert!(jump.instances[0].len() > 10, "jumps should sustain the walk");
    }

    #[test]
    fn restart_walk_returns_home() {
        let g = toy_graph();
        let algo = RandomWalkWithRestart { length: 3000, p_restart: 0.3 };
        let out = Sampler::new(&g, &algo).run_single_seeds(&[12]);
        // With p=0.3 the walk re-sources from 12 roughly 30% of steps.
        let from_home = out.instances[0].iter().filter(|&&(v, _)| v == 12).count() as f64;
        let frac = from_home / out.instances[0].len() as f64;
        assert!(frac > 0.2, "home fraction {frac}");
    }

    #[test]
    fn multi_independent_fan_out() {
        let seeds = MultiIndependentRandomWalk::fan_out(3, 5);
        assert_eq!(seeds, vec![3, 3, 3, 3, 3]);
        let g = toy_graph();
        let algo = MultiIndependentRandomWalk { length: 10 };
        let out = Sampler::new(&g, &algo).run_single_seeds(&seeds);
        assert_eq!(out.instances.len(), 5);
        // Independence: instances differ despite identical seeds.
        assert!(out.instances.iter().any(|i| i != &out.instances[0]));
    }

    #[test]
    fn walk_lengths_are_exact_on_connected_graph() {
        let g = ring_lattice(16, 2);
        for algo_len in [1usize, 7, 100] {
            let out =
                Sampler::new(&g, &SimpleRandomWalk { length: algo_len }).run_single_seeds(&[0]);
            assert_eq!(out.instances[0].len(), algo_len);
        }
    }
}
