//! Neighbor sampling — constant `NeighborSize` per vertex (paper §II-A,
//! the DGL `NeighborSampler` workload and the GCN mini-batch sampler).

use crate::api::{AlgoConfig, Algorithm, EdgeCand, FrontierMode, NeighborSize};
use csaw_graph::GraphView;

fn ns_config(ns: usize, depth: usize) -> AlgoConfig {
    AlgoConfig {
        depth,
        neighbor_size: NeighborSize::Constant(ns),
        frontier: FrontierMode::IndependentPerVertex,
        without_replacement: true,
    }
}

/// Unbiased neighbor sampling: each frontier vertex contributes
/// `NeighborSize` uniformly chosen distinct neighbors.
#[derive(Debug, Clone, Copy)]
pub struct UnbiasedNeighborSampling {
    /// Neighbors per vertex.
    pub neighbor_size: usize,
    /// Hops.
    pub depth: usize,
}

impl Algorithm for UnbiasedNeighborSampling {
    fn name(&self) -> &'static str {
        "unbiased-neighbor-sampling"
    }
    fn config(&self) -> AlgoConfig {
        ns_config(self.neighbor_size, self.depth)
    }
    fn edge_bias_is_uniform(&self) -> bool {
        true
    }
}

/// Biased neighbor sampling: neighbors chosen proportionally to the edge
/// weight (falling back to the neighbor's degree on unweighted graphs, a
/// static structural bias).
#[derive(Debug, Clone, Copy)]
pub struct BiasedNeighborSampling {
    /// Neighbors per vertex.
    pub neighbor_size: usize,
    /// Hops.
    pub depth: usize,
}

impl Algorithm for BiasedNeighborSampling {
    fn name(&self) -> &'static str {
        "biased-neighbor-sampling"
    }
    fn config(&self) -> AlgoConfig {
        ns_config(self.neighbor_size, self.depth)
    }
    fn edge_bias(&self, g: GraphView<'_>, e: &EdgeCand) -> f64 {
        if g.is_weighted() {
            e.weight as f64
        } else {
            g.degree(e.u) as f64
        }
    }
    fn edge_bias_is_static(&self) -> bool {
        true // edge weight or endpoint degree: per-edge, no walk state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Sampler;
    use csaw_graph::generators::toy_graph;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn samples_at_most_ns_distinct_neighbors_per_vertex() {
        let g = toy_graph();
        let algo = UnbiasedNeighborSampling { neighbor_size: 2, depth: 3 };
        let out = Sampler::new(&g, &algo).run_single_seeds(&[8u32; 50]);
        for inst in &out.instances {
            let mut per_source: HashMap<u32, HashSet<u32>> = HashMap::new();
            for &(v, u) in inst {
                assert!(g.has_edge(v, u));
                let set = per_source.entry(v).or_default();
                assert!(set.insert(u), "duplicate neighbor {u} sampled from {v}");
            }
            for (v, set) in per_source {
                assert!(set.len() <= 2, "vertex {v} contributed {} > NS", set.len());
            }
        }
    }

    #[test]
    fn unbiased_marginals_are_uniform() {
        let g = toy_graph();
        let algo = UnbiasedNeighborSampling { neighbor_size: 2, depth: 1 };
        let out = Sampler::new(&g, &algo).run_single_seeds(&vec![8u32; 60_000]);
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for inst in &out.instances {
            for &(_, u) in inst {
                *counts.entry(u).or_default() += 1;
            }
        }
        // Choosing 2 of 5 uniformly without replacement: each neighbor's
        // inclusion probability is 2/5.
        for &u in g.neighbors(8) {
            let f = counts[&u] as f64 / 60_000.0;
            assert!((f - 0.4).abs() < 0.02, "neighbor {u}: inclusion {f}");
        }
    }

    #[test]
    fn biased_marginals_favor_heavy_edges() {
        let g = toy_graph(); // unweighted → degree bias {3,6,2,2,2}
        let algo = BiasedNeighborSampling { neighbor_size: 1, depth: 1 };
        let out = Sampler::new(&g, &algo).run_single_seeds(&vec![8u32; 60_000]);
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for inst in &out.instances {
            *counts.entry(inst[0].1).or_default() += 1;
        }
        let f7 = counts[&7] as f64 / 60_000.0;
        assert!((f7 - 0.4).abs() < 0.02, "v7 (bias 6/15): {f7}");
    }

    #[test]
    fn weighted_graph_uses_edge_weights() {
        let g = toy_graph().with_unit_weights();
        let algo = BiasedNeighborSampling { neighbor_size: 1, depth: 1 };
        // Unit weights → uniform despite degree skew.
        let out = Sampler::new(&g, &algo).run_single_seeds(&vec![8u32; 50_000]);
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for inst in &out.instances {
            *counts.entry(inst[0].1).or_default() += 1;
        }
        for &u in g.neighbors(8) {
            let f = counts[&u] as f64 / 50_000.0;
            assert!((f - 0.2).abs() < 0.02, "neighbor {u}: {f}");
        }
    }

    #[test]
    fn frontier_growth_is_bounded_by_ns_pow_depth() {
        let g = toy_graph();
        let algo = UnbiasedNeighborSampling { neighbor_size: 2, depth: 3 };
        let out = Sampler::new(&g, &algo).run_single_seeds(&[8]);
        // Depth 3, NS 2: at most 2 + 4 + 8 = 14 edges.
        assert!(out.instances[0].len() <= 14);
    }
}
