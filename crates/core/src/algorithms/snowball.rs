//! Snowball sampling (paper §II-A): "initiates the sample using a set of
//! uniformly selected seed vertices; iteratively, it adds all neighbors of
//! every sampled vertex into the sample, until a required depth is
//! reached." NeighborSize = all; no bias, no selection randomness — the
//! degenerate corner of Table I that exercises the framework's
//! `NeighborSize::All` path.

use crate::api::{AlgoConfig, Algorithm, FrontierMode, NeighborSize};

/// Snowball sampling to a fixed depth.
#[derive(Debug, Clone, Copy)]
pub struct Snowball {
    /// Hops.
    pub depth: usize,
}

impl Algorithm for Snowball {
    fn name(&self) -> &'static str {
        "snowball"
    }
    fn config(&self) -> AlgoConfig {
        AlgoConfig {
            depth: self.depth,
            neighbor_size: NeighborSize::All,
            frontier: FrontierMode::IndependentPerVertex,
            without_replacement: true,
        }
    }
    fn edge_bias_is_uniform(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Sampler;
    use csaw_graph::generators::toy_graph;
    use std::collections::HashSet;

    #[test]
    fn depth1_takes_exactly_the_neighborhood() {
        let g = toy_graph();
        let out = Sampler::new(&g, &Snowball { depth: 1 }).run_single_seeds(&[8]);
        let edges: HashSet<_> = out.instances[0].iter().copied().collect();
        let expect: HashSet<_> = g.neighbors(8).iter().map(|&u| (8, u)).collect();
        assert_eq!(edges, expect);
    }

    #[test]
    fn snowball_is_deterministic_bfs() {
        let g = toy_graph();
        let a = Sampler::new(&g, &Snowball { depth: 3 }).run_single_seeds(&[0]);
        let b = Sampler::new(&g, &Snowball { depth: 3 }).run_single_seeds(&[0]);
        assert_eq!(a.instances, b.instances);
    }

    #[test]
    fn full_depth_covers_connected_component() {
        let g = toy_graph(); // connected, 13 vertices
        let out = Sampler::new(&g, &Snowball { depth: 13 }).run_single_seeds(&[0]);
        let mut reached: HashSet<u32> = HashSet::from([0]);
        for &(_, u) in &out.instances[0] {
            reached.insert(u);
        }
        assert_eq!(reached.len(), 13, "snowball to full depth reaches everything");
    }

    #[test]
    fn never_expands_a_vertex_twice() {
        let g = toy_graph();
        let out = Sampler::new(&g, &Snowball { depth: 5 }).run_single_seeds(&[8]);
        // Each expanded source appears with its full neighbor list exactly
        // once, so (v, u) pairs are unique.
        let mut pairs = out.instances[0].clone();
        pairs.sort_unstable();
        let n = pairs.len();
        pairs.dedup();
        assert_eq!(pairs.len(), n);
    }
}
