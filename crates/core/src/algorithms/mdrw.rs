//! Multi-dimensional random walk / frontier sampling (Ribeiro & Towsley
//! 2010) — the paper's running example (Fig. 3b, Fig. 4) and its dynamic
//! `VERTEXBIAS` showcase.
//!
//! A pool of seed vertices is kept; each step selects one pool vertex with
//! probability proportional to its degree, samples one uniform neighbor,
//! records the edge, and the neighbor replaces the pool vertex. This is
//! the Fig. 9b workload (GraphSAINT comparison).

use crate::api::{AlgoConfig, Algorithm, FrontierMode, NeighborSize};
use csaw_graph::{GraphView, VertexId};

/// Multi-dimensional random walk.
#[derive(Debug, Clone, Copy)]
pub struct MultiDimRandomWalk {
    /// Number of steps (sampled edges) per instance — the sampling budget.
    pub budget: usize,
}

impl MultiDimRandomWalk {
    /// Builds the per-instance seed pools: `frontier_size` seeds drawn
    /// uniformly per instance (the paper uses 2,000 per instance).
    pub fn seed_pools(
        num_vertices: usize,
        instances: usize,
        frontier_size: usize,
        seed: u64,
    ) -> Vec<Vec<VertexId>> {
        let mut pools = Vec::with_capacity(instances);
        for i in 0..instances {
            let mut rng = csaw_gpu::Philox::for_task(seed ^ 0x5eed_1001, i as u64);
            pools.push(
                (0..frontier_size).map(|_| rng.below(num_vertices as u64) as VertexId).collect(),
            );
        }
        pools
    }
}

impl Algorithm for MultiDimRandomWalk {
    fn name(&self) -> &'static str {
        "multi-dimensional-random-walk"
    }
    fn config(&self) -> AlgoConfig {
        AlgoConfig {
            depth: self.budget,
            neighbor_size: NeighborSize::Constant(1),
            frontier: FrontierMode::BiasedReplace,
            without_replacement: false,
        }
    }
    // Fig. 3b: VERTEXBIAS = degree, EDGEBIAS = 1, UPDATE = add sampled u.
    fn vertex_bias(&self, g: GraphView<'_>, v: VertexId) -> f64 {
        g.degree(v) as f64
    }
    fn edge_bias_is_uniform(&self) -> bool {
        true
    }
    fn edge_bias_is_static(&self) -> bool {
        // Opted out of static-bias CTPS caching: mdrw's selection state is
        // dominated by the dynamic VERTEXBIAS pool, and its uniform edge
        // selection is served closed-form — there is no table worth caching.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Sampler;
    use csaw_graph::generators::toy_graph;
    use std::collections::HashMap;

    #[test]
    fn budget_bounds_sampled_edges() {
        let g = toy_graph();
        let algo = MultiDimRandomWalk { budget: 25 };
        let out = Sampler::new(&g, &algo).run(&[vec![8, 0, 3]]);
        assert_eq!(out.instances[0].len(), 25, "toy graph has no dead ends");
    }

    #[test]
    fn frontier_selection_prefers_high_degree() {
        // Pool {v7 (deg 6), v1 (deg 2)}: v7 should source 6/8 of first
        // edges.
        let g = toy_graph();
        let algo = MultiDimRandomWalk { budget: 1 };
        let pools: Vec<Vec<u32>> = (0..60_000).map(|_| vec![7, 1]).collect();
        let out = Sampler::new(&g, &algo).run(&pools);
        let from7 = out.instances.iter().filter(|i| i[0].0 == 7).count();
        let f = from7 as f64 / 60_000.0;
        assert!((f - 0.75).abs() < 0.02, "v7 source freq {f}");
    }

    #[test]
    fn sampled_neighbor_replaces_pool_vertex() {
        // Budget 2 with a single-vertex pool: second edge must start at
        // the first edge's endpoint (Fig. 4 walkthrough).
        let g = toy_graph();
        let algo = MultiDimRandomWalk { budget: 2 };
        let out = Sampler::new(&g, &algo).run(&vec![vec![8u32]; 200]);
        for inst in &out.instances {
            assert_eq!(inst.len(), 2);
            assert_eq!(inst[0].1, inst[1].0);
        }
    }

    #[test]
    fn seed_pools_are_deterministic_and_sized() {
        let a = MultiDimRandomWalk::seed_pools(100, 5, 7, 3);
        let b = MultiDimRandomWalk::seed_pools(100, 5, 7, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(a.iter().all(|p| p.len() == 7));
        assert!(a.iter().flatten().all(|&v| v < 100));
        assert_ne!(a[0], a[1], "instances draw different pools");
    }

    #[test]
    fn neighbor_choice_is_uniform() {
        // EDGEBIAS = 1: from v8 each of 5 neighbors equally likely.
        let g = toy_graph();
        let algo = MultiDimRandomWalk { budget: 1 };
        let out = Sampler::new(&g, &algo).run(&vec![vec![8u32]; 50_000]);
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for inst in &out.instances {
            *counts.entry(inst[0].1).or_default() += 1;
        }
        for &u in g.neighbors(8) {
            let f = counts[&u] as f64 / 50_000.0;
            assert!((f - 0.2).abs() < 0.02, "neighbor {u}: {f}");
        }
    }
}
