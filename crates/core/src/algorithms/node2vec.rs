//! Node2vec (Grover & Leskovec 2016) — the paper's flagship *dynamic*
//! bias example (Fig. 3a).
//!
//! The bias of a candidate neighbor `u` of `v` depends on `u`'s relation
//! to the walk's previous vertex `t = SOURCE(e.v)`:
//!
//! - `u` is a neighbor of `t` → `w(v,u)` (distance 1);
//! - `u == t`               → `w(v,u) / p` (return, distance 0);
//! - otherwise               → `w(v,u) / q` (explore, distance 2).

use crate::api::{AlgoConfig, Algorithm, EdgeCand, FrontierMode, NeighborSize};
use csaw_graph::{GraphView, VertexId};

/// Node2vec second-order walk.
#[derive(Debug, Clone, Copy)]
pub struct Node2Vec {
    /// Walk length in steps.
    pub length: usize,
    /// Return parameter: small `p` favors going back.
    pub p: f64,
    /// In-out parameter: small `q` favors exploring outward.
    pub q: f64,
}

impl Algorithm for Node2Vec {
    fn name(&self) -> &'static str {
        "node2vec"
    }
    fn config(&self) -> AlgoConfig {
        AlgoConfig {
            depth: self.length,
            neighbor_size: NeighborSize::Constant(1),
            frontier: FrontierMode::IndependentPerVertex,
            without_replacement: false,
        }
    }
    fn edge_bias(&self, g: GraphView<'_>, e: &EdgeCand) -> f64 {
        let w = e.weight as f64;
        match e.prev {
            // First step: no second-order context, plain weight.
            None => w,
            Some(t) => {
                if e.u == t {
                    w / self.p
                } else if g.has_edge(e.u, t) {
                    w
                } else {
                    w / self.q
                }
            }
        }
    }
    /// Every candidate bias is `w(v,u)` scaled by one of
    /// `{1, 1/p, 1/q}`, so `max(w) * max(1, 1/p, 1/q)` dominates all of
    /// them. On unweighted graphs `max(w)` is 1.0 and the bound is O(1);
    /// on weighted graphs it is one streaming pass over the weight lane —
    /// still far cheaper than the `degree(v)` `has_edge` probes a full
    /// bias pass costs. This is what lets the adaptive kernel serve
    /// node2vec by rejection: each throw evaluates a *single* candidate's
    /// bias.
    fn edge_bias_bound(
        &self,
        g: GraphView<'_>,
        v: VertexId,
        prev: Option<VertexId>,
    ) -> Option<f64> {
        let w_max = match g.neighbor_weights(v) {
            Some(ws) => ws.iter().copied().fold(0.0f32, f32::max) as f64,
            None => 1.0,
        };
        if !w_max.is_finite() || w_max <= 0.0 {
            return None;
        }
        let scale = if prev.is_none() { 1.0 } else { (1.0 / self.p).max(1.0 / self.q).max(1.0) };
        scale.is_finite().then_some(w_max * scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Sampler;
    use csaw_graph::generators::toy_graph;
    use csaw_graph::CsrBuilder;
    use std::collections::HashMap;

    /// A 4-vertex graph where vertex 1's neighbors split cleanly into the
    /// three node2vec distance classes relative to prev = 0:
    /// 0 (return), 2 (common neighbor of 0), 3 (only reachable from 1).
    fn probe_graph() -> csaw_graph::Csr {
        CsrBuilder::new()
            .symmetrize(true)
            .add_edge(0, 1)
            .add_edge(0, 2)
            .add_edge(1, 2)
            .add_edge(1, 3)
            .build()
    }

    fn second_hop_distribution(p: f64, q: f64) -> HashMap<u32, f64> {
        let g = probe_graph();
        let algo = Node2Vec { length: 2, p, q };
        // Walks from 0: forced first hop is 1 or 2; keep those whose first
        // hop was 1 and tally the second hop.
        let out = Sampler::new(&g, &algo).run_single_seeds(&vec![0u32; 120_000]);
        let mut counts: HashMap<u32, usize> = HashMap::new();
        let mut total = 0usize;
        for inst in &out.instances {
            if inst.len() == 2 && inst[0].1 == 1 {
                *counts.entry(inst[1].1).or_default() += 1;
                total += 1;
            }
        }
        counts.into_iter().map(|(k, v)| (k, v as f64 / total as f64)).collect()
    }

    #[test]
    fn low_p_returns_home() {
        let d = second_hop_distribution(0.1, 1.0);
        // Biases from 1 with prev 0: u=0 → 1/p = 10, u=2 → 1 (nbr of 0),
        // u=3 → 1/q = 1. Return probability = 10/12.
        assert!((d[&0] - 10.0 / 12.0).abs() < 0.02, "return freq {}", d[&0]);
    }

    #[test]
    fn low_q_explores_outward() {
        let d = second_hop_distribution(1.0, 0.1);
        // Biases: u=0 → 1, u=2 → 1, u=3 → 10. Explore probability 10/12.
        assert!((d[&3] - 10.0 / 12.0).abs() < 0.02, "explore freq {}", d[&3]);
    }

    #[test]
    fn unit_p_q_reduces_to_weighted_walk() {
        let d = second_hop_distribution(1.0, 1.0);
        for u in [0u32, 2, 3] {
            assert!((d[&u] - 1.0 / 3.0).abs() < 0.02, "u={u}: {}", d[&u]);
        }
    }

    #[test]
    fn first_step_has_no_second_order_bias() {
        let g = probe_graph();
        let algo = Node2Vec { length: 1, p: 0.001, q: 1000.0 };
        let e = EdgeCand { v: 0, u: 1, weight: 2.0, prev: None };
        assert_eq!(algo.edge_bias(g.view(), &e), 2.0);
    }

    #[test]
    fn walks_are_paths_on_toy_graph() {
        let g = toy_graph();
        let algo = Node2Vec { length: 30, p: 0.5, q: 2.0 };
        let out = Sampler::new(&g, &algo).run_single_seeds(&[8, 0]);
        for inst in &out.instances {
            assert_eq!(inst.len(), 30);
            for w in inst.windows(2) {
                assert_eq!(w[0].1, w[1].0);
            }
            for &(v, u) in inst {
                assert!(g.has_edge(v, u));
            }
        }
    }
}
