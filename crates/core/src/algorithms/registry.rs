//! Table-I algorithm registry: stable ids, parameterized specs, and
//! boxed construction for callers that pick algorithms at runtime (the
//! CLI, the serving layer).
//!
//! A [`AlgoSpec`] is a *value*: id plus optional parameter overrides.
//! [`AlgoSpec::build`] validates it (zero depth, out-of-range
//! probabilities, unknown names at [`AlgoSpec::by_name`] time) and
//! returns the boxed [`Algorithm`], so misconfiguration surfaces as a
//! typed [`RegistryError`] before any kernel runs instead of a panic
//! deep inside the engine. [`AlgoSpec::key`] resolves defaults into a
//! hashable [`AlgoKey`] — two specs that build the same algorithm
//! compare equal, which is what lets a micro-batcher coalesce requests
//! into one launch.

use super::{
    BiasedNeighborSampling, BiasedRandomWalk, ForestFire, LayerSampling, MetropolisHastingsWalk,
    MultiDimRandomWalk, MultiIndependentRandomWalk, Node2Vec, RandomWalkWithJump,
    RandomWalkWithRestart, SimpleRandomWalk, Snowball, UnbiasedNeighborSampling,
};
use crate::api::Algorithm;

/// Stable identifier for each Table-I algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmId {
    /// Unbiased random walk, NeighborSize 1.
    SimpleRandomWalk,
    /// Metropolis-Hastings walk (degree-corrected acceptance).
    MetropolisHastingsWalk,
    /// Unbiased walk that teleports to a random vertex with `p_jump`.
    RandomWalkWithJump,
    /// Unbiased walk that returns to its seed with `p_restart`.
    RandomWalkWithRestart,
    /// Many independent unbiased walks (one instance per seed).
    MultiIndependentRandomWalk,
    /// Degree-biased random walk.
    BiasedRandomWalk,
    /// Second-order p/q-biased walk.
    Node2Vec,
    /// Unbiased neighbor sampling (constant NeighborSize per hop).
    UnbiasedNeighborSampling,
    /// Weight/degree-biased neighbor sampling.
    BiasedNeighborSampling,
    /// Forest fire: geometric NeighborSize with burn probability `pf`.
    ForestFire,
    /// Snowball: every neighbor, breadth-first.
    Snowball,
    /// Layer sampling: shared per-layer neighbor pool.
    LayerSampling,
    /// Multi-dimensional random walk over a biased frontier pool.
    MultiDimRandomWalk,
}

impl AlgorithmId {
    /// Every Table-I algorithm, in the table's order.
    pub const ALL: [AlgorithmId; 13] = [
        AlgorithmId::SimpleRandomWalk,
        AlgorithmId::MetropolisHastingsWalk,
        AlgorithmId::RandomWalkWithJump,
        AlgorithmId::RandomWalkWithRestart,
        AlgorithmId::MultiIndependentRandomWalk,
        AlgorithmId::BiasedRandomWalk,
        AlgorithmId::Node2Vec,
        AlgorithmId::UnbiasedNeighborSampling,
        AlgorithmId::BiasedNeighborSampling,
        AlgorithmId::ForestFire,
        AlgorithmId::Snowball,
        AlgorithmId::LayerSampling,
        AlgorithmId::MultiDimRandomWalk,
    ];

    /// The registry name (matches the CLI's `--algo` vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmId::SimpleRandomWalk => "simple-walk",
            AlgorithmId::MetropolisHastingsWalk => "mh-walk",
            AlgorithmId::RandomWalkWithJump => "jump-walk",
            AlgorithmId::RandomWalkWithRestart => "restart-walk",
            AlgorithmId::MultiIndependentRandomWalk => "mirw",
            AlgorithmId::BiasedRandomWalk => "biased-walk",
            AlgorithmId::Node2Vec => "node2vec",
            AlgorithmId::UnbiasedNeighborSampling => "neighbor",
            AlgorithmId::BiasedNeighborSampling => "biased-neighbor",
            AlgorithmId::ForestFire => "forest-fire",
            AlgorithmId::Snowball => "snowball",
            AlgorithmId::LayerSampling => "layer",
            AlgorithmId::MultiDimRandomWalk => "mdrw",
        }
    }

    /// Looks an id up by registry name.
    pub fn from_name(name: &str) -> Option<AlgorithmId> {
        AlgorithmId::ALL.iter().copied().find(|id| id.name() == name)
    }

    /// True for walk-shaped algorithms whose `depth` parameter is a walk
    /// length (or MDRW budget) rather than a hop count — the CLI maps
    /// `--length` vs `--depth` with this.
    pub fn uses_walk_length(self) -> bool {
        matches!(
            self,
            AlgorithmId::SimpleRandomWalk
                | AlgorithmId::MetropolisHastingsWalk
                | AlgorithmId::RandomWalkWithJump
                | AlgorithmId::RandomWalkWithRestart
                | AlgorithmId::MultiIndependentRandomWalk
                | AlgorithmId::BiasedRandomWalk
                | AlgorithmId::Node2Vec
                | AlgorithmId::MultiDimRandomWalk
        )
    }
}

/// Why a spec failed to resolve into an algorithm.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// [`AlgoSpec::by_name`] was given a name no Table-I algorithm has.
    UnknownAlgorithm(String),
    /// Depth / walk length resolved to zero — the run would sample
    /// nothing, which a service treats as caller error.
    ZeroDepth(AlgorithmId),
    /// A probability-like parameter fell outside its valid range.
    InvalidParam {
        /// Algorithm the spec names.
        id: AlgorithmId,
        /// Offending parameter.
        param: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownAlgorithm(name) => write!(f, "unknown algorithm '{name}'"),
            RegistryError::ZeroDepth(id) => {
                write!(f, "{}: depth/length 0 samples nothing", id.name())
            }
            RegistryError::InvalidParam { id, param, value } => {
                write!(f, "{}: parameter {param} = {value} out of range", id.name())
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// Resolved, hashable identity of a spec: id plus every parameter after
/// default substitution. Two specs with equal keys build algorithms
/// with identical behavior, so they may share one engine launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AlgoKey {
    id: AlgorithmId,
    depth: usize,
    neighbor_size: usize,
    // Probability parameters, bit-cast: f64 is not Hash/Eq, bits are.
    prob_bits: [u64; 5],
}

/// A parameterized reference to a Table-I algorithm. Unset fields take
/// the registry defaults (the CLI's defaults: depth 2, walk length 40,
/// NeighborSize 2, `pf` 0.7, `p`/`q` 1.0, `p_jump` 0.1, `p_restart`
/// 0.15).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlgoSpec {
    /// Which algorithm.
    pub id: AlgorithmId,
    /// Sampling depth, or walk length / MDRW budget for walk-shaped
    /// algorithms.
    pub depth: Option<usize>,
    /// NeighborSize (layer size for layer sampling). Ignored by
    /// algorithms whose NeighborSize is structural (walks, snowball).
    pub neighbor_size: Option<usize>,
    /// Forest-fire burn probability.
    pub pf: Option<f64>,
    /// node2vec return parameter.
    pub p: Option<f64>,
    /// node2vec in-out parameter.
    pub q: Option<f64>,
    /// Jump probability (random walk with jump).
    pub p_jump: Option<f64>,
    /// Restart probability (random walk with restart).
    pub p_restart: Option<f64>,
}

/// Default walk length when `depth` is unset on a walk-shaped spec.
const DEFAULT_LENGTH: usize = 40;
/// Default traversal depth when `depth` is unset.
const DEFAULT_DEPTH: usize = 2;
/// Default NeighborSize.
const DEFAULT_NS: usize = 2;

impl AlgoSpec {
    /// A spec with every parameter at its registry default.
    pub fn new(id: AlgorithmId) -> Self {
        AlgoSpec {
            id,
            depth: None,
            neighbor_size: None,
            pf: None,
            p: None,
            q: None,
            p_jump: None,
            p_restart: None,
        }
    }

    /// Resolves a registry name, or a typed error for unknown names.
    pub fn by_name(name: &str) -> Result<Self, RegistryError> {
        AlgorithmId::from_name(name)
            .map(AlgoSpec::new)
            .ok_or_else(|| RegistryError::UnknownAlgorithm(name.to_string()))
    }

    /// Overrides the depth / walk length.
    pub fn with_depth(mut self, depth: usize) -> Self {
        self.depth = Some(depth);
        self
    }

    /// Overrides the NeighborSize.
    pub fn with_neighbor_size(mut self, ns: usize) -> Self {
        self.neighbor_size = Some(ns);
        self
    }

    fn resolved_depth(&self) -> usize {
        self.depth.unwrap_or(if self.id.uses_walk_length() {
            DEFAULT_LENGTH
        } else {
            DEFAULT_DEPTH
        })
    }

    fn resolved_ns(&self) -> usize {
        self.neighbor_size.unwrap_or(DEFAULT_NS)
    }

    /// The resolved identity of this spec (defaults substituted): the
    /// hashable coalescing key of the serving layer's micro-batcher.
    pub fn key(&self) -> AlgoKey {
        AlgoKey {
            id: self.id,
            depth: self.resolved_depth(),
            neighbor_size: self.resolved_ns(),
            prob_bits: [
                self.pf.unwrap_or(0.7).to_bits(),
                self.p.unwrap_or(1.0).to_bits(),
                self.q.unwrap_or(1.0).to_bits(),
                self.p_jump.unwrap_or(0.1).to_bits(),
                self.p_restart.unwrap_or(0.15).to_bits(),
            ],
        }
    }

    /// Validates the spec and builds the algorithm.
    pub fn build(&self) -> Result<Box<dyn Algorithm>, RegistryError> {
        let depth = self.resolved_depth();
        if depth == 0 {
            return Err(RegistryError::ZeroDepth(self.id));
        }
        let ns = self.resolved_ns();
        let prob = |value: Option<f64>, default: f64, param: &'static str, open: bool| {
            let v = value.unwrap_or(default);
            let ok = if open { v > 0.0 && v < 1.0 } else { (0.0..=1.0).contains(&v) };
            if ok && v.is_finite() {
                Ok(v)
            } else {
                Err(RegistryError::InvalidParam { id: self.id, param, value: v })
            }
        };
        let positive = |value: Option<f64>, default: f64, param: &'static str| {
            let v = value.unwrap_or(default);
            if v > 0.0 && v.is_finite() {
                Ok(v)
            } else {
                Err(RegistryError::InvalidParam { id: self.id, param, value: v })
            }
        };
        Ok(match self.id {
            AlgorithmId::SimpleRandomWalk => Box::new(SimpleRandomWalk { length: depth }),
            AlgorithmId::MetropolisHastingsWalk => {
                Box::new(MetropolisHastingsWalk { length: depth })
            }
            AlgorithmId::RandomWalkWithJump => Box::new(RandomWalkWithJump {
                length: depth,
                p_jump: prob(self.p_jump, 0.1, "p_jump", false)?,
            }),
            AlgorithmId::RandomWalkWithRestart => Box::new(RandomWalkWithRestart {
                length: depth,
                p_restart: prob(self.p_restart, 0.15, "p_restart", false)?,
            }),
            AlgorithmId::MultiIndependentRandomWalk => {
                Box::new(MultiIndependentRandomWalk { length: depth })
            }
            AlgorithmId::BiasedRandomWalk => Box::new(BiasedRandomWalk { length: depth }),
            AlgorithmId::Node2Vec => Box::new(Node2Vec {
                length: depth,
                p: positive(self.p, 1.0, "p")?,
                q: positive(self.q, 1.0, "q")?,
            }),
            AlgorithmId::UnbiasedNeighborSampling => {
                Box::new(UnbiasedNeighborSampling { neighbor_size: ns, depth })
            }
            AlgorithmId::BiasedNeighborSampling => {
                Box::new(BiasedNeighborSampling { neighbor_size: ns, depth })
            }
            AlgorithmId::ForestFire => {
                Box::new(ForestFire { pf: prob(self.pf, 0.7, "pf", true)?, depth })
            }
            AlgorithmId::Snowball => Box::new(Snowball { depth }),
            AlgorithmId::LayerSampling => Box::new(LayerSampling { layer_size: ns, depth }),
            AlgorithmId::MultiDimRandomWalk => Box::new(MultiDimRandomWalk { budget: depth }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::FrontierMode;

    #[test]
    fn every_id_round_trips_by_name_and_builds() {
        for id in AlgorithmId::ALL {
            assert_eq!(AlgorithmId::from_name(id.name()), Some(id));
            let algo = AlgoSpec::new(id).build().unwrap_or_else(|e| panic!("{}: {e}", id.name()));
            assert!(algo.config().depth > 0, "{}", algo.name());
        }
    }

    #[test]
    fn unknown_name_is_typed() {
        assert_eq!(
            AlgoSpec::by_name("bogus"),
            Err(RegistryError::UnknownAlgorithm("bogus".into()))
        );
    }

    #[test]
    fn zero_depth_rejected() {
        match AlgoSpec::by_name("neighbor").unwrap().with_depth(0).build() {
            Err(err) => {
                assert_eq!(err, RegistryError::ZeroDepth(AlgorithmId::UnbiasedNeighborSampling))
            }
            Ok(_) => panic!("zero depth must be rejected"),
        }
    }

    #[test]
    fn bad_probability_rejected() {
        let mut spec = AlgoSpec::new(AlgorithmId::ForestFire);
        spec.pf = Some(1.0); // geometric NeighborSize needs pf < 1
        assert!(matches!(spec.build(), Err(RegistryError::InvalidParam { param: "pf", .. })));
        let mut spec = AlgoSpec::new(AlgorithmId::Node2Vec);
        spec.p = Some(0.0);
        assert!(matches!(spec.build(), Err(RegistryError::InvalidParam { param: "p", .. })));
    }

    #[test]
    fn key_resolves_defaults() {
        // Explicit defaults hash/compare equal to unset fields: the
        // micro-batcher may coalesce them into one launch.
        let implicit = AlgoSpec::new(AlgorithmId::UnbiasedNeighborSampling);
        let explicit = implicit.with_depth(2).with_neighbor_size(2);
        assert_eq!(implicit.key(), explicit.key());
        assert_ne!(implicit.key(), implicit.with_depth(3).key());
        assert_ne!(implicit.key(), AlgoSpec::new(AlgorithmId::Snowball).key());
    }

    #[test]
    fn mdrw_is_the_only_pool_frontier_spec_with_replace() {
        let algo = AlgoSpec::new(AlgorithmId::MultiDimRandomWalk).build().unwrap();
        assert_eq!(algo.config().frontier, FrontierMode::BiasedReplace);
    }
}
