//! The Table-I algorithm zoo, each expressed through the three C-SAW hooks
//! exactly as the paper's Fig. 3 listings do.
//!
//! | Algorithm | Bias | NeighborSize |
//! |---|---|---|
//! | [`SimpleRandomWalk`] | unbiased | 1 |
//! | [`MetropolisHastingsWalk`] | unbiased | 1 |
//! | [`RandomWalkWithJump`] | unbiased | 1 |
//! | [`RandomWalkWithRestart`] | unbiased | 1 |
//! | [`MultiIndependentRandomWalk`] | unbiased | 1 (many instances) |
//! | [`BiasedRandomWalk`] | static (degree) | 1 |
//! | [`Node2Vec`] | dynamic (p/q) | 1 |
//! | [`UnbiasedNeighborSampling`] | unbiased | constant |
//! | [`BiasedNeighborSampling`] | static (weight/degree) | constant |
//! | [`ForestFire`] | unbiased | variable (geometric) |
//! | [`Snowball`] | unbiased | all |
//! | [`LayerSampling`] | static | per layer |
//! | [`MultiDimRandomWalk`] | dynamic (pool degree) | 1 |

mod forest_fire;
mod layer;
mod mdrw;
mod neighbor;
mod node2vec;
mod snowball;
mod walks;

pub mod registry;

pub use forest_fire::ForestFire;
pub use layer::LayerSampling;
pub use mdrw::MultiDimRandomWalk;
pub use neighbor::{BiasedNeighborSampling, UnbiasedNeighborSampling};
pub use node2vec::Node2Vec;
pub use registry::{AlgoSpec, AlgorithmId, RegistryError};
pub use snowball::Snowball;
pub use walks::{
    BiasedRandomWalk, MetropolisHastingsWalk, MultiIndependentRandomWalk, RandomWalkWithJump,
    RandomWalkWithRestart, SimpleRandomWalk,
};
