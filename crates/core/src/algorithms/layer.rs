//! Layer sampling (paper §II-A, after Gao et al.'s LGCL): "samples a
//! constant number of neighbors for all vertices present in the frontier
//! in each round" — one shared neighbor pool per layer, unlike neighbor
//! sampling's per-vertex pools. This is the algorithm that breaks
//! vertex-centric frameworks (§III-A) and motivates C-SAW's pool-level
//! SELECT.

use crate::api::{AlgoConfig, Algorithm, EdgeCand, FrontierMode, NeighborSize};
use csaw_graph::{GraphView, VertexId};

/// Layer sampling with a per-layer budget.
#[derive(Debug, Clone, Copy)]
pub struct LayerSampling {
    /// Neighbors selected per layer (from the union pool).
    pub layer_size: usize,
    /// Number of layers.
    pub depth: usize,
}

impl Algorithm for LayerSampling {
    fn name(&self) -> &'static str {
        "layer-sampling"
    }
    fn config(&self) -> AlgoConfig {
        AlgoConfig {
            depth: self.depth,
            neighbor_size: NeighborSize::Constant(self.layer_size),
            frontier: FrontierMode::SharedLayer,
            without_replacement: true,
        }
    }
    fn edge_bias(&self, g: GraphView<'_>, e: &EdgeCand) -> f64 {
        // Importance ∝ candidate degree (static bias per Table I).
        g.degree(e.u) as f64
    }
    fn edge_bias_is_static(&self) -> bool {
        // Static per Table I. The shared-layer union pool is still built
        // per step, so expand_layer never consults the per-vertex cache —
        // the flag is accurate but only the per-vertex path exploits it.
        true
    }
    /// Degree bias is dominated by the largest neighbor degree — one scan
    /// of `v`'s adjacency, no `EDGEBIAS` calls. The method chooser keeps
    /// layer sampling on ITS regardless (the shared-layer pool samples
    /// without replacement, where one CTPS serves all `layer_size`
    /// picks), so this hook exists for per-vertex reconfigurations and to
    /// document the bound's shape for degree-biased algorithms.
    fn edge_bias_bound(
        &self,
        g: GraphView<'_>,
        v: VertexId,
        _prev: Option<VertexId>,
    ) -> Option<f64> {
        let max_deg = g.neighbors(v).iter().map(|&u| g.degree(u)).max()?;
        (max_deg > 0).then_some(max_deg as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Sampler;
    use csaw_graph::generators::{ring_lattice, toy_graph};

    #[test]
    fn per_layer_budget_is_shared_not_per_vertex() {
        let g = ring_lattice(100, 3); // degree 6 everywhere
        let algo = LayerSampling { layer_size: 4, depth: 1 };
        // Instance with many seeds: neighbor sampling would take 4 per
        // seed; layer sampling takes 4 total.
        let out = Sampler::new(&g, &algo).run(&[vec![0, 10, 20, 30, 40]]);
        assert_eq!(out.instances[0].len(), 4);
    }

    #[test]
    fn layers_accumulate_over_depth() {
        let g = ring_lattice(100, 3);
        let algo = LayerSampling { layer_size: 4, depth: 3 };
        let out = Sampler::new(&g, &algo).run(&[vec![0, 50]]);
        // ≤ 4 per layer × 3 layers; positive-bias pools keep it exactly 4
        // on a regular graph until without-replacement bites.
        assert!(out.instances[0].len() <= 12);
        assert!(out.instances[0].len() >= 8);
    }

    #[test]
    fn high_degree_candidates_preferred() {
        let g = toy_graph();
        let algo = LayerSampling { layer_size: 1, depth: 1 };
        let mut hub = 0usize;
        let n = 30_000;
        for i in 0..n {
            let out = Sampler::new(&g, &algo)
                .with_options(crate::engine::RunOptions { seed: i as u64, ..Default::default() })
                .run(&[vec![8]]);
            if out.instances[0][0].1 == 7 {
                hub += 1;
            }
        }
        let f = hub as f64 / n as f64;
        assert!((f - 0.4).abs() < 0.03, "v7 bias 6/15 → 0.4, got {f}");
    }

    #[test]
    fn sampled_edges_are_real() {
        let g = toy_graph();
        let algo = LayerSampling { layer_size: 3, depth: 3 };
        let out = Sampler::new(&g, &algo).run(&[vec![0, 8]]);
        for &(v, u) in &out.instances[0] {
            assert!(g.has_edge(v, u));
        }
    }

    #[test]
    fn empty_frontier_terminates_early() {
        // Star with only out-edges from 0: layer 2's pool is empty.
        let g = csaw_graph::CsrBuilder::new().add_edge(0, 1).add_edge(0, 2).build();
        let algo = LayerSampling { layer_size: 2, depth: 5 };
        let out = Sampler::new(&g, &algo).run(&[vec![0]]);
        assert!(out.instances[0].len() <= 2);
    }
}
