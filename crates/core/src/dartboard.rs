//! The dartboard (rejection) method (paper §II-B, Fig. 1c).
//!
//! Throw a 2-D dart: a uniform candidate column and a uniform height; if
//! the height clears the candidate's bias bar, reject and rethrow. Cheap
//! to set up, but "may require many trials before picking up a vertex
//! successfully, especially for scale-free graphs where a few candidates
//! have much larger biases than others" — which is exactly what the A3
//! ablation measures against inverse transform sampling.

use csaw_gpu::stats::SimStats;
use csaw_gpu::Philox;

/// A dartboard over a bias array.
#[derive(Debug, Clone, PartialEq)]
pub struct Dartboard {
    biases: Vec<f64>,
    max_bias: f64,
}

impl Dartboard {
    /// An empty board, for use as a [`Dartboard::rebuild`] target.
    pub fn empty() -> Dartboard {
        Dartboard { biases: Vec::new(), max_bias: 0.0 }
    }

    /// Builds the board (just records the max bar height — O(n) but with a
    /// trivial constant; this is the method's appeal).
    pub fn build(biases: &[f64], stats: &mut SimStats) -> Option<Dartboard> {
        let mut d = Dartboard::empty();
        d.rebuild(biases, stats).then_some(d)
    }

    /// Allocation-free form of [`Dartboard::build`]: rebuilds `self` in
    /// place, reusing its bias buffer. Returns `false` (leaving the board
    /// empty) on the inputs `build` rejects.
    ///
    /// Entries must be finite and non-negative: `fold(0.0, f64::max)`
    /// silently swallows NaN (so a NaN guard on the result is dead code),
    /// and a `+inf` bar makes every later [`Dartboard::sample`] throw
    /// land below the board ceiling forever — a non-terminating loop, not
    /// a bad sample. Reject at build time instead.
    pub fn rebuild(&mut self, biases: &[f64], stats: &mut SimStats) -> bool {
        self.biases.clear();
        self.max_bias = 0.0;
        if biases.is_empty() || biases.iter().any(|&b| !b.is_finite() || b < 0.0) {
            return false;
        }
        let max_bias = biases.iter().copied().fold(0.0f64, f64::max);
        if max_bias <= 0.0 {
            return false;
        }
        stats.warp_cycles += biases.len().div_ceil(32) as u64; // warp max-reduce
        self.biases.extend_from_slice(biases);
        self.max_bias = max_bias;
        true
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.biases.len()
    }

    /// True when the board has no candidates (never produced by `build`).
    pub fn is_empty(&self) -> bool {
        self.biases.is_empty()
    }

    /// Throws darts until one sticks; returns the candidate and charges
    /// one iteration per throw (comparable to SELECT's do-while trips).
    pub fn sample(&self, rng: &mut Philox, stats: &mut SimStats) -> usize {
        loop {
            stats.rng_draws += 2;
            stats.select_iterations += 1;
            // Two draws + one dependent read of the bias bar.
            stats.warp_cycles += 8 + 16;
            let col = rng.below(self.biases.len() as u64) as usize;
            let height = rng.uniform() * self.max_bias;
            if height < self.biases[col] {
                stats.selections += 1;
                return col;
            }
        }
    }

    /// Expected throws per accepted dart: `n * max / Σ biases`.
    pub fn expected_trials(&self) -> f64 {
        self.biases.len() as f64 * self.max_bias / self.biases.iter().sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_matches_bias_distribution() {
        let biases = [3.0, 6.0, 2.0, 2.0, 2.0];
        let mut s = SimStats::new();
        let d = Dartboard::build(&biases, &mut s).unwrap();
        let mut rng = Philox::new(6);
        let n = 200_000;
        let mut counts = [0usize; 5];
        for _ in 0..n {
            counts[d.sample(&mut rng, &mut s)] += 1;
        }
        let total: f64 = biases.iter().sum();
        for (i, &c) in counts.iter().enumerate() {
            let f = c as f64 / n as f64;
            assert!((f - biases[i] / total).abs() < 0.01, "col {i}");
        }
    }

    #[test]
    fn skew_inflates_trial_count() {
        let flat = Dartboard::build(&[1.0; 16], &mut SimStats::new()).unwrap();
        let mut skewed = vec![1.0; 16];
        skewed[0] = 100.0;
        let skew = Dartboard::build(&skewed, &mut SimStats::new()).unwrap();
        assert!((flat.expected_trials() - 1.0).abs() < 1e-9);
        assert!(skew.expected_trials() > 10.0);

        // Measured trials agree with the analytic expectation.
        let mut s = SimStats::new();
        let mut rng = Philox::new(7);
        for _ in 0..5_000 {
            skew.sample(&mut rng, &mut s);
        }
        let measured = s.iterations_per_selection();
        assert!(
            (measured - skew.expected_trials()).abs() / skew.expected_trials() < 0.1,
            "measured {measured} vs expected {}",
            skew.expected_trials()
        );
    }

    #[test]
    fn empty_or_zero_is_none() {
        let mut s = SimStats::new();
        assert!(Dartboard::build(&[], &mut s).is_none());
        assert!(Dartboard::build(&[0.0], &mut s).is_none());
    }

    /// Regression: a `+inf` bar used to survive `build` (the NaN guard
    /// checked the folded max, which can never be NaN), and the resulting
    /// board's `sample()` rejected forever — this test hung before the
    /// build-time guard.
    #[test]
    fn non_finite_biases_are_rejected_at_build() {
        let mut s = SimStats::new();
        assert!(Dartboard::build(&[1.0, f64::INFINITY], &mut s).is_none());
        assert!(Dartboard::build(&[f64::NAN, 1.0], &mut s).is_none());
        assert!(Dartboard::build(&[1.0, f64::NAN], &mut s).is_none());
        assert!(Dartboard::build(&[1.0, -2.0], &mut s).is_none());
        // Rejected builds charge no work.
        assert_eq!(s.warp_cycles, 0);
    }

    #[test]
    fn rebuild_matches_build_and_reuses_buffers() {
        let biases = [3.0, 6.0, 2.0];
        let mut s = SimStats::new();
        let built = Dartboard::build(&biases, &mut s).unwrap();
        let mut d = Dartboard::empty();
        assert!(d.rebuild(&[5.0, 1.0, 1.0, 1.0], &mut s));
        assert!(d.rebuild(&biases, &mut s));
        assert_eq!(d, built);
        assert!(!d.rebuild(&[1.0, f64::INFINITY], &mut s));
        assert!(d.is_empty());
    }

    #[test]
    fn zero_bias_columns_never_stick() {
        let mut s = SimStats::new();
        let d = Dartboard::build(&[0.0, 1.0, 0.0], &mut s).unwrap();
        let mut rng = Philox::new(8);
        for _ in 0..1000 {
            assert_eq!(d.sample(&mut rng, &mut s), 1);
        }
    }
}
