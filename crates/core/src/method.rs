//! Runtime-adaptive sampling-method selection.
//!
//! C-SAW hardwires inverse transform sampling (ITS) into the kernel, but
//! ThunderRW and FlexiWalker (PAPERS.md) show no single method wins: ITS,
//! alias tables, and rejection each dominate a different
//! (degree, bias-skew, reuse) regime. This module owns the decision
//! table; [`crate::step::StepKernel`] consults it once per expansion:
//!
//! | bias class            | regime                           | method |
//! |-----------------------|----------------------------------|--------|
//! | uniform               | any                              | [`SelectMethod::ClosedFormUniform`] |
//! | any                   | without-replacement / pool modes | [`SelectMethod::Its`] |
//! | static, cache present | degree ≥ 2                       | [`SelectMethod::CachedAlias`] |
//! | static, no cache      | any                              | [`SelectMethod::Its`] |
//! | dynamic, bound known  | degree ≥ 4, acceptance healthy   | [`SelectMethod::Rejection`] |
//! | dynamic, no bound     | any                              | [`SelectMethod::Its`] |
//!
//! The contract split: [`MethodPolicy::ForceIts`] (the default) keeps the
//! kernel bit-identical to the pinned `step_golden` output, because ITS
//! consumes exactly one draw per selection from the per-task Philox
//! stream. [`MethodPolicy::Adaptive`] lets the chooser pick methods that
//! consume *different* draws (alias: 2, rejection: 2 per throw), so its
//! output is validated by chi-square distribution equality instead of
//! bit-exactness — every method samples the same target distribution, so
//! swapping methods mid-run is sound even when the choice depends on
//! racy cache state.

/// Which sampling methods the kernel may use.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum MethodPolicy {
    /// Inverse transform sampling everywhere (plus the pre-existing
    /// closed-form uniform path): bit-identical to the pinned goldens.
    #[default]
    ForceIts,
    /// Per-expansion method choice by [`choose_method`]. Distribution-
    /// equal to `ForceIts`, not bit-equal.
    Adaptive,
}

/// The method chosen for one expansion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectMethod {
    /// Build/lookup the CTPS and binary-search it (the paper's kernel).
    Its,
    /// O(1) draws from an alias table cached per hot static-bias vertex.
    CachedAlias,
    /// Bounded dartboard throws evaluating only the proposed candidate's
    /// bias — the win for dynamic biases like node2vec, where ITS must
    /// evaluate all `d` candidate biases per step.
    Rejection,
    /// The closed-form uniform CTPS (no table at all).
    ClosedFormUniform,
}

/// Minimum frontier degree before a cached alias table pays for itself
/// (below this, the CTPS rebuild is a couple of adds).
pub const ALIAS_MIN_DEGREE: usize = 2;

/// Minimum frontier degree before rejection can beat ITS: each ITS step
/// evaluates all `d` candidate biases, each rejection throw evaluates
/// one, so the break-even sits near the expected trial count.
pub const REJECTION_MIN_DEGREE: usize = 4;

/// Throw cap per rejection-served pick: past this the kernel falls back
/// to the exact ITS lane (a termination guarantee; mixing exact methods
/// preserves the target distribution).
pub const REJECTION_MAX_TRIALS: u64 = 32;

/// Expected-trials ceiling: when the measured (or estimated) skew
/// `n·max/Σ` exceeds this, rejection is throwing too many darts and ITS
/// is cheaper.
pub const MAX_EXPECTED_TRIALS: f64 = 8.0;

/// Everything the decision table looks at for one expansion.
#[derive(Debug, Clone, Copy)]
pub struct MethodContext {
    /// `Algorithm::edge_bias_is_uniform()`.
    pub uniform: bool,
    /// `Algorithm::edge_bias_is_static()`.
    pub static_bias: bool,
    /// Sampling without replacement (bitmap/linear-search SELECT loops).
    pub without_replacement: bool,
    /// Degree of the frontier vertex being expanded.
    pub degree: usize,
    /// A `CtpsCache` is attached and eligible (static bias, stable epoch).
    pub cache_available: bool,
    /// `Algorithm::edge_bias_bound` returned a finite positive bound.
    pub bound_available: bool,
    /// Live acceptance feedback says rejection is currently healthy.
    pub rejection_allowed: bool,
    /// Cheap `n·max/Σ` skew estimate when the bias lane has already been
    /// materialized this expansion; `None` when it would cost a pass.
    pub skew: Option<f64>,
}

/// The decision table (pure; the kernel threads live state in through
/// [`MethodContext`]).
pub fn choose_method(ctx: &MethodContext) -> SelectMethod {
    if ctx.uniform {
        return SelectMethod::ClosedFormUniform;
    }
    if ctx.without_replacement {
        // The SELECT collision loops re-search one CTPS k times; alias
        // and rejection would rebuild their acceptance state per pick.
        return SelectMethod::Its;
    }
    if ctx.static_bias {
        if ctx.cache_available && ctx.degree >= ALIAS_MIN_DEGREE {
            return SelectMethod::CachedAlias;
        }
        return SelectMethod::Its;
    }
    // Dynamic bias: rejection only with a sound upper bound, enough
    // candidates to amortize, healthy live acceptance, and (when the
    // lane is already materialized) tolerable skew.
    if ctx.bound_available
        && ctx.degree >= REJECTION_MIN_DEGREE
        && ctx.rejection_allowed
        && ctx.skew.is_none_or(|s| s <= MAX_EXPECTED_TRIALS)
    {
        return SelectMethod::Rejection;
    }
    SelectMethod::Its
}

/// Per-worker live feedback for the rejection sampler: when measured
/// acceptance collapses (heavy skew the a-priori bound can't see), stop
/// choosing rejection for a cooldown window, then re-probe.
#[derive(Debug, Clone, Copy, Default)]
pub struct RejectionFeedback {
    trials: u64,
    expansions: u64,
    cooldown: u32,
}

/// Throws observed before the acceptance rate is judged.
const FEEDBACK_WINDOW_TRIALS: u64 = 512;
/// Expansions to route to ITS after a collapse before re-probing.
const FEEDBACK_COOLDOWN: u32 = 1024;

impl RejectionFeedback {
    /// Fresh feedback (rejection allowed).
    pub fn new() -> RejectionFeedback {
        RejectionFeedback::default()
    }

    /// Whether the chooser may pick rejection right now. Counts down the
    /// cooldown while disabled so the sampler re-probes periodically.
    pub fn allow(&mut self) -> bool {
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return false;
        }
        true
    }

    /// Records one rejection-served expansion that took `trials` throws
    /// (exhausted expansions count the full cap). Once a window's mean
    /// trials/expansion exceeds [`MAX_EXPECTED_TRIALS`], trips the
    /// cooldown.
    pub fn record(&mut self, trials: u64) {
        self.trials += trials;
        self.expansions += 1;
        if self.trials >= FEEDBACK_WINDOW_TRIALS {
            if self.trials as f64 > MAX_EXPECTED_TRIALS * self.expansions as f64 {
                self.cooldown = FEEDBACK_COOLDOWN;
            }
            self.trials = 0;
            self.expansions = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> MethodContext {
        MethodContext {
            uniform: false,
            static_bias: false,
            without_replacement: false,
            degree: 16,
            cache_available: false,
            bound_available: false,
            rejection_allowed: true,
            skew: None,
        }
    }

    #[test]
    fn uniform_always_closed_form() {
        let c = MethodContext { uniform: true, ..ctx() };
        assert_eq!(choose_method(&c), SelectMethod::ClosedFormUniform);
        let c = MethodContext { uniform: true, without_replacement: true, ..ctx() };
        assert_eq!(choose_method(&c), SelectMethod::ClosedFormUniform);
    }

    #[test]
    fn without_replacement_stays_its() {
        let c = MethodContext {
            without_replacement: true,
            static_bias: true,
            cache_available: true,
            ..ctx()
        };
        assert_eq!(choose_method(&c), SelectMethod::Its);
    }

    #[test]
    fn static_bias_uses_cached_alias_only_with_a_cache() {
        let c = MethodContext { static_bias: true, cache_available: true, ..ctx() };
        assert_eq!(choose_method(&c), SelectMethod::CachedAlias);
        let c = MethodContext { static_bias: true, ..ctx() };
        assert_eq!(choose_method(&c), SelectMethod::Its);
        let c = MethodContext { static_bias: true, cache_available: true, degree: 1, ..ctx() };
        assert_eq!(choose_method(&c), SelectMethod::Its);
    }

    #[test]
    fn dynamic_bias_needs_bound_degree_and_health() {
        let c = MethodContext { bound_available: true, ..ctx() };
        assert_eq!(choose_method(&c), SelectMethod::Rejection);
        assert_eq!(
            choose_method(&MethodContext { bound_available: false, ..c }),
            SelectMethod::Its
        );
        assert_eq!(choose_method(&MethodContext { degree: 2, ..c }), SelectMethod::Its);
        assert_eq!(
            choose_method(&MethodContext { rejection_allowed: false, ..c }),
            SelectMethod::Its
        );
        assert_eq!(choose_method(&MethodContext { skew: Some(100.0), ..c }), SelectMethod::Its);
        assert_eq!(choose_method(&MethodContext { skew: Some(2.0), ..c }), SelectMethod::Rejection);
    }

    #[test]
    fn feedback_trips_on_collapsed_acceptance_and_reprobes() {
        let mut f = RejectionFeedback::new();
        assert!(f.allow());
        // A healthy window: 512 throws over 512 expansions.
        for _ in 0..512 {
            f.record(1);
        }
        assert!(f.allow());
        // A collapsed window: every expansion exhausts a 32-throw cap.
        for _ in 0..16 {
            f.record(32);
        }
        assert!(!f.allow(), "collapsed acceptance must trip the cooldown");
        // The cooldown expires after FEEDBACK_COOLDOWN denials.
        let mut denials = 1;
        while !f.allow() {
            denials += 1;
            assert!(denials <= 1025, "cooldown never expired");
        }
        assert!(f.allow());
    }
}
