//! Sampling output: per-instance sampled edges plus the counted work and
//! simulated timing the benchmarks consume.

use csaw_gpu::config::DeviceConfig;
use csaw_gpu::cost;
use csaw_gpu::stats::SimStats;
use csaw_graph::VertexId;

/// Result of running a sampler over a batch of instances.
#[derive(Debug, Clone)]
pub struct SampleOutput {
    /// Sampled edges per instance: each instance yields one sampled
    /// subgraph (or walk path), in sampling order.
    pub instances: Vec<Vec<(VertexId, VertexId)>>,
    /// Merged work counters.
    pub stats: SimStats,
    /// Per-instance work counters, in instance order; `stats` is their
    /// field-wise sum. The serving layer slices these back to
    /// per-request accounting ([`SampleOutput::slice`]). Runtimes that
    /// cannot attribute work per instance (the OOM scheduler interleaves
    /// streams) leave entries with only `sampled_edges` filled.
    pub instance_stats: Vec<SimStats>,
    /// Per-instance warp cycle counts (imbalance analysis).
    pub warp_cycles: Vec<u64>,
    /// Host wall-clock seconds spent simulating (reported alongside
    /// modeled time; not used for paper figures).
    pub wall_seconds: f64,
}

impl SampleOutput {
    /// An output with no instances (the identity of [`SampleOutput::extend`]).
    pub fn empty() -> SampleOutput {
        SampleOutput {
            instances: Vec::new(),
            stats: SimStats::new(),
            instance_stats: Vec::new(),
            warp_cycles: Vec::new(),
            wall_seconds: 0.0,
        }
    }

    /// Assembles an output from per-instance pieces, summing `stats`
    /// from `instance_stats` and deriving `warp_cycles` — the shape
    /// every executor that regroups instances (multi-GPU, the serving
    /// layer) produces.
    pub fn from_instances(
        instances: Vec<Vec<(VertexId, VertexId)>>,
        instance_stats: Vec<SimStats>,
        wall_seconds: f64,
    ) -> SampleOutput {
        assert_eq!(instances.len(), instance_stats.len(), "one counter set per instance");
        let stats: SimStats = instance_stats.iter().copied().sum();
        let warp_cycles = instance_stats.iter().map(|s| s.warp_cycles).collect();
        SampleOutput { instances, stats, instance_stats, warp_cycles, wall_seconds }
    }

    /// Clones out the contiguous instance range `range` as a standalone
    /// output: its `stats` are the sum of the sliced per-instance
    /// counters. This is how a micro-batching service turns one
    /// coalesced launch back into per-request responses.
    pub fn slice(&self, range: std::ops::Range<usize>) -> SampleOutput {
        let instance_stats: Vec<SimStats> = self.instance_stats[range.clone()].to_vec();
        let stats: SimStats = instance_stats.iter().copied().sum();
        SampleOutput {
            instances: self.instances[range.clone()].to_vec(),
            stats,
            instance_stats,
            warp_cycles: self.warp_cycles[range].to_vec(),
            wall_seconds: self.wall_seconds,
        }
    }

    /// Splits the output into consecutive chunks of `counts` instances
    /// (must cover every instance exactly once), consuming `self`.
    pub fn split_by_counts(self, counts: &[usize]) -> Vec<SampleOutput> {
        assert_eq!(
            counts.iter().sum::<usize>(),
            self.instances.len(),
            "counts must partition the instances"
        );
        let mut parts = Vec::with_capacity(counts.len());
        let mut offset = 0;
        for &n in counts {
            parts.push(self.slice(offset..offset + n));
            offset += n;
        }
        parts
    }

    /// Appends another output's instances (stats merge, wall clocks add).
    pub fn extend(&mut self, other: SampleOutput) {
        self.stats.merge(&other.stats);
        self.instances.extend(other.instances);
        self.instance_stats.extend(other.instance_stats);
        self.warp_cycles.extend(other.warp_cycles);
        self.wall_seconds += other.wall_seconds;
    }

    /// Total sampled edges across instances.
    pub fn sampled_edges(&self) -> u64 {
        self.instances.iter().map(|i| i.len() as u64).sum()
    }

    /// Mean sampled edges per instance (the paper reports "each instance
    /// of sampled graphs has 1,703 edges on average" for its setup).
    pub fn edges_per_instance(&self) -> f64 {
        if self.instances.is_empty() {
            0.0
        } else {
            self.sampled_edges() as f64 / self.instances.len() as f64
        }
    }

    /// Simulated kernel time on `cfg`.
    pub fn kernel_seconds(&self, cfg: &DeviceConfig) -> f64 {
        cost::gpu_kernel_seconds(&self.stats, cfg)
    }

    /// Sampled edges per second under the simulated kernel time — the
    /// paper's SEPS metric.
    pub fn seps(&self, cfg: &DeviceConfig) -> f64 {
        cost::seps(self.sampled_edges(), self.kernel_seconds(cfg))
    }

    /// Distinct vertices touched by the sample (subgraph extraction).
    pub fn unique_vertices(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        for inst in &self.instances {
            for &(v, u) in inst {
                seen.insert(v);
                seen.insert(u);
            }
        }
        seen.len()
    }

    /// Induces the sampled subgraph: the union of all instances' sampled
    /// edges over the touched vertices, relabeled densely. Returns the
    /// subgraph plus the mapping `new id -> original id`. This is the
    /// artifact downstream consumers (GNN trainers, estimators,
    /// visualizers) actually take from a sampler.
    pub fn induce_subgraph(&self) -> (csaw_graph::Csr, Vec<VertexId>) {
        use std::collections::HashMap;
        let mut fwd: HashMap<VertexId, VertexId> = HashMap::new();
        let mut back: Vec<VertexId> = Vec::new();
        let map = |v: VertexId, fwd: &mut HashMap<VertexId, VertexId>, back: &mut Vec<VertexId>| {
            *fwd.entry(v).or_insert_with(|| {
                back.push(v);
                (back.len() - 1) as VertexId
            })
        };
        let mut builder = csaw_graph::CsrBuilder::new();
        for inst in &self.instances {
            for &(v, u) in inst {
                let a = map(v, &mut fwd, &mut back);
                let b = map(u, &mut fwd, &mut back);
                builder = builder.add_edge(a, b);
            }
        }
        let g = builder.with_num_vertices(back.len()).build();
        (g, back)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SampleOutput {
        SampleOutput {
            instances: vec![vec![(0, 1), (1, 2)], vec![(3, 4)], vec![]],
            stats: SimStats { sampled_edges: 3, warp_cycles: 100, ..Default::default() },
            instance_stats: vec![
                SimStats { sampled_edges: 2, warp_cycles: 60, ..Default::default() },
                SimStats { sampled_edges: 1, warp_cycles: 40, ..Default::default() },
                SimStats::new(),
            ],
            warp_cycles: vec![60, 40, 0],
            wall_seconds: 0.001,
        }
    }

    #[test]
    fn edge_counts() {
        let s = sample();
        assert_eq!(s.sampled_edges(), 3);
        assert!((s.edges_per_instance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unique_vertices_dedup_across_instances() {
        let s = sample();
        assert_eq!(s.unique_vertices(), 5);
    }

    #[test]
    fn seps_is_positive_for_work() {
        let s = sample();
        let cfg = DeviceConfig::v100();
        assert!(s.kernel_seconds(&cfg) > 0.0);
        assert!(s.seps(&cfg) > 0.0);
    }

    #[test]
    fn induce_subgraph_relabels_densely() {
        let s = sample();
        let (g, back) = s.induce_subgraph();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(back.len(), 5);
        // Every sampled edge exists in the subgraph under the mapping.
        let fwd: std::collections::HashMap<u32, u32> =
            back.iter().enumerate().map(|(i, &v)| (v, i as u32)).collect();
        for inst in &s.instances {
            for &(v, u) in inst {
                assert!(g.has_edge(fwd[&v], fwd[&u]));
            }
        }
        // Original ids recoverable.
        assert!(back.contains(&0) && back.contains(&4));
    }

    #[test]
    fn induce_subgraph_dedups_repeated_edges() {
        let s = SampleOutput {
            instances: vec![vec![(3, 9), (3, 9), (9, 3)]],
            stats: SimStats::new(),
            instance_stats: vec![SimStats::new()],
            warp_cycles: vec![0],
            wall_seconds: 0.0,
        };
        let (g, back) = s.induce_subgraph();
        assert_eq!(back.len(), 2);
        assert_eq!(g.num_edges(), 2, "one each direction after dedup");
    }

    #[test]
    fn empty_output() {
        let s = SampleOutput::empty();
        assert_eq!(s.edges_per_instance(), 0.0);
        assert_eq!(s.unique_vertices(), 0);
    }

    #[test]
    fn slice_carries_exact_per_instance_accounting() {
        let s = sample();
        let head = s.slice(0..1);
        assert_eq!(head.instances, vec![vec![(0, 1), (1, 2)]]);
        assert_eq!(head.stats.sampled_edges, 2);
        assert_eq!(head.stats.warp_cycles, 60);
        assert_eq!(head.warp_cycles, vec![60]);
        let tail = s.slice(1..3);
        assert_eq!(tail.stats.sampled_edges, 1);
        assert_eq!(tail.stats.warp_cycles, 40);
        // The slices partition the whole: counters add back up.
        assert_eq!(head.stats.merged(tail.stats).sampled_edges, s.stats.sampled_edges);
    }

    #[test]
    fn split_by_counts_partitions_everything() {
        let parts = sample().split_by_counts(&[2, 1]);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].instances.len(), 2);
        assert_eq!(parts[1].instances.len(), 1);
        assert_eq!(parts[0].stats.sampled_edges, 3);
        assert_eq!(parts[1].stats.sampled_edges, 0);
    }

    #[test]
    #[should_panic(expected = "partition")]
    fn split_by_counts_rejects_partial_cover() {
        sample().split_by_counts(&[2]);
    }

    #[test]
    fn from_instances_and_extend_round_trip() {
        let s = sample();
        let mut rebuilt = SampleOutput::empty();
        for part in s.slice(0..3).split_by_counts(&[1, 1, 1]) {
            rebuilt.extend(part);
        }
        assert_eq!(rebuilt.instances, s.instances);
        assert_eq!(rebuilt.instance_stats, s.instance_stats);
        assert_eq!(rebuilt.stats.sampled_edges, 3);
        let direct =
            SampleOutput::from_instances(s.instances.clone(), s.instance_stats.clone(), 0.0);
        assert_eq!(direct.warp_cycles, s.warp_cycles);
        assert_eq!(direct.stats.warp_cycles, 100);
    }
}
