//! Walk-trajectory analysis: cover time and return statistics — the
//! classical quantities that validate a random-walk implementation
//! against theory (a walk with the right transition law has the right
//! cover time; a subtly biased one does not).

use crate::algorithms::SimpleRandomWalk;
use crate::engine::{RunOptions, Sampler};
use csaw_graph::{Csr, VertexId};

/// Measures the cover time of a simple random walk from `source`: steps
/// until every vertex reachable from `source` has been visited, averaged
/// over `trials` independent walks. Returns `None` if any trial fails to
/// cover within `max_steps` (walk too short for this graph).
pub fn mean_cover_time(
    g: &Csr,
    source: VertexId,
    trials: usize,
    max_steps: usize,
    seed: u64,
) -> Option<f64> {
    let reachable = csaw_graph::traversal::reachable_count(g, source);
    let algo = SimpleRandomWalk { length: max_steps };
    let out = Sampler::new(g, &algo)
        .with_options(RunOptions { seed, ..Default::default() })
        .run_single_seeds(&vec![source; trials]);
    let mut total = 0usize;
    for inst in &out.instances {
        let mut seen = vec![false; g.num_vertices()];
        seen[source as usize] = true;
        let mut count = 1usize;
        let mut covered_at = None;
        for (step, &(_, u)) in inst.iter().enumerate() {
            if !std::mem::replace(&mut seen[u as usize], true) {
                count += 1;
                if count == reachable {
                    covered_at = Some(step + 1);
                    break;
                }
            }
        }
        total += covered_at?;
    }
    Some(total as f64 / trials as f64)
}

/// Mean return time to `vertex` over a long walk: steps between
/// consecutive visits. For a connected undirected graph theory gives
/// `2|E| / deg(v)` — a sharp test of the transition law.
pub fn mean_return_time(g: &Csr, vertex: VertexId, walk_length: usize, seed: u64) -> Option<f64> {
    let algo = SimpleRandomWalk { length: walk_length };
    let out = Sampler::new(g, &algo)
        .with_options(RunOptions { seed, ..Default::default() })
        .run_single_seeds(&[vertex]);
    let inst = &out.instances[0];
    let mut last: Option<usize> = Some(0);
    let mut gaps = Vec::new();
    for (step, &(_, u)) in inst.iter().enumerate() {
        if u == vertex {
            if let Some(l) = last {
                gaps.push(step + 1 - l);
            }
            last = Some(step + 1);
        }
    }
    if gaps.len() < 8 {
        return None; // not enough returns to average
    }
    Some(gaps.iter().sum::<usize>() as f64 / gaps.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csaw_graph::generators::{ring_lattice, toy_graph};
    use csaw_graph::CsrBuilder;

    #[test]
    fn return_time_matches_2m_over_degree() {
        // Theory: E[return to v] = 2|E_undirected| / deg(v) = m_csr / deg(v).
        let g = toy_graph();
        for v in [7u32, 8, 1] {
            let expect = g.num_edges() as f64 / g.degree(v) as f64;
            let measured = mean_return_time(&g, v, 400_000, 3).unwrap();
            assert!(
                (measured - expect).abs() / expect < 0.05,
                "v{v}: measured {measured} vs theory {expect}"
            );
        }
    }

    #[test]
    fn cover_time_scales_superlinearly_on_rings() {
        // Ring cover time is Θ(n²); doubling n should far more than
        // double it.
        let small = mean_cover_time(&ring_lattice(16, 1), 0, 24, 40_000, 5).unwrap();
        let large = mean_cover_time(&ring_lattice(32, 1), 0, 24, 40_000, 5).unwrap();
        assert!(
            large > 2.8 * small,
            "ring cover time must scale ~quadratically: {small} -> {large}"
        );
    }

    #[test]
    fn clique_covers_fast() {
        // Complete graph cover time ~ n ln n — tiny.
        let mut b = CsrBuilder::new().symmetrize(true);
        for i in 0..8u32 {
            for j in (i + 1)..8 {
                b = b.add_edge(i, j);
            }
        }
        let g = b.build();
        let t = mean_cover_time(&g, 0, 32, 2_000, 7).unwrap();
        assert!(t < 40.0, "K8 cover time {t}");
    }

    #[test]
    fn uncoverable_returns_none() {
        // Max steps too small to cover.
        let g = ring_lattice(64, 1);
        assert!(mean_cover_time(&g, 0, 4, 80, 1).is_none());
        // Too few returns for the average.
        assert!(mean_return_time(&g, 0, 16, 1).is_none());
    }
}
