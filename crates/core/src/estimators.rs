//! Estimators built on sampled data — the downstream consumers the paper's
//! introduction motivates (PageRank estimation, property estimation on
//! graphs too large to scan).
//!
//! Each estimator pairs a sampling algorithm with the reweighting that
//! makes it unbiased:
//!
//! - [`avg_degree_from_walk`]: a stationary simple random walk visits
//!   `v ∝ deg(v)`; the harmonic mean of visited degrees is the classic
//!   unbiased average-degree estimator (Ribeiro & Towsley).
//! - [`degree_histogram_from_mh`]: a Metropolis-Hastings walk visits
//!   uniformly, so plain visit counts estimate the degree distribution.
//! - [`ppr_from_restart_walks`]: restart-walk location frequencies
//!   estimate the personalized PageRank vector.

use crate::algorithms::{MetropolisHastingsWalk, RandomWalkWithRestart, SimpleRandomWalk};
use crate::engine::{RunOptions, Sampler};
use csaw_graph::{Csr, VertexId};

/// Estimates the average degree from `walks` stationary random walks of
/// `length` steps (with `burn_in` discarded): harmonic-mean estimator
/// `n_obs / Σ 1/deg(v_t)`.
pub fn avg_degree_from_walk(
    g: &Csr,
    walks: usize,
    length: usize,
    burn_in: usize,
    seed: u64,
) -> f64 {
    let algo = SimpleRandomWalk { length };
    let seeds = spread_seeds(g, walks, seed);
    let out = Sampler::new(g, &algo)
        .with_options(RunOptions { seed, ..Default::default() })
        .run_single_seeds(&seeds);
    let mut inv_sum = 0.0f64;
    let mut n = 0usize;
    for inst in &out.instances {
        for &(v, _) in inst.iter().skip(burn_in) {
            inv_sum += 1.0 / g.degree(v) as f64;
            n += 1;
        }
    }
    if inv_sum == 0.0 {
        0.0
    } else {
        n as f64 / inv_sum
    }
}

/// Estimates the degree distribution (fraction of vertices with each
/// degree) from Metropolis-Hastings walks, whose stationary distribution
/// is uniform over vertices. Returns `(degree, estimated fraction)`
/// pairs sorted by degree.
///
/// Because the engine records moves only, visits are reweighted by each
/// vertex's move probability (see `tests/distribution_validation.rs` for
/// the derivation).
pub fn degree_histogram_from_mh(
    g: &Csr,
    walks: usize,
    length: usize,
    burn_in: usize,
    seed: u64,
) -> Vec<(usize, f64)> {
    let algo = MetropolisHastingsWalk { length };
    let seeds = spread_seeds(g, walks, seed);
    let out = Sampler::new(g, &algo)
        .with_options(RunOptions { seed, ..Default::default() })
        .run_single_seeds(&seeds);
    let p_move = |v: VertexId| -> f64 {
        let dv = g.degree(v) as f64;
        if dv == 0.0 {
            return 1.0;
        }
        g.neighbors(v).iter().map(|&u| (dv / g.degree(u) as f64).min(1.0)).sum::<f64>() / dv
    };
    let mut weight_by_degree: std::collections::BTreeMap<usize, f64> =
        std::collections::BTreeMap::new();
    let mut total = 0.0f64;
    for inst in &out.instances {
        for &(v, _) in inst.iter().skip(burn_in) {
            // Observed frequency ∝ π(v)·P(move|v); divide the move factor
            // back out to recover uniform π.
            let w = 1.0 / p_move(v);
            *weight_by_degree.entry(g.degree(v)).or_default() += w;
            total += w;
        }
    }
    weight_by_degree.into_iter().map(|(d, w)| (d, w / total)).collect()
}

/// Estimates the personalized PageRank vector of `source` from `walks`
/// restart walks (restart probability `alpha`), counting walker locations
/// after `burn_in` steps.
pub fn ppr_from_restart_walks(
    g: &Csr,
    source: VertexId,
    alpha: f64,
    walks: usize,
    length: usize,
    burn_in: usize,
    seed: u64,
) -> Vec<f64> {
    let algo = RandomWalkWithRestart { length, p_restart: alpha };
    let out = Sampler::new(g, &algo)
        .with_options(RunOptions { seed, ..Default::default() })
        .run_single_seeds(&vec![source; walks]);
    let mut visits = vec![0u64; g.num_vertices()];
    for inst in &out.instances {
        for &(v, _) in inst.iter().skip(burn_in) {
            visits[v as usize] += 1;
        }
    }
    let total: u64 = visits.iter().sum::<u64>().max(1);
    visits.into_iter().map(|c| c as f64 / total as f64).collect()
}

/// Estimates the global clustering coefficient (transitivity) from
/// stationary random walks — the Hardiman–Katzir style estimator the
/// paper's related work (its ref. 75, graphlet estimation via random walk)
/// builds on. For each interior walk position `t` with
/// `x_{t-1} != x_{t+1}`, the wedge `(x_{t-1}, x_t, x_{t+1})` is observed;
/// weighting by `deg(x_t)` makes the closure rate converge to
/// `3·triangles / wedges`.
pub fn clustering_from_walk(
    g: &Csr,
    walks: usize,
    length: usize,
    burn_in: usize,
    seed: u64,
) -> f64 {
    let algo = SimpleRandomWalk { length };
    let seeds = spread_seeds(g, walks, seed);
    let out = Sampler::new(g, &algo)
        .with_options(RunOptions { seed, ..Default::default() })
        .run_single_seeds(&seeds);
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for inst in &out.instances {
        for w in inst.windows(2).skip(burn_in) {
            let (a, v) = w[0];
            let b = w[1].1;
            if a == b {
                continue; // backtrack: not a wedge
            }
            let d = g.degree(v) as f64;
            den += d;
            if g.has_edge(a, b) {
                num += d;
            }
        }
    }
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

fn spread_seeds(g: &Csr, n: usize, seed: u64) -> Vec<VertexId> {
    // Deterministic spread over non-isolated vertices.
    let nv = g.num_vertices().max(1) as u64;
    (0..n as u64)
        .map(|i| {
            let mut v = ((i.wrapping_mul(2_654_435_761).wrapping_add(seed)) % nv) as VertexId;
            // Nudge off isolated vertices (walks there are empty anyway).
            for _ in 0..8 {
                if g.degree(v) > 0 {
                    break;
                }
                v = (v + 1) % nv as VertexId;
            }
            v
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use csaw_graph::generators::{barabasi_albert, ring_lattice, toy_graph};

    #[test]
    fn avg_degree_estimator_on_regular_graph_is_exact_in_expectation() {
        let g = ring_lattice(200, 3); // degree 6 everywhere
        let est = avg_degree_from_walk(&g, 16, 200, 20, 1);
        assert!((est - 6.0).abs() < 0.01, "est {est}");
    }

    #[test]
    fn avg_degree_estimator_on_skewed_graph() {
        let g = barabasi_albert(2000, 3, 7);
        let truth = g.avg_degree();
        let est = avg_degree_from_walk(&g, 64, 400, 50, 2);
        assert!(
            (est - truth).abs() / truth < 0.1,
            "est {est} vs truth {truth} — harmonic reweighting failed"
        );
    }

    #[test]
    fn naive_walk_average_is_biased_but_harmonic_is_not() {
        // Sanity of the statistics: the *plain* mean of visited degrees
        // overestimates (size bias), the harmonic estimator doesn't.
        let g = barabasi_albert(1500, 2, 3);
        let algo = SimpleRandomWalk { length: 300 };
        let out = Sampler::new(&g, &algo).run_single_seeds(&spread_seeds(&g, 32, 5));
        let mut sum = 0.0;
        let mut n = 0usize;
        for inst in &out.instances {
            for &(v, _) in inst.iter().skip(50) {
                sum += g.degree(v) as f64;
                n += 1;
            }
        }
        let naive = sum / n as f64;
        let harmonic = avg_degree_from_walk(&g, 32, 300, 50, 5);
        let truth = g.avg_degree();
        assert!(naive > 1.3 * truth, "size bias should inflate: {naive} vs {truth}");
        assert!((harmonic - truth).abs() / truth < 0.12, "{harmonic} vs {truth}");
    }

    #[test]
    fn mh_degree_histogram_tracks_truth() {
        let g = toy_graph();
        let est = degree_histogram_from_mh(&g, 24, 3000, 100, 4);
        // Ground truth histogram.
        let mut truth: std::collections::BTreeMap<usize, f64> = Default::default();
        for v in 0..13u32 {
            *truth.entry(g.degree(v)).or_default() += 1.0 / 13.0;
        }
        for (d, f) in est {
            let t = truth.get(&d).copied().unwrap_or(0.0);
            assert!((f - t).abs() < 0.05, "degree {d}: est {f} vs truth {t}");
        }
    }

    #[test]
    fn ppr_estimator_sums_to_one_and_peaks_at_source() {
        let g = toy_graph();
        let p = ppr_from_restart_walks(&g, 8, 0.25, 4000, 60, 10, 6);
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        let max_idx = p.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(max_idx, 8, "PPR mass concentrates at the source");
    }

    #[test]
    fn walk_clustering_estimator_matches_exact() {
        let g = barabasi_albert(1200, 4, 11);
        let exact = csaw_graph::quality::clustering_coefficient(&g);
        let est = clustering_from_walk(&g, 48, 600, 20, 12);
        assert!(
            (est - exact).abs() < 0.25 * exact.max(0.02),
            "walk estimate {est} vs exact {exact}"
        );
    }

    #[test]
    fn walk_clustering_zero_on_triangle_free_graph() {
        let g = ring_lattice(100, 1);
        assert_eq!(clustering_from_walk(&g, 8, 200, 10, 1), 0.0);
    }

    #[test]
    fn spread_seeds_avoids_isolated_vertices() {
        let g = csaw_graph::Csr::from_parts(vec![0, 0, 2, 3, 3], vec![2, 3, 1], None);
        let seeds = spread_seeds(&g, 16, 0);
        assert!(seeds.iter().all(|&v| g.degree(v) > 0));
    }
}
