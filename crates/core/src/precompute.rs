//! Static-bias probability pre-computation (ablation A7).
//!
//! §VII: "KnightKing pre-computes the alias table for static transition
//! probability... However, not all sampling and random walk algorithms
//! could have deterministic probabilities that support pre-computation",
//! and "large graphs cannot afford to index the probabilities of all
//! vertices". This module makes that trade-off measurable inside C-SAW:
//! a per-vertex CTPS cache for *static* edge biases, with its build cost
//! and memory footprint accounted, so the harness can show when caching
//! beats recomputing the CTPS every step (long walks, static bias) and
//! what it costs (one f64 per edge of device memory).
//!
//! The eager all-vertices build here and the lazy budgeted
//! [`crate::ctps_cache::CtpsCache`] share the same per-vertex builder
//! ([`crate::ctps_cache::build_vertex_ctps`]), so the two strategies are
//! the endpoints of one budget axis: this cache is the 100%-budget,
//! paid-up-front point of the lazy cache's sweep.

use crate::api::Algorithm;
use crate::ctps::Ctps;
use crate::ctps_cache::build_vertex_ctps;
use csaw_gpu::stats::SimStats;
use csaw_gpu::Philox;
use csaw_graph::{Csr, VertexId};

/// Eagerly-built per-vertex CTPS tables for a static edge bias.
pub struct EagerCtpsCache {
    tables: Vec<Option<Ctps>>,
    /// Work spent building the tables (priced separately, like
    /// KnightKing's alias preprocessing).
    pub build_stats: SimStats,
}

impl EagerCtpsCache {
    /// Builds one CTPS per vertex using `algo`'s `EDGEBIAS` with no walk
    /// context (`prev = None`) — only valid for static biases, which by
    /// definition ignore runtime state.
    pub fn build<A: Algorithm>(g: &Csr, algo: &A) -> Self {
        let mut build_stats = SimStats::new();
        let mut biases: Vec<f64> = Vec::new();
        let mut scratch = Ctps::empty();
        let tables: Vec<Option<Ctps>> = (0..g.num_vertices() as VertexId)
            .map(|v| {
                build_vertex_ctps(g.view(), algo, v, &mut biases, &mut scratch, &mut build_stats)
                    .then(|| scratch.clone())
            })
            .collect();
        EagerCtpsCache { tables, build_stats }
    }

    /// Device bytes the cache occupies: one f64 bound per edge.
    pub fn size_bytes(&self) -> usize {
        self.tables.iter().flatten().map(|t| t.len() * 8).sum()
    }

    /// Samples one neighbor *index* of `v` from the cached CTPS; `None`
    /// for zero-degree / zero-bias vertices. Costs one cached-table read
    /// (the gather the cache trades for the per-step scan).
    pub fn sample_neighbor(
        &self,
        v: VertexId,
        rng: &mut Philox,
        stats: &mut SimStats,
    ) -> Option<usize> {
        let t = self.tables[v as usize].as_ref()?;
        stats.read_gmem(8 * t.len().min(8)); // binary search touches few bounds
        Some(t.sample_one(rng, stats))
    }

    /// Runs `length`-step walks under the cached tables, the fast path
    /// for static-bias random walks. Returns (per-instance paths, stats).
    pub fn run_walks(
        &self,
        g: &Csr,
        seeds: &[VertexId],
        length: usize,
        seed: u64,
    ) -> (Vec<Vec<(VertexId, VertexId)>>, SimStats) {
        let mut stats = SimStats::new();
        let mut out = Vec::with_capacity(seeds.len());
        for (i, &s) in seeds.iter().enumerate() {
            let mut rng = Philox::for_task(seed, i as u64);
            let mut path = Vec::with_capacity(length);
            let mut v = s;
            for _ in 0..length {
                let Some(idx) = self.sample_neighbor(v, &mut rng, &mut stats) else {
                    break;
                };
                let u = g.neighbors(v)[idx];
                path.push((v, u));
                v = u;
            }
            stats.sampled_edges += path.len() as u64;
            out.push(path);
        }
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::BiasedRandomWalk;
    use crate::engine::Sampler;
    use csaw_graph::generators::{rmat, toy_graph, RmatParams};
    use std::collections::HashMap;

    #[test]
    fn cached_tables_match_direct_ctps() {
        let g = toy_graph();
        let algo = BiasedRandomWalk { length: 1 };
        let cache = EagerCtpsCache::build(&g, &algo);
        // v8's cached CTPS must equal the Fig. 1b values.
        let t = cache.tables[8].as_ref().unwrap();
        assert!((t.bounds()[0] - 0.2).abs() < 1e-12);
        assert!((t.bounds()[1] - 0.6).abs() < 1e-12);
        assert!(cache.tables.iter().flatten().count() == 13, "every vertex has neighbors");
    }

    #[test]
    fn cache_size_is_one_f64_per_edge() {
        let g = toy_graph();
        let cache = EagerCtpsCache::build(&g, &BiasedRandomWalk { length: 1 });
        assert_eq!(cache.size_bytes(), g.num_edges() * 8);
    }

    #[test]
    fn cached_walk_distribution_matches_engine() {
        let g = toy_graph();
        let algo = BiasedRandomWalk { length: 1 };
        let cache = EagerCtpsCache::build(&g, &algo);
        let seeds = vec![8u32; 60_000];
        let (paths, _) = cache.run_walks(&g, &seeds, 1, 3);
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for p in &paths {
            *counts.entry(p[0].1).or_default() += 1;
        }
        let f7 = counts[&7] as f64 / seeds.len() as f64;
        assert!((f7 - 0.4).abs() < 0.02, "degree bias via cache: {f7}");

        // Engine path agrees.
        let out = Sampler::new(&g, &algo).run_single_seeds(&seeds);
        let mut counts2: HashMap<u32, usize> = HashMap::new();
        for inst in &out.instances {
            *counts2.entry(inst[0].1).or_default() += 1;
        }
        let f7e = counts2[&7] as f64 / seeds.len() as f64;
        assert!((f7 - f7e).abs() < 0.02);
    }

    #[test]
    fn per_step_work_is_cheaper_than_recomputing() {
        let g = rmat(10, 8, RmatParams::GRAPH500, 1);
        let algo = BiasedRandomWalk { length: 64 };
        let seeds: Vec<u32> = (0..64).collect();
        let cache = EagerCtpsCache::build(&g, &algo);
        let (_, cached) = cache.run_walks(&g, &seeds, 64, 5);
        let engine = Sampler::new(&g, &algo).run_single_seeds(&seeds);
        let per = |s: &SimStats| s.warp_cycles as f64 / s.sampled_edges.max(1) as f64;
        assert!(
            per(&cached) < per(&engine.stats),
            "cached {} vs on-the-fly {} cycles/edge",
            per(&cached),
            per(&engine.stats)
        );
        // ...but the build cost is where the paper says it is: a full
        // pass over every edge.
        assert!(cache.build_stats.scan_steps > 0);
    }

    #[test]
    fn dead_ends_truncate() {
        // Directed chain 0 -> 1 -> 2: from 1 the degree bias of neighbor
        // 2 is zero (2 has no out-edges), so the cached walk stops after
        // one hop — the same place the engine's select_one would stop.
        let g = csaw_graph::CsrBuilder::new().add_edge(0, 1).add_edge(1, 2).build();
        let cache = EagerCtpsCache::build(&g, &BiasedRandomWalk { length: 10 });
        let (paths, _) = cache.run_walks(&g, &[0], 10, 1);
        assert_eq!(paths[0], vec![(0, 1)]);
    }
}
