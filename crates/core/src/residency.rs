//! The residency hierarchy: CTPS/alias cache → decoded-RAM pool →
//! mmap/disk.
//!
//! The out-of-memory scheduler already moves partitions between two
//! levels (host CSR ↔ device memory) with workload-aware eviction; this
//! module promotes that idea into a generic third level below the host:
//! a [`ResidencyHierarchy`] holds a **byte-budgeted pool of decoded
//! partitions** over an mmap-backed [`DiskStore`], evicting with a clock
//! (second-chance) sweep — the same policy family the
//! [`crate::ctps_cache::CtpsCache`] uses for per-vertex tables one tier
//! up. From top to bottom:
//!
//! ```text
//! tier 1  CTPS / alias cache      per-vertex sampling tables (device)
//! tier 2  decoded-RAM pool        whole partitions, clock-evicted (host)
//! tier 3  mmap'd segment files    delta/varint CSR, decoded on demand
//! ```
//!
//! **Epoch composition.** Evicting a decoded partition bumps that
//! partition's residency epoch, and [`DiskAccess::entry_epoch`] tags
//! every vertex with `partition_epoch << 32` — the same composition
//! [`crate::step::DeltaPartitionAccess`] uses (`residency_epoch << 32 |
//! entry_version`), so the existing CTPS/alias invalidation machinery
//! retires tier-1 entries whose tier-2 backing was recycled, unchanged.
//! Re-decoded content is bit-identical, so epoch churn only affects the
//! cost model, never the sample.
//!
//! **Admission filter.** On a power-law graph, a vertex's visit
//! frequency and its partition's decode cost both scale with degree, so
//! unconditionally decoding the whole partition on every miss makes
//! cold vertices pay for bytes they never read (and at heavy
//! over-subscription that dominates the run). A miss on a non-resident
//! partition is therefore first served by decoding *just the touched
//! vertex's run* ([`DiskStore::decode_vertex`], O(degree)) into a small
//! scratch ring; only once [`ADMIT_TOUCHES`] misses have proven the
//! partition hot is the full decode performed and admitted to the
//! pool. Eviction re-arms the filter, which also throttles thrash when
//! the hot set exceeds the budget.
//!
//! **Soundness of the pool.** `neighbors()` is called through a shared
//! borrow (the [`GraphView`] hooks), yet a miss must decode and a full
//! pool must evict. The pool therefore lives in an `UnsafeCell` (the
//! hierarchy is deliberately `!Sync`; each worker thread owns one) and
//! follows two rules: decoded partitions and scratch runs are reached
//! only through raw pointers (`Box::into_raw`), so taking `&mut Pool`
//! never asserts unique access over their heap data; and eviction (or
//! ring displacement) during the shared phase only *moves* the raw
//! pointer into a graveyard — actual deallocation happens in
//! [`DiskAccess::gather`]'s `&mut self` prologue, when no slices can be
//! outstanding. Transient overshoot is bounded by one step's working
//! set.
//!
//! **Determinism.** The pool never changes what bytes a vertex resolves
//! to — decode is bit-exact — so sampling output is identical at every
//! budget, including the fully-resident and the thrashing extremes. The
//! tier counters (hits/misses/evictions) do depend on how instances were
//! interleaved over worker threads, exactly like the shared CTPS cache's
//! counters; the conservation identities checked by
//! [`DiskPoolSnapshot::is_conserved`] hold regardless.

use crate::step::{gather_bytes, Gathered, NeighborAccess};
use csaw_gpu::stats::SimStats;
use csaw_graph::store::{DecodedPartition, DiskStore};
use csaw_graph::{GraphView, PagedAdjacency, VertexId, Weight};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Instant;

/// Upper bounds (inclusive, microseconds) of the decode-time histogram
/// buckets; the last bucket is open-ended.
pub const DECODE_BUCKETS_US: [u64; 7] = [50, 100, 250, 500, 1000, 5000, 25000];

/// Number of decode-histogram buckets (bounds plus the open-ended one).
pub const NUM_DECODE_BUCKETS: usize = DECODE_BUCKETS_US.len() + 1;

/// Misses a non-resident partition must accumulate before its full
/// decode is admitted to the pool; colder misses are served by the
/// O(degree) single-vertex path. Higher values throttle admission (and
/// thus eviction churn) under over-subscription at the price of more
/// single-vertex decodes for warming partitions.
pub const ADMIT_TOUCHES: u8 = 8;

/// Entries in the single-vertex scratch ring (bounded RAM outside the
/// pool budget: at most this many recently decoded runs).
const SCRATCH_RING: usize = 8;

/// Shared (cross-worker) disk-tier observability: lock-free totals the
/// service publishes as gauges. Worker pools add their deltas here; the
/// deterministic per-run counters travel through [`SimStats`] instead.
#[derive(Debug, Default)]
pub struct DiskTierStats {
    /// Pool lookups across all workers.
    pub lookups: AtomicU64,
    /// Lookups served by a resident decoded partition.
    pub hits: AtomicU64,
    /// Lookups that decoded a partition.
    pub misses: AtomicU64,
    /// Partitions evicted by the clock sweep.
    pub evictions: AtomicU64,
    /// Bytes currently held by decoded partitions across all pools
    /// (gauge; includes graveyard bytes awaiting reclaim).
    pub pool_bytes: AtomicU64,
    /// Simulated 4 KiB page faults charged for streaming mapped segments.
    pub mmap_faults: AtomicU64,
    /// RAM bytes produced by decodes.
    pub decode_bytes: AtomicU64,
    /// Decode wall-time histogram: bucket `i` counts decodes that took
    /// ≤ `DECODE_BUCKETS_US[i]` µs (last bucket: longer than all).
    pub decode_hist: [AtomicU64; NUM_DECODE_BUCKETS],
    /// Sum of decode wall times, microseconds.
    pub decode_sum_us: AtomicU64,
    /// Number of decodes timed into the histogram.
    pub decode_count: AtomicU64,
}

impl DiskTierStats {
    /// Records one timed decode.
    fn record_decode(&self, micros: u64, bytes: u64, pages: u64) {
        self.misses.fetch_add(1, Relaxed);
        self.decode_bytes.fetch_add(bytes, Relaxed);
        self.mmap_faults.fetch_add(pages, Relaxed);
        let bucket =
            DECODE_BUCKETS_US.iter().position(|&b| micros <= b).unwrap_or(DECODE_BUCKETS_US.len());
        self.decode_hist[bucket].fetch_add(1, Relaxed);
        self.decode_sum_us.fetch_add(micros, Relaxed);
        self.decode_count.fetch_add(1, Relaxed);
    }

    /// Adjusts the resident-bytes gauge by a signed delta (two's
    /// complement wrap keeps concurrent adjustments sum-correct).
    fn adjust_pool_bytes(&self, delta: i64) {
        self.pool_bytes.fetch_add(delta as u64, Relaxed);
    }
}

/// Everything a runtime needs to route adjacency through the disk tier.
#[derive(Clone)]
pub struct DiskRunConfig {
    /// The opened store (read-only mappings; shared across workers).
    pub store: Arc<DiskStore>,
    /// RAM budget in bytes for each worker's decoded-partition pool.
    /// The pool always holds at least the most recently touched
    /// partition, even when it alone exceeds the budget.
    pub pool_budget: usize,
    /// Optional shared observability sink (service/serve gauges).
    pub shared: Option<Arc<DiskTierStats>>,
}

impl std::fmt::Debug for DiskRunConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskRunConfig")
            .field("store", &self.store.dir())
            .field("pool_budget", &self.pool_budget)
            .field("shared", &self.shared.is_some())
            .finish()
    }
}

/// One slot of the decoded-partition pool. `part` is null when the
/// partition is not resident; otherwise it owns (via `Box::into_raw`) a
/// heap `DecodedPartition` whose address is stable until reclaim.
struct PoolSlot {
    part: *mut DecodedPartition,
    referenced: bool,
    bytes: usize,
}

/// One vertex's decoded neighbor run, held by the scratch ring for
/// misses the admission filter keeps out of the pool.
struct VertexRun {
    neighbors: Vec<VertexId>,
    weights: Option<Vec<Weight>>,
}

/// Counters accumulated between flushes into a [`SimStats`].
#[derive(Debug, Default, Clone, Copy)]
struct PendingStats {
    lookups: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    decode_bytes: u64,
    mmap_faults: u64,
}

/// Lifetime totals of one pool, for tests and local inspection.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DiskPoolSnapshot {
    /// Pool lookups.
    pub lookups: u64,
    /// Lookups served resident.
    pub hits: u64,
    /// Lookups that decoded.
    pub misses: u64,
    /// Clock evictions.
    pub evictions: u64,
    /// Bytes currently resident (live slots, excluding graveyard).
    pub bytes: u64,
    /// Bytes awaiting reclaim in the graveyard.
    pub graveyard_bytes: u64,
    /// Configured budget.
    pub budget: u64,
}

impl DiskPoolSnapshot {
    /// The pool's conservation identities: every lookup is a hit or a
    /// miss, nothing is evicted that was never decoded, and live bytes
    /// only exceed the budget by the single-partition admission
    /// guarantee.
    pub fn is_conserved(&self) -> bool {
        self.lookups == self.hits + self.misses
            && self.evictions <= self.misses
            && (self.bytes <= self.budget || self.hits + self.misses <= self.misses.max(1))
    }
}

/// The pool behind the `UnsafeCell`: slot table, clock hand, residency
/// epochs, graveyard, counters.
struct Pool {
    budget: usize,
    bytes: usize,
    slots: Vec<PoolSlot>,
    hand: usize,
    /// Per-partition residency epoch, bumped on eviction; composed into
    /// `entry_epoch` tags.
    epochs: Vec<u64>,
    /// Monotonic count of eviction events (the access-wide epoch).
    global_epoch: u64,
    /// Misses per partition since its last admission (the admission
    /// filter's evidence of heat); reset when the full decode lands.
    touches: Vec<u8>,
    /// Admission filter bypass: true when the budget fits the *whole*
    /// decoded graph, in which case nothing can ever be evicted and
    /// making partitions prove themselves hot only defers the inevitable
    /// decode behind `ADMIT_TOUCHES` single-vertex scratch decodes each.
    /// Without this, a full-budget pool paradoxically ran *slower* than a
    /// half-budget one (`BENCH_disk.json` showed budget_frac=1.0 with
    /// 1314 mmap faults and zero evictions): every partition paid the
    /// filter tax despite eviction being impossible.
    admit_all: bool,
    /// Scratch ring of single-vertex runs (FIFO, at most
    /// `SCRATCH_RING`); displaced entries go to `run_graveyard`.
    runs: Vec<(VertexId, *mut VertexRun)>,
    graveyard: Vec<*mut DecodedPartition>,
    run_graveyard: Vec<*mut VertexRun>,
    graveyard_bytes: usize,
    pend: PendingStats,
    totals: PendingStats,
}

impl Pool {
    /// Clock (second-chance) sweep: evict unreferenced resident
    /// partitions until `need` more bytes fit, scanning at most two
    /// revolutions. Evicted pointers go to the graveyard — their heap
    /// data must outlive any slice handed out this shared phase.
    fn evict_until(&mut self, need: usize, shared: Option<&DiskTierStats>) {
        let k = self.slots.len();
        let mut scanned = 0usize;
        while self.bytes + need > self.budget && scanned < 2 * k {
            let p = self.hand;
            self.hand = (self.hand + 1) % k;
            scanned += 1;
            let slot = &mut self.slots[p];
            if slot.part.is_null() {
                continue;
            }
            if slot.referenced {
                slot.referenced = false;
                continue;
            }
            let b = slot.bytes;
            self.graveyard.push(std::mem::replace(&mut slot.part, std::ptr::null_mut()));
            self.graveyard_bytes += b;
            slot.bytes = 0;
            self.bytes -= b;
            self.epochs[p] += 1;
            self.global_epoch += 1;
            self.pend.evictions += 1;
            self.totals.evictions += 1;
            if let Some(sh) = shared {
                sh.evictions.fetch_add(1, Relaxed);
            }
        }
    }

    /// Drops every graveyard entry. Only sound when no decoded-partition
    /// (or scratch-run) borrows are outstanding — called from `&mut
    /// self` entry points.
    fn reclaim(&mut self, shared: Option<&DiskTierStats>) {
        for ptr in self.run_graveyard.drain(..) {
            // SAFETY: ptr came from Box::into_raw when the run entered
            // the ring and was removed from it on displacement; dropped
            // exactly once, no borrows survive the &mut receiver.
            drop(unsafe { Box::from_raw(ptr) });
        }
        if self.graveyard.is_empty() {
            return;
        }
        for ptr in self.graveyard.drain(..) {
            // SAFETY: ptr came from Box::into_raw in admit() and was
            // removed from its slot when moved to the graveyard; it is
            // dropped exactly once, and the &mut receiver guarantees no
            // borrows into its data survive.
            drop(unsafe { Box::from_raw(ptr) });
        }
        if let Some(sh) = shared {
            sh.adjust_pool_bytes(-(self.graveyard_bytes as i64));
        }
        self.graveyard_bytes = 0;
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        for slot in &mut self.slots {
            if !slot.part.is_null() {
                // SAFETY: slot pointers come from Box::into_raw and are
                // nulled when moved out; each is dropped exactly once.
                drop(unsafe { Box::from_raw(slot.part) });
            }
        }
        for ptr in self.graveyard.drain(..) {
            // SAFETY: as above.
            drop(unsafe { Box::from_raw(ptr) });
        }
        for (_, ptr) in self.runs.drain(..) {
            // SAFETY: as above.
            drop(unsafe { Box::from_raw(ptr) });
        }
        for ptr in self.run_graveyard.drain(..) {
            // SAFETY: as above.
            drop(unsafe { Box::from_raw(ptr) });
        }
    }
}

/// Tier 2 + 3 of the hierarchy: a byte-budgeted pool of decoded
/// partitions over an mmap-backed store. `!Sync` by construction — each
/// worker thread owns its own hierarchy over a shared `Arc<DiskStore>`,
/// mirroring per-SM working sets over shared device memory.
pub struct ResidencyHierarchy {
    store: Arc<DiskStore>,
    shared: Option<Arc<DiskTierStats>>,
    pool: UnsafeCell<Pool>,
}

impl std::fmt::Debug for ResidencyHierarchy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("ResidencyHierarchy")
            .field("store", &self.store.dir())
            .field("pool", &snap)
            .finish()
    }
}

impl ResidencyHierarchy {
    /// A hierarchy over `store` with a `pool_budget`-byte decoded pool.
    pub fn new(
        store: Arc<DiskStore>,
        pool_budget: usize,
        shared: Option<Arc<DiskTierStats>>,
    ) -> Self {
        let k = store.num_partitions();
        let pool = Pool {
            budget: pool_budget,
            bytes: 0,
            slots: (0..k)
                .map(|_| PoolSlot { part: std::ptr::null_mut(), referenced: false, bytes: 0 })
                .collect(),
            hand: 0,
            epochs: vec![0; k],
            global_epoch: 0,
            touches: vec![0; k],
            admit_all: pool_budget >= store.total_decoded_bytes(),
            runs: Vec::with_capacity(SCRATCH_RING),
            graveyard: Vec::new(),
            run_graveyard: Vec::new(),
            graveyard_bytes: 0,
            pend: PendingStats::default(),
            totals: PendingStats::default(),
        };
        ResidencyHierarchy { store, shared, pool: UnsafeCell::new(pool) }
    }

    /// The backing store.
    pub fn store(&self) -> &Arc<DiskStore> {
        &self.store
    }

    /// Lifetime totals of this pool.
    pub fn snapshot(&self) -> DiskPoolSnapshot {
        // SAFETY: read-only access through the same single-threaded
        // discipline as lookup(); no overlapping &mut exists during a
        // call on this thread.
        let pool = unsafe { &*self.pool.get() };
        DiskPoolSnapshot {
            lookups: pool.totals.lookups,
            hits: pool.totals.hits,
            misses: pool.totals.misses,
            evictions: pool.totals.evictions,
            bytes: pool.bytes as u64,
            graveyard_bytes: pool.graveyard_bytes as u64,
            budget: pool.budget as u64,
        }
    }

    /// Residency epoch of the partition owning `v` (bumped when its
    /// decoded copy is evicted).
    pub fn partition_epoch(&self, v: VertexId) -> u64 {
        let p = self.store.partition_of(v);
        // SAFETY: as in snapshot().
        unsafe { (&(*self.pool.get()).epochs)[p] }
    }

    /// Access-wide eviction count (the coarse epoch).
    pub fn global_epoch(&self) -> u64 {
        // SAFETY: as in snapshot().
        unsafe { (*self.pool.get()).global_epoch }
    }

    /// Points the hierarchy at a different observability sink, moving
    /// the resident-bytes gauge with it. The pool's contents (and the
    /// deterministic `SimStats` counters) carry over untouched — a warm
    /// thread-local pool reused under a new config keeps its decodes but
    /// reports to the config's current sink.
    pub fn rebind_shared(&mut self, shared: Option<Arc<DiskTierStats>>) {
        let same = match (&self.shared, &shared) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        };
        if same {
            return;
        }
        let pool = self.pool.get_mut();
        let resident = (pool.bytes + pool.graveyard_bytes) as i64;
        if let Some(old) = &self.shared {
            old.adjust_pool_bytes(-resident);
        }
        if let Some(new) = &shared {
            new.adjust_pool_bytes(resident);
        }
        self.shared = shared;
    }

    /// Reclaims deferred evictions. Sound because `&mut self` proves no
    /// decoded-partition borrows are outstanding.
    pub fn maintain(&mut self) {
        let shared = self.shared.clone();
        self.pool.get_mut().reclaim(shared.as_deref());
    }

    /// Drains the pending tier counters into `stats`.
    pub fn flush_stats(&mut self, stats: &mut SimStats) {
        let pool = self.pool.get_mut();
        let p = std::mem::take(&mut pool.pend);
        stats.disk_pool_lookups += p.lookups;
        stats.disk_pool_hits += p.hits;
        stats.disk_pool_misses += p.misses;
        stats.disk_pool_evictions += p.evictions;
        stats.disk_decode_bytes += p.decode_bytes;
        stats.disk_mmap_faults += p.mmap_faults;
    }

    /// Resolves `v`'s neighbor run, decoding on a miss and evicting to
    /// fit. A miss takes the cheap path first: the admission filter
    /// decodes only `v`'s run into the scratch ring until the partition
    /// has proven hot ([`ADMIT_TOUCHES`] misses), then decodes and
    /// admits the whole partition. Returns slices whose heap data stays
    /// valid for the whole `&self` phase (deferred reclaim).
    fn resolve_run(&self, v: VertexId) -> (&[VertexId], Option<&[Weight]>) {
        let p = self.store.partition_of(v);
        // SAFETY: the hierarchy is !Sync, so calls are serialized on one
        // thread; this &mut Pool window is confined to resolve_run() and
        // never overlaps another (store decodes do not reenter).
        // Returned references point into heap data reached via raw
        // pointers, never through this &mut, and are only freed in
        // maintain()/drop under &mut self.
        let pool = unsafe { &mut *self.pool.get() };
        pool.pend.lookups += 1;
        pool.totals.lookups += 1;
        if let Some(sh) = &self.shared {
            sh.lookups.fetch_add(1, Relaxed);
        }
        if !pool.slots[p].part.is_null() {
            pool.pend.hits += 1;
            pool.totals.hits += 1;
            pool.slots[p].referenced = true;
            if let Some(sh) = &self.shared {
                sh.hits.fetch_add(1, Relaxed);
            }
            // SAFETY: resident slot; heap data with a stable address,
            // freed only under &mut self.
            let part = unsafe { &*pool.slots[p].part };
            return (part.neighbors(v), part.neighbor_weights(v));
        }
        if let Some(&(_, ptr)) = pool.runs.iter().find(|(rv, _)| *rv == v) {
            pool.pend.hits += 1;
            pool.totals.hits += 1;
            if let Some(sh) = &self.shared {
                sh.hits.fetch_add(1, Relaxed);
            }
            // SAFETY: live ring entry (displacement only moves pointers
            // to the graveyard); freed only under &mut self.
            let run = unsafe { &*ptr };
            return (run.neighbors.as_slice(), run.weights.as_deref());
        }
        pool.pend.misses += 1;
        pool.totals.misses += 1;
        pool.touches[p] = pool.touches[p].saturating_add(1);
        if pool.admit_all || pool.touches[p] >= ADMIT_TOUCHES {
            // The partition proved hot (or the budget fits the whole
            // graph, making the filter pure overhead): decode it whole
            // and admit.
            pool.touches[p] = 0;
            let t0 = Instant::now();
            let dec = self.store.decode_partition(p).unwrap_or_else(|e| {
                panic!("disk store {} failed mid-run: {e}", self.store.dir().display())
            });
            let micros = t0.elapsed().as_micros() as u64;
            let bytes = dec.size_bytes();
            let pages = self.store.segment_pages(p);
            pool.pend.decode_bytes += bytes as u64;
            pool.pend.mmap_faults += pages;
            pool.totals.decode_bytes += bytes as u64;
            pool.totals.mmap_faults += pages;
            if let Some(sh) = &self.shared {
                sh.record_decode(micros, bytes as u64, pages);
                sh.adjust_pool_bytes(bytes as i64);
            }
            pool.evict_until(bytes, self.shared.as_deref());
            pool.bytes += bytes;
            pool.slots[p] =
                PoolSlot { part: Box::into_raw(Box::new(dec)), referenced: true, bytes };
            // SAFETY: the slot was just populated; as above.
            let part = unsafe { &*pool.slots[p].part };
            return (part.neighbors(v), part.neighbor_weights(v));
        }
        // Cold miss: decode just this vertex's run into the scratch ring.
        let t0 = Instant::now();
        let mut col = Vec::new();
        let mut ws = if self.store.is_weighted() { Some(Vec::new()) } else { None };
        let pages = self.store.decode_vertex(v, &mut col, ws.as_mut()).unwrap_or_else(|e| {
            panic!("disk store {} failed mid-run: {e}", self.store.dir().display())
        });
        let micros = t0.elapsed().as_micros() as u64;
        let bytes = col.len() * std::mem::size_of::<VertexId>()
            + ws.as_ref().map_or(0, |w| w.len() * std::mem::size_of::<Weight>());
        pool.pend.decode_bytes += bytes as u64;
        pool.pend.mmap_faults += pages;
        pool.totals.decode_bytes += bytes as u64;
        pool.totals.mmap_faults += pages;
        if let Some(sh) = &self.shared {
            sh.record_decode(micros, bytes as u64, pages);
        }
        if pool.runs.len() == SCRATCH_RING {
            let (_, old) = pool.runs.remove(0);
            pool.run_graveyard.push(old);
        }
        let run = Box::into_raw(Box::new(VertexRun { neighbors: col, weights: ws }));
        pool.runs.push((v, run));
        // SAFETY: just boxed; stable heap address, freed only under
        // &mut self (ring drop or graveyard reclaim).
        let run = unsafe { &*run };
        (run.neighbors.as_slice(), run.weights.as_deref())
    }
}

impl PagedAdjacency for ResidencyHierarchy {
    fn num_vertices(&self) -> usize {
        self.store.num_vertices()
    }

    fn num_edges(&self) -> usize {
        self.store.num_edges()
    }

    fn is_weighted(&self) -> bool {
        self.store.is_weighted()
    }

    fn degree(&self, v: VertexId) -> usize {
        // Served from the segment's resident fixed-width degree array —
        // hooks probe arbitrary vertices without forcing decodes.
        self.store.degree(v)
    }

    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        self.resolve_run(v).0
    }

    fn neighbor_weights(&self, v: VertexId) -> Option<&[Weight]> {
        self.resolve_run(v).1
    }
}

/// [`NeighborAccess`] over the disk tier: drop-in for [`StepKernel`]
/// (the PR-3 trait seam), serving `fetch()` through memory-mapped
/// segments with on-demand decode into the byte-budgeted pool. Charges
/// the same [`gather_bytes`] as [`crate::step::CsrAccess`], so a
/// disk-backed run counts identical simulated-GPU traffic — the disk
/// tier's own work lands in the `disk_*` counters instead.
///
/// [`StepKernel`]: crate::step::StepKernel
pub struct DiskAccess {
    hier: ResidencyHierarchy,
}

impl std::fmt::Debug for DiskAccess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("DiskAccess").field(&self.hier).finish()
    }
}

impl DiskAccess {
    /// An access over `cfg`'s store with a fresh pool.
    pub fn new(cfg: &DiskRunConfig) -> Self {
        DiskAccess {
            hier: ResidencyHierarchy::new(
                Arc::clone(&cfg.store),
                cfg.pool_budget,
                cfg.shared.clone(),
            ),
        }
    }

    /// See [`ResidencyHierarchy::rebind_shared`].
    pub fn rebind_shared(&mut self, shared: Option<Arc<DiskTierStats>>) {
        self.hier.rebind_shared(shared);
    }

    /// The underlying hierarchy.
    pub fn hierarchy(&self) -> &ResidencyHierarchy {
        &self.hier
    }

    /// Reclaims deferred evictions (safe: exclusive receiver).
    pub fn maintain(&mut self) {
        self.hier.maintain();
    }

    /// Drains pending tier counters into `stats` (the engine calls this
    /// after each instance so per-instance stats carry the disk work the
    /// instance actually caused on its worker thread).
    pub fn flush_stats(&mut self, stats: &mut SimStats) {
        self.hier.flush_stats(stats);
    }

    /// Lifetime pool totals.
    pub fn snapshot(&self) -> DiskPoolSnapshot {
        self.hier.snapshot()
    }
}

impl NeighborAccess for DiskAccess {
    fn graph(&self) -> GraphView<'_> {
        GraphView::paged(&self.hier)
    }

    fn gather(&mut self, v: VertexId, stats: &mut SimStats) -> Gathered<'_> {
        // Exclusive prologue: no slices are outstanding, so deferred
        // evictions can be freed before this step's working set forms.
        self.hier.maintain();
        stats.read_gmem(gather_bytes(self.hier.is_weighted(), self.hier.store().degree(v)));
        self.fetch(v)
    }

    fn fetch(&mut self, v: VertexId) -> Gathered<'_> {
        let hier = &self.hier;
        let (neighbors, weights) = hier.resolve_run(v);
        Gathered { graph: GraphView::paged(hier), neighbors, weights }
    }

    fn epoch(&self) -> u64 {
        self.hier.global_epoch()
    }

    fn entry_epoch(&self, v: VertexId) -> u64 {
        // Composed exactly like DeltaPartitionAccess: residency epoch in
        // the high half, per-vertex mutation version in the low half
        // (zero — the disk tier serves immutable epochs).
        self.hier.partition_epoch(v) << 32
    }
}

/// Disk access wrapped for the out-of-memory scheduler: composes the
/// stream's device-residency epoch (high half) with the disk pool's
/// per-partition epoch (low half), so a cached CTPS entry dies when
/// *either* its device partition was swapped or its host decoded copy
/// was evicted — the full three-tier invalidation chain.
pub struct TieredDiskAccess<'a> {
    /// The worker's disk access.
    pub inner: &'a mut DiskAccess,
    /// Device residency epoch of the stream this access serves.
    pub residency_epoch: u64,
}

impl NeighborAccess for TieredDiskAccess<'_> {
    fn graph(&self) -> GraphView<'_> {
        self.inner.graph()
    }

    fn gather(&mut self, v: VertexId, stats: &mut SimStats) -> Gathered<'_> {
        self.inner.gather(v, stats)
    }

    fn fetch(&mut self, v: VertexId) -> Gathered<'_> {
        self.inner.fetch(v)
    }

    fn epoch(&self) -> u64 {
        (self.residency_epoch << 32) | (self.inner.epoch() & 0xffff_ffff)
    }

    fn entry_epoch(&self, v: VertexId) -> u64 {
        (self.residency_epoch << 32) | (self.inner.hier.partition_epoch(v) & 0xffff_ffff)
    }
}

thread_local! {
    /// One warm disk pool per worker thread, keyed by (store identity,
    /// budget). Engine launches run many instances per thread; reusing
    /// the pool across them is what amortizes decodes (a per-instance
    /// pool would re-decode every partition a short walk touches).
    static THREAD_DISK: std::cell::RefCell<Option<(usize, usize, DiskAccess)>> =
        const { std::cell::RefCell::new(None) };
}

/// Runs `f` with this thread's warm [`DiskAccess`] for `cfg`, creating
/// or replacing it when the store or budget changed. The pool persists
/// across calls (and across engine launches) on the same thread.
pub fn with_thread_disk_access<R>(cfg: &DiskRunConfig, f: impl FnOnce(&mut DiskAccess) -> R) -> R {
    THREAD_DISK.with(|cell| {
        let mut slot = cell.borrow_mut();
        let key = (Arc::as_ptr(&cfg.store) as usize, cfg.pool_budget);
        let rebuild = match slot.as_ref() {
            Some((ptr, budget, _)) => (*ptr, *budget) != key,
            None => true,
        };
        if rebuild {
            *slot = Some((key.0, key.1, DiskAccess::new(cfg)));
        }
        let (_, _, access) = slot.as_mut().expect("just installed");
        // A reused pool keeps its decoded partitions but must report to
        // the *current* config's sink (a fresh service over the same
        // store would otherwise see stale-bound counters go elsewhere).
        access.rebind_shared(cfg.shared.clone());
        f(access)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use csaw_graph::generators::{rmat, toy_graph, RmatParams};
    use csaw_graph::store::write_store;
    use std::path::PathBuf;

    fn open_store(name: &str, g: &csaw_graph::Csr, k: usize) -> (Arc<DiskStore>, PathBuf) {
        let base = std::env::var_os("CSAW_DISK_TMPDIR")
            .map(PathBuf::from)
            .unwrap_or_else(std::env::temp_dir);
        let dir = base.join(format!("csaw-residency-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        write_store(&dir, g, k, 0).expect("write store");
        (Arc::new(DiskStore::open(&dir).expect("open store")), dir)
    }

    fn cfg(store: &Arc<DiskStore>, budget: usize) -> DiskRunConfig {
        DiskRunConfig { store: Arc::clone(store), pool_budget: budget, shared: None }
    }

    #[test]
    fn serves_exact_adjacency_at_tiny_budget() {
        let g = rmat(8, 6, RmatParams::GRAPH500, 21).with_unit_weights();
        let (store, dir) = open_store("exact", &g, 8);
        // Budget fits roughly one partition: constant thrash, same bytes.
        let budget = store.decoded_bytes(0).max(1);
        let mut access = DiskAccess::new(&cfg(&store, budget));
        let mut stats = SimStats::new();
        // Enough sweeps for every partition to clear the admission
        // filter — admissions then force evictions at this budget.
        for _ in 0..(2 * ADMIT_TOUCHES as usize + 2) {
            for v in (0..g.num_vertices() as VertexId).step_by(17) {
                let gat = access.gather(v, &mut stats);
                assert_eq!(gat.neighbors, g.neighbors(v), "neighbors of {v}");
                assert_eq!(gat.weights, g.neighbor_weights(v));
                assert_eq!(gat.graph.degree(v), g.degree(v));
            }
        }
        access.flush_stats(&mut stats);
        let snap = access.snapshot();
        assert!(snap.is_conserved(), "{snap:?}");
        assert!(snap.evictions > 0, "tiny budget must evict: {snap:?}");
        assert_eq!(stats.disk_pool_lookups, snap.lookups);
        assert_eq!(stats.disk_pool_hits + stats.disk_pool_misses, stats.disk_pool_lookups);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn full_budget_admits_on_first_touch() {
        // The BENCH_disk.json regression: at budget_frac=1.0 eviction is
        // impossible, so the admission filter's ADMIT_TOUCHES deferral is
        // pure overhead — 1314 faults and zero evictions made the full
        // budget *slower* than half. A full-budget pool must admit every
        // partition on its first miss.
        let g = rmat(8, 6, RmatParams::GRAPH500, 21).with_unit_weights();
        let k = 8;
        let (store, dir) = open_store("fullbudget", &g, k);
        let mut access = DiskAccess::new(&cfg(&store, store.total_decoded_bytes()));
        let mut stats = SimStats::new();
        for v in 0..g.num_vertices() as VertexId {
            let gat = access.gather(v, &mut stats);
            assert_eq!(gat.neighbors, g.neighbors(v));
        }
        access.flush_stats(&mut stats);
        let snap = access.snapshot();
        assert!(snap.is_conserved(), "{snap:?}");
        assert_eq!(snap.evictions, 0, "nothing can evict at full budget");
        assert_eq!(
            snap.misses,
            store.num_partitions() as u64,
            "exactly one miss (the admitting decode) per partition: {snap:?}"
        );
        // Second sweep over the now-fully-resident pool: pure hits.
        let before = access.snapshot().lookups;
        for v in 0..g.num_vertices() as VertexId {
            let _ = access.gather(v, &mut stats);
        }
        let snap = access.snapshot();
        assert_eq!(snap.misses, store.num_partitions() as u64);
        assert_eq!(snap.hits - (before - snap.misses), g.num_vertices() as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_pool_serves_hits_without_evictions() {
        let g = toy_graph();
        let (store, dir) = open_store("warm", &g, 3);
        let mut access = DiskAccess::new(&cfg(&store, store.total_decoded_bytes()));
        let mut stats = SimStats::new();
        // Warm-up: enough rounds for every partition to either clear the
        // admission filter or settle its vertices in the scratch ring.
        for round in 0..(2 * ADMIT_TOUCHES as usize + 2) {
            for v in 0..g.num_vertices() as VertexId {
                let gat = access.gather(v, &mut stats);
                assert_eq!(gat.neighbors, g.neighbors(v), "round {round}");
            }
        }
        let warmed = access.snapshot();
        // One more full round over the warm pool: pure hits, no decodes.
        for v in 0..g.num_vertices() as VertexId {
            let _ = access.gather(v, &mut stats);
        }
        let snap = access.snapshot();
        assert!(snap.is_conserved());
        assert_eq!(snap.misses, warmed.misses, "warm round must not decode");
        assert_eq!(snap.evictions, 0);
        assert_eq!(snap.lookups - warmed.lookups, g.num_vertices() as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_bumps_partition_epoch_tags() {
        let g = rmat(7, 6, RmatParams::MILD, 4);
        let (store, dir) = open_store("epochs", &g, 4);
        let budget = store.decoded_bytes(0).max(1); // ~one partition fits
        let mut access = DiskAccess::new(&cfg(&store, budget));
        let mut stats = SimStats::new();
        let probe: VertexId = 0;
        let before = access.entry_epoch(probe);
        let n = g.num_vertices() as VertexId;
        // Touch every partition repeatedly (enough sweeps to clear the
        // admission filter everywhere) so partition 0 gets evicted.
        for _ in 0..(2 * ADMIT_TOUCHES as usize + 2) {
            for v in (0..n).step_by(7) {
                let _ = access.gather(v, &mut stats);
            }
        }
        let _ = access.gather(n - 1, &mut stats);
        let after = access.entry_epoch(probe);
        assert!(access.snapshot().evictions > 0);
        assert!(after > before, "eviction must advance the entry tag: {before} -> {after}");
        assert_eq!(after & 0xffff_ffff, 0, "low half reserved for mutation versions");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tiered_access_composes_device_and_disk_epochs() {
        let g = toy_graph();
        let (store, dir) = open_store("tiered", &g, 2);
        let mut access = DiskAccess::new(&cfg(&store, store.total_decoded_bytes()));
        let mut stats = SimStats::new();
        let _ = access.gather(0, &mut stats);
        let disk_epoch = access.hierarchy().partition_epoch(0);
        let tiered = TieredDiskAccess { inner: &mut access, residency_epoch: 5 };
        assert_eq!(tiered.entry_epoch(0), (5u64 << 32) | (disk_epoch & 0xffff_ffff));
        assert_eq!(tiered.epoch() >> 32, 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_stats_track_pool_gauges() {
        let g = rmat(7, 4, RmatParams::MILD, 8);
        let (store, dir) = open_store("shared", &g, 4);
        let shared = Arc::new(DiskTierStats::default());
        let mut c = cfg(&store, store.decoded_bytes(0).max(1));
        c.shared = Some(Arc::clone(&shared));
        let mut access = DiskAccess::new(&c);
        let mut stats = SimStats::new();
        for v in (0..g.num_vertices() as VertexId).step_by(5) {
            let _ = access.gather(v, &mut stats);
        }
        access.maintain();
        let lookups = shared.lookups.load(Relaxed);
        let hits = shared.hits.load(Relaxed);
        let misses = shared.misses.load(Relaxed);
        assert_eq!(lookups, hits + misses);
        assert_eq!(shared.decode_count.load(Relaxed), misses);
        assert!(shared.decode_bytes.load(Relaxed) > 0);
        assert!(shared.mmap_faults.load(Relaxed) > 0);
        let resident = shared.pool_bytes.load(Relaxed);
        let snap = access.snapshot();
        assert_eq!(resident, snap.bytes + snap.graveyard_bytes, "gauge tracks held bytes");
        let hist: u64 = shared.decode_hist.iter().map(|b| b.load(Relaxed)).sum();
        assert_eq!(hist, misses, "every decode lands in one histogram bucket");
        drop(access);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn thread_local_pool_is_reused_and_rekeyed() {
        let g = toy_graph();
        let (store, dir) = open_store("tls", &g, 2);
        let c = cfg(&store, store.total_decoded_bytes());
        let mut stats = SimStats::new();
        with_thread_disk_access(&c, |a| {
            let _ = a.gather(0, &mut stats);
        });
        let first = with_thread_disk_access(&c, |a| a.snapshot());
        assert_eq!(first.misses, 1, "same key reuses the warm pool");
        let c2 = cfg(&store, c.pool_budget / 2);
        let second = with_thread_disk_access(&c2, |a| a.snapshot());
        assert_eq!(second.lookups, 0, "budget change rebuilds the pool");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hooks_read_degrees_without_decoding() {
        let g = rmat(7, 4, RmatParams::MILD, 2);
        let (store, dir) = open_store("degrees", &g, 4);
        let access = DiskAccess::new(&cfg(&store, 1));
        let view = access.graph();
        for v in 0..g.num_vertices() as VertexId {
            assert_eq!(view.degree(v), g.degree(v));
        }
        assert_eq!(access.snapshot().lookups, 0, "degree probes must not touch the pool");
        assert_eq!(view.num_vertices(), g.num_vertices());
        assert_eq!(view.num_edges(), g.num_edges());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
