#![allow(clippy::needless_range_loop)] // index-centric assertions read better here
//! Property tests for the selection machinery: CTPS structure, Theorem 2,
//! and the without-replacement SELECT under every strategy/detector.

use csaw_core::bipartite::{adjust_and_search, updated_ctps, BipartiteOutcome};
use csaw_core::collision::DetectorKind;
use csaw_core::ctps::Ctps;
use csaw_core::select::{select_without_replacement, SelectConfig, SelectStrategy};
use csaw_gpu::stats::SimStats;
use csaw_gpu::Philox;
use proptest::prelude::*;

fn arb_biases() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..50.0, 1..40)
}

fn arb_positive_biases() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.1f64..50.0, 2..40)
}

fn all_configs() -> Vec<SelectConfig> {
    let mut v = Vec::new();
    for strategy in [SelectStrategy::Repeated, SelectStrategy::Updated, SelectStrategy::Bipartite] {
        for detector in [
            DetectorKind::LinearSearch,
            DetectorKind::ContiguousBitmap { word_bits: 8 },
            DetectorKind::ContiguousBitmap { word_bits: 32 },
            DetectorKind::StridedBitmap { word_bits: 8 },
        ] {
            v.push(SelectConfig { strategy, detector });
        }
    }
    v
}

proptest! {
    /// CTPS regions tile [0,1] and each width equals bias/total.
    #[test]
    fn ctps_regions_tile_unit_interval(biases in arb_positive_biases()) {
        let mut s = SimStats::new();
        let c = Ctps::build(&biases, &mut s).unwrap();
        let total: f64 = biases.iter().sum();
        let mut edge = 0.0;
        for k in 0..c.len() {
            let (l, h) = c.region(k);
            prop_assert!((l - edge).abs() < 1e-9);
            prop_assert!((c.probability(k) - biases[k] / total).abs() < 1e-9);
            edge = h;
        }
        prop_assert!((edge - 1.0).abs() < 1e-12);
    }

    /// `search` inverts `region`: any r inside region k maps back to k.
    #[test]
    fn search_inverts_region(biases in arb_positive_biases(), k_frac in 0.0f64..1.0, r_frac in 0.0f64..1.0) {
        let mut s = SimStats::new();
        let c = Ctps::build(&biases, &mut s).unwrap();
        let k = ((k_frac * c.len() as f64) as usize).min(c.len() - 1);
        let (l, h) = c.region(k);
        let r = l + r_frac * (h - l) * 0.999; // strictly inside
        prop_assert_eq!(c.search(r, &mut s), k);
    }

    /// Theorem 2 for arbitrary biases: removing any single candidate `v_s`
    /// and searching the updated CTPS with r' equals the bipartite
    /// adjustment of r' around region s on the original CTPS.
    #[test]
    fn theorem2_holds_for_arbitrary_biases(
        biases in arb_positive_biases(),
        s_frac in 0.0f64..1.0,
        r_prime in 0.0f64..1.0,
    ) {
        let mut st = SimStats::new();
        let ctps = Ctps::build(&biases, &mut st).unwrap();
        let s = ((s_frac * biases.len() as f64) as usize).min(biases.len() - 1);
        let mut sel = vec![false; biases.len()];
        sel[s] = true;
        let upd = updated_ctps(&biases, &sel, &mut st).unwrap();
        let expect = upd.search(r_prime, &mut st);
        match adjust_and_search(&ctps, s, r_prime, |k, _| sel[k], &mut st) {
            BipartiteOutcome::Selected(got) => prop_assert_eq!(got, expect),
            BipartiteOutcome::Restart => {
                // Only possible on an FP boundary graze; the updated CTPS
                // must then sit on a boundary too (probability ~0 events).
                let (l, h) = upd.region(expect);
                prop_assert!(r_prime - l < 1e-9 || h - r_prime < 1e-9);
            }
        }
    }

    /// SELECT returns exactly min(k, positive-bias candidates) distinct
    /// indices with positive bias, under every strategy and detector.
    #[test]
    fn select_postconditions(
        biases in arb_biases(),
        k in 1usize..12,
        seed: u64,
    ) {
        let positive = biases.iter().filter(|&&b| b > 0.0).count();
        for cfg in all_configs() {
            let mut rng = Philox::for_task(seed, 0);
            let mut stats = SimStats::new();
            let sel = select_without_replacement(&biases, k, cfg, &mut rng, &mut stats);
            prop_assert_eq!(sel.len(), k.min(positive), "{:?}", cfg);
            let mut sorted = sel.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), sel.len(), "duplicates under {:?}", cfg);
            prop_assert!(sel.iter().all(|&i| biases[i] > 0.0));
        }
    }

    /// Selection accounting invariants: one successful selection per
    /// returned index; iterations ≥ selections.
    #[test]
    fn select_accounting(biases in arb_positive_biases(), k in 1usize..8, seed: u64) {
        let mut rng = Philox::for_task(seed, 1);
        let mut stats = SimStats::new();
        let sel = select_without_replacement(
            &biases,
            k,
            SelectConfig::paper_best(),
            &mut rng,
            &mut stats,
        );
        prop_assert_eq!(stats.selections as usize, sel.len());
        prop_assert!(stats.select_iterations >= stats.selections);
    }

    /// Updated sampling zeroes exactly the selected regions.
    #[test]
    fn updated_ctps_mass_conservation(
        biases in arb_positive_biases(),
        mask in prop::collection::vec(any::<bool>(), 2..40),
    ) {
        let n = biases.len().min(mask.len());
        let biases = &biases[..n];
        let mask = &mask[..n];
        let mut st = SimStats::new();
        match updated_ctps(biases, mask, &mut st) {
            Some(upd) => {
                for k in 0..n {
                    if mask[k] {
                        prop_assert!(upd.probability(k) < 1e-12);
                    }
                }
                let remaining: f64 =
                    biases.iter().zip(mask).filter(|(_, &m)| !m).map(|(b, _)| b).sum();
                prop_assert!((upd.total_bias() - remaining).abs() < 1e-9);
            }
            None => prop_assert!(mask.iter().all(|&m| m)),
        }
    }
}
