//! Property tests for the promoted Fenwick tree at its canonical
//! framework path (`csaw_core::fenwick`, backed by `csaw_graph::fenwick`).
//!
//! `csaw_baselines::tests::proptest_fenwick` checks prefix/set/select in
//! isolation through the compatibility re-export; this suite drives
//! arbitrary *interleavings* of `add`/`set` against a naive `Vec<f64>`
//! model — the access pattern the mutable-graph overlay produces when a
//! vertex's weights are edited repeatedly across epochs.

use csaw_core::fenwick::Fenwick;
use proptest::prelude::*;

/// One mutation against a slot, as a fraction so it is valid for any
/// tree length.
#[derive(Debug, Clone)]
enum Op {
    /// `add(i, delta)` — clamped so the weight stays non-negative.
    Add { idx_frac: f64, delta: f64 },
    /// `set(i, w)`.
    Set { idx_frac: f64, w: f64 },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    // (kind, idx_frac, value) → Op; value is recentered for Add so
    // deltas span both signs.
    let op = (0u32..2, 0.0f64..1.0, 0.0f64..100.0).prop_map(|(kind, idx_frac, value)| {
        if kind == 0 {
            Op::Add { idx_frac, delta: value - 50.0 }
        } else {
            Op::Set { idx_frac, w: value }
        }
    });
    prop::collection::vec(op, 0..40)
}

fn arb_weights() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..100.0, 1..60)
}

/// Applies `ops` to both the tree and the naive model.
fn apply(f: &mut Fenwick, model: &mut [f64], ops: &[Op]) {
    for op in ops {
        match *op {
            Op::Add { idx_frac, delta } => {
                let i = ((idx_frac * model.len() as f64) as usize).min(model.len() - 1);
                // Clamp so the slot never goes negative (the tree's
                // documented precondition).
                let delta = delta.max(-model[i]);
                f.add(i, delta);
                model[i] += delta;
            }
            Op::Set { idx_frac, w } => {
                let i = ((idx_frac * model.len() as f64) as usize).min(model.len() - 1);
                f.set(i, w);
                model[i] = w;
            }
        }
    }
}

proptest! {
    /// After any interleaving of `add`/`set`, every prefix sum, every
    /// `get`, and the total match a naive scan of the model vector.
    #[test]
    fn mixed_ops_match_naive_model(w in arb_weights(), ops in arb_ops()) {
        let mut f = Fenwick::new(&w);
        let mut model = w;
        apply(&mut f, &mut model, &ops);

        let mut acc = 0.0;
        for k in 0..=model.len() {
            prop_assert!((f.prefix(k) - acc).abs() < 1e-6, "prefix({k})={} vs {acc}", f.prefix(k));
            if k < model.len() {
                prop_assert!((f.get(k) - model[k]).abs() < 1e-6, "get({k})");
                acc += model[k];
            }
        }
        prop_assert!((f.total() - acc).abs() < 1e-6);
    }

    /// `select` after mutations is still an interval lookup on the
    /// *mutated* weights: the result is the first slot whose cumulative
    /// weight exceeds the target, and zero-weight slots are skipped.
    #[test]
    fn select_tracks_mutated_weights(
        w in arb_weights(),
        ops in arb_ops(),
        t_frac in 0.0f64..1.0,
    ) {
        let mut f = Fenwick::new(&w);
        let mut model = w;
        apply(&mut f, &mut model, &ops);

        let total: f64 = model.iter().sum();
        let target = t_frac * total;
        match f.select(target) {
            None => prop_assert!(total <= 1e-9, "None with positive total {total}"),
            Some(j) => {
                prop_assert!(model[j] > 0.0, "zero-weight slot {j} selected");
                let mut acc = 0.0;
                let mut expect = None;
                for (i, &x) in model.iter().enumerate() {
                    acc += x;
                    if acc > target {
                        expect = Some(i);
                        break;
                    }
                }
                let expect = expect
                    .unwrap_or_else(|| model.iter().rposition(|&x| x > 0.0).unwrap());
                // Float rounding inside the tree can land a boundary
                // target one slot off the naive scan; accept a neighbor
                // only when the target sits within 1e-6 of its boundary.
                if j != expect {
                    let boundary: f64 = model[..expect.max(j)].iter().sum();
                    prop_assert!(
                        (boundary - target).abs() < 1e-6,
                        "select {j} vs naive {expect}, target {target}"
                    );
                }
            }
        }
    }

    /// `set(i, w)` is equivalent to `add(i, w - get(i))` — the two
    /// mutation paths agree bit-for-bit on the resulting sums.
    #[test]
    fn set_equals_add_of_difference(w in arb_weights(), idx_frac in 0.0f64..1.0, nv in 0.0f64..100.0) {
        let i = ((idx_frac * w.len() as f64) as usize).min(w.len() - 1);
        let mut by_set = Fenwick::new(&w);
        let mut by_add = Fenwick::new(&w);
        by_set.set(i, nv);
        let cur = by_add.get(i);
        by_add.add(i, nv - cur);
        for k in 0..=w.len() {
            prop_assert_eq!(by_set.prefix(k).to_bits(), by_add.prefix(k).to_bits(), "k={}", k);
        }
    }
}
