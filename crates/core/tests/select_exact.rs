//! Exact-law validation of SELECT: for tiny candidate pools the
//! without-replacement distribution can be enumerated in closed form
//! (successive weighted draws); every strategy and the reservoir selector
//! must match it — jointly, not just marginally.

use csaw_core::collision::DetectorKind;
use csaw_core::reservoir::reservoir_select;
use csaw_core::select::{select_without_replacement, SelectConfig, SelectStrategy};
use csaw_gpu::stats::SimStats;
use csaw_gpu::Philox;
use std::collections::HashMap;

/// Exact probability that the *set* `set` is selected when drawing `k`
/// distinct candidates by successive weighted draws from `biases`:
/// sum over all orderings of the product of conditional probabilities.
fn exact_set_probability(biases: &[f64], set: &[usize]) -> f64 {
    fn perms(items: &[usize]) -> Vec<Vec<usize>> {
        if items.len() <= 1 {
            return vec![items.to_vec()];
        }
        let mut out = Vec::new();
        for (i, &x) in items.iter().enumerate() {
            let mut rest = items.to_vec();
            rest.remove(i);
            for mut p in perms(&rest) {
                p.insert(0, x);
                out.push(p);
            }
        }
        out
    }
    let total: f64 = biases.iter().sum();
    let mut prob = 0.0;
    for order in perms(set) {
        let mut remaining = total;
        let mut p = 1.0;
        for &i in &order {
            p *= biases[i] / remaining;
            remaining -= biases[i];
        }
        prob += p;
    }
    prob
}

fn set_key(mut v: Vec<usize>) -> Vec<usize> {
    v.sort_unstable();
    v
}

fn validate_joint(
    name: &str,
    biases: &[f64],
    k: usize,
    trials: usize,
    mut draw: impl FnMut() -> Vec<usize>,
) {
    let mut counts: HashMap<Vec<usize>, usize> = HashMap::new();
    for _ in 0..trials {
        let sel = set_key(draw());
        assert_eq!(sel.len(), k);
        *counts.entry(sel).or_default() += 1;
    }
    // Enumerate all k-subsets and compare.
    let n = biases.len();
    let mut sets: Vec<Vec<usize>> = Vec::new();
    let mut stack = vec![(0usize, Vec::new())];
    while let Some((start, cur)) = stack.pop() {
        if cur.len() == k {
            sets.push(cur);
            continue;
        }
        for i in start..n {
            let mut next = cur.clone();
            next.push(i);
            stack.push((i + 1, next));
        }
    }
    let mut total_p = 0.0;
    for set in sets {
        let p = exact_set_probability(biases, &set);
        total_p += p;
        let f = counts.get(&set).copied().unwrap_or(0) as f64 / trials as f64;
        assert!((f - p).abs() < 0.012, "{name}: set {set:?} freq {f:.4} vs exact {p:.4}");
    }
    assert!((total_p - 1.0).abs() < 1e-9, "enumeration must cover the law");
}

#[test]
fn repeated_sampling_matches_exact_joint_law() {
    let biases = [5.0, 3.0, 1.0, 1.0];
    let mut rng = Philox::new(11);
    let mut s = SimStats::new();
    let cfg =
        SelectConfig { strategy: SelectStrategy::Repeated, detector: DetectorKind::LinearSearch };
    validate_joint("repeated", &biases, 2, 150_000, || {
        select_without_replacement(&biases, 2, cfg, &mut rng, &mut s)
    });
}

#[test]
fn updated_sampling_matches_exact_joint_law() {
    let biases = [5.0, 3.0, 1.0, 1.0];
    let mut rng = Philox::new(12);
    let mut s = SimStats::new();
    let cfg = SelectConfig {
        strategy: SelectStrategy::Updated,
        detector: DetectorKind::ContiguousBitmap { word_bits: 8 },
    };
    validate_joint("updated", &biases, 2, 150_000, || {
        select_without_replacement(&biases, 2, cfg, &mut rng, &mut s)
    });
}

#[test]
fn bipartite_region_search_matches_exact_joint_law() {
    let biases = [5.0, 3.0, 1.0, 1.0];
    let mut rng = Philox::new(13);
    let mut s = SimStats::new();
    let cfg = SelectConfig::paper_best();
    validate_joint("bipartite", &biases, 2, 150_000, || {
        select_without_replacement(&biases, 2, cfg, &mut rng, &mut s)
    });
}

#[test]
fn reservoir_matches_exact_joint_law() {
    let biases = [5.0, 3.0, 1.0, 1.0];
    let mut rng = Philox::new(14);
    let mut s = SimStats::new();
    validate_joint("reservoir", &biases, 2, 150_000, || {
        reservoir_select(&biases, 2, &mut rng, &mut s)
    });
}

#[test]
fn three_of_five_with_heavy_skew() {
    // Harder case: k=3 of 5 with a dominant candidate.
    let biases = [10.0, 2.0, 1.0, 1.0, 1.0];
    let mut rng = Philox::new(15);
    let mut s = SimStats::new();
    let cfg = SelectConfig::paper_best();
    validate_joint("bipartite-3of5", &biases, 3, 200_000, || {
        select_without_replacement(&biases, 3, cfg, &mut rng, &mut s)
    });
}
