//! Property tests for one-pass sampling and the reservoir selector.

use csaw_core::onepass::{random_edge, random_node, ties};
use csaw_core::reservoir::reservoir_select;
use csaw_gpu::stats::SimStats;
use csaw_gpu::Philox;
use csaw_graph::CsrBuilder;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = csaw_graph::Csr> {
    prop::collection::vec((0u32..60, 0u32..60), 0..200).prop_map(|edges| {
        CsrBuilder::new().with_num_vertices(60).symmetrize(true).extend_edges(edges).build()
    })
}

proptest! {
    /// Node sampling: sampled edges ⊆ original, endpoints all kept.
    #[test]
    fn random_node_is_induced_subgraph(g in arb_graph(), frac in 0.0f64..=1.0, seed: u64) {
        let out = random_node(&g, frac, seed);
        let kept: std::collections::HashSet<u32> = out.vertices.iter().copied().collect();
        for &(v, u) in &out.edges {
            prop_assert!(g.has_edge(v, u));
            prop_assert!(kept.contains(&v) && kept.contains(&u));
        }
        // Completeness: every original edge between kept vertices appears.
        for &v in &out.vertices {
            for &u in g.neighbors(v) {
                if kept.contains(&u) {
                    prop_assert!(out.edges.contains(&(v, u)));
                }
            }
        }
    }

    /// Edge sampling keeps both directions together and is a subset.
    #[test]
    fn random_edge_is_symmetric_subset(g in arb_graph(), frac in 0.0f64..=1.0, seed: u64) {
        let out = random_edge(&g, frac, seed);
        let set: std::collections::HashSet<(u32, u32)> = out.edges.iter().copied().collect();
        for &(v, u) in &out.edges {
            prop_assert!(g.has_edge(v, u));
            prop_assert!(set.contains(&(u, v)));
        }
        if frac == 1.0 {
            prop_assert_eq!(out.edges.len(), g.num_edges());
        }
        if frac == 0.0 {
            prop_assert!(out.edges.is_empty());
        }
    }

    /// TIES is closed under induction and contains its seed edges.
    #[test]
    fn ties_is_closed(g in arb_graph(), frac in 0.0f64..0.5, seed: u64) {
        let out = ties(&g, frac, seed);
        let vs: std::collections::HashSet<u32> = out.vertices.iter().copied().collect();
        let es: std::collections::HashSet<(u32, u32)> = out.edges.iter().copied().collect();
        for &v in &out.vertices {
            for &u in g.neighbors(v) {
                if vs.contains(&u) {
                    prop_assert!(es.contains(&(v, u)), "missing induced edge ({v},{u})");
                }
            }
        }
    }

    /// Reservoir selection: k distinct positive-bias winners, always.
    #[test]
    fn reservoir_postconditions(
        biases in prop::collection::vec(0.0f64..20.0, 1..50),
        k in 1usize..10,
        seed: u64,
    ) {
        let mut rng = Philox::for_task(seed, 0);
        let mut s = SimStats::new();
        let sel = reservoir_select(&biases, k, &mut rng, &mut s);
        let positive = biases.iter().filter(|&&b| b > 0.0).count();
        prop_assert_eq!(sel.len(), k.min(positive));
        let mut sorted = sel.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), sel.len());
        prop_assert!(sel.iter().all(|&i| biases[i] > 0.0));
    }
}
