//! Prometheus text encoding of the service ledger, cache gauges,
//! method counters, and per-tenant scheduler accounting.
//!
//! One renderer feeds both surfaces: the HTTP `GET /metrics` side
//! listener and the wire protocol's `Stats` frame, so a scraper and a
//! wire client read the same vocabulary (exposition format 0.0.4).
//!
//! The ledger metrics mirror the service's conservation identities —
//! `csaw_ledger_fully_accounted` is `1` exactly when every submitted
//! request (sampling, mutation, and compact alike) has reached exactly
//! one terminal state, which is what the multi-tenant integration test
//! asserts after inducing sheds, expiries, and a panicking batch.

use crate::tenant::{TenantSnapshot, WAIT_BUCKETS_US};
use csaw_service::stats::BATCH_BUCKETS;
use csaw_service::StatsSnapshot;
use std::fmt::Write as _;

/// Everything the renderer needs beyond the service snapshot.
#[derive(Debug, Clone, Default)]
pub struct ServeMetrics {
    /// Connections accepted since start.
    pub connections: u64,
    /// Frames that failed to decode (per-connection codec errors).
    pub bad_frames: u64,
    /// Events published to subscribers.
    pub events_published: u64,
    /// Events dropped because a subscriber's channel was gone.
    pub events_dropped: u64,
    /// Live subscriber connections.
    pub subscribers: u64,
}

fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {value}");
}

fn gauge(out: &mut String, name: &str, help: &str, value: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {value}");
}

/// Escapes a label value per the exposition format.
fn escape(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Renders the full metrics page.
pub fn render(
    snap: &StatsSnapshot,
    tenant_sheds: &[(String, u64)],
    tenants: &[TenantSnapshot],
    serve: &ServeMetrics,
) -> String {
    let mut out = String::with_capacity(8 << 10);

    // --- service ledger -------------------------------------------------
    counter(
        &mut out,
        "csaw_requests_submitted_total",
        "Sampling requests submitted",
        snap.submitted,
    );
    counter(
        &mut out,
        "csaw_requests_accepted_total",
        "Requests admitted to the queue",
        snap.accepted,
    );
    counter(
        &mut out,
        "csaw_requests_rejected_invalid_total",
        "Requests rejected as malformed",
        snap.rejected_invalid,
    );
    counter(
        &mut out,
        "csaw_requests_rejected_queue_full_total",
        "Requests shed by the bounded queue",
        snap.rejected_queue_full,
    );
    counter(
        &mut out,
        "csaw_requests_rejected_shutdown_total",
        "Requests rejected during shutdown",
        snap.rejected_shutdown,
    );
    counter(&mut out, "csaw_requests_expired_total", "Requests past their deadline", snap.expired);
    counter(&mut out, "csaw_requests_completed_total", "Requests answered", snap.completed);
    counter(&mut out, "csaw_requests_failed_total", "Requests lost to a batch panic", snap.failed);
    counter(&mut out, "csaw_batches_total", "Coalesced launches", snap.batches);
    gauge(&mut out, "csaw_queue_depth", "Requests waiting in the service queue", snap.queue_depth);
    counter(&mut out, "csaw_sampled_edges_total", "Edges sampled", snap.sampled_edges);

    // Per-tenant shed split of the global rejected_queue_full counter.
    let _ =
        writeln!(out, "# HELP csaw_tenant_queue_full_sheds_total Service-queue sheds by tenant");
    let _ = writeln!(out, "# TYPE csaw_tenant_queue_full_sheds_total counter");
    for (tenant, sheds) in tenant_sheds {
        let _ = writeln!(
            out,
            "csaw_tenant_queue_full_sheds_total{{tenant=\"{}\"}} {sheds}",
            escape(tenant)
        );
    }

    // Mutation / compaction ledger.
    counter(
        &mut out,
        "csaw_mutations_submitted_total",
        "Mutation requests submitted",
        snap.mutations_submitted,
    );
    counter(&mut out, "csaw_mutations_applied_total", "Mutation requests applied", snap.mutations);
    counter(
        &mut out,
        "csaw_mutations_rejected_total",
        "Mutation requests rejected",
        snap.mutations_rejected,
    );
    counter(&mut out, "csaw_compact_requests_total", "Compact requests", snap.compact_requests);
    counter(&mut out, "csaw_compactions_total", "Compactions that folded deltas", snap.compactions);
    counter(
        &mut out,
        "csaw_compact_noops_total",
        "Compactions with nothing to fold",
        snap.compact_noops,
    );
    gauge(&mut out, "csaw_graph_epoch", "Current graph epoch", snap.graph_epoch);
    gauge(
        &mut out,
        "csaw_overlay_vertices",
        "Vertices with uncompacted deltas",
        snap.overlay_vertices,
    );

    // Conservation check, machine-readable.
    gauge(
        &mut out,
        "csaw_ledger_fully_accounted",
        "1 when every submitted request reached exactly one terminal state",
        u64::from(snap.fully_accounted()),
    );

    // --- cache gauges ---------------------------------------------------
    counter(&mut out, "csaw_ctps_cache_lookups_total", "CTPS cache lookups", snap.cache_lookups);
    counter(&mut out, "csaw_ctps_cache_hits_total", "CTPS cache hits", snap.cache_hits);
    counter(&mut out, "csaw_ctps_cache_misses_total", "CTPS cache misses", snap.cache_misses);
    counter(
        &mut out,
        "csaw_ctps_cache_promotions_total",
        "CTPS cache promotions",
        snap.cache_promotions,
    );
    counter(
        &mut out,
        "csaw_ctps_cache_evictions_total",
        "CTPS cache evictions",
        snap.cache_evictions,
    );
    gauge(&mut out, "csaw_ctps_cache_bytes", "Bytes held by the CTPS cache", snap.cache_bytes);
    counter(
        &mut out,
        "csaw_alias_cache_hits_total",
        "Cached alias-table hits",
        snap.cache_alias_hits,
    );

    // --- disk tier ------------------------------------------------------
    // All zero unless the service fronts a disk store; gauges because the
    // worker pools outlive batches and each publish replaces the last.
    counter(&mut out, "csaw_disk_lookups_total", "Disk-tier pool lookups", snap.disk_lookups);
    counter(
        &mut out,
        "csaw_disk_hits_total",
        "Disk-tier lookups served by a resident decoded partition",
        snap.disk_hits,
    );
    counter(
        &mut out,
        "csaw_disk_misses_total",
        "Disk-tier lookups that decoded a partition from its segment",
        snap.disk_misses,
    );
    counter(
        &mut out,
        "csaw_disk_evictions_total",
        "Decoded partitions evicted by the clock sweep",
        snap.disk_evictions,
    );
    gauge(
        &mut out,
        "csaw_disk_pool_bytes",
        "Bytes held by decoded partitions across all pools",
        snap.disk_pool_bytes,
    );
    counter(
        &mut out,
        "csaw_disk_mmap_faults_total",
        "Simulated 4KiB page faults streaming mapped segments",
        snap.disk_mmap_faults,
    );
    counter(
        &mut out,
        "csaw_disk_decode_bytes_total",
        "RAM bytes produced by disk-tier decodes",
        snap.disk_decode_bytes,
    );
    let _ = writeln!(out, "# HELP csaw_disk_decode_seconds Partition decode wall time");
    let _ = writeln!(out, "# TYPE csaw_disk_decode_seconds histogram");
    let mut cumulative = 0u64;
    for (i, &ub_us) in csaw_core::residency::DECODE_BUCKETS_US.iter().enumerate() {
        cumulative += snap.disk_decode_hist[i];
        let ub_s = ub_us as f64 / 1e6;
        let _ = writeln!(out, "csaw_disk_decode_seconds_bucket{{le=\"{ub_s}\"}} {cumulative}");
    }
    cumulative += snap.disk_decode_hist[csaw_core::residency::DECODE_BUCKETS_US.len()];
    let _ = writeln!(out, "csaw_disk_decode_seconds_bucket{{le=\"+Inf\"}} {cumulative}");
    let _ = writeln!(out, "csaw_disk_decode_seconds_sum {}", snap.disk_decode_sum_us as f64 / 1e6);
    let _ = writeln!(out, "csaw_disk_decode_seconds_count {}", snap.disk_decode_count);

    // --- sampling method counters --------------------------------------
    let _ =
        writeln!(out, "# HELP csaw_method_selections_total Neighbor selections by sampling method");
    let _ = writeln!(out, "# TYPE csaw_method_selections_total counter");
    for (method, v) in [
        ("its", snap.method_its),
        ("alias", snap.method_alias),
        ("rejection", snap.method_rejection),
        ("uniform", snap.method_uniform),
    ] {
        let _ = writeln!(out, "csaw_method_selections_total{{method=\"{method}\"}} {v}");
    }
    counter(
        &mut out,
        "csaw_rejection_trials_total",
        "Rejection-sampling trials",
        snap.rejection_trials,
    );

    // Batch-size histogram (requests per coalesced launch).
    let _ = writeln!(out, "# HELP csaw_batch_requests Requests coalesced per launch");
    let _ = writeln!(out, "# TYPE csaw_batch_requests histogram");
    let mut cumulative = 0u64;
    for (i, &ub) in BATCH_BUCKETS.iter().enumerate() {
        cumulative += snap.batch_hist[i];
        let _ = writeln!(out, "csaw_batch_requests_bucket{{le=\"{ub}\"}} {cumulative}");
    }
    cumulative += snap.batch_hist[BATCH_BUCKETS.len()];
    let _ = writeln!(out, "csaw_batch_requests_bucket{{le=\"+Inf\"}} {cumulative}");
    let _ = writeln!(out, "csaw_batch_requests_count {cumulative}");

    // --- depth-sync batch execution ------------------------------------
    // All zero unless the service runs with `exec = DepthSync`; the
    // conservation identities (hits + misses == groups, histogram sums
    // to groups) fold into `csaw_ledger_fully_accounted` above.
    counter(
        &mut out,
        "csaw_batch_groups_total",
        "Same-vertex frontier groups expanded by the depth-sync driver",
        snap.batch_groups,
    );
    counter(
        &mut out,
        "csaw_batch_group_entries_total",
        "Frontier entries expanded through grouped depth-sync steps",
        snap.batch_group_entries,
    );
    counter(
        &mut out,
        "csaw_batch_prefetch_hits_total",
        "Frontier groups whose rows were software-prefetched ahead of use",
        snap.batch_prefetch_hits,
    );
    counter(
        &mut out,
        "csaw_batch_prefetch_misses_total",
        "Frontier groups expanded without prefetch coverage",
        snap.batch_prefetch_misses,
    );
    // Log2-bucketed group occupancy: bucket `i` counts groups of
    // [2^i, 2^(i+1)) co-located walkers, so `le` is `2^(i+1) - 1`.
    let _ = writeln!(out, "# HELP csaw_batch_group_size Walkers co-located per frontier group");
    let _ = writeln!(out, "# TYPE csaw_batch_group_size histogram");
    let mut cumulative = 0u64;
    for (i, count) in snap.batch_group_hist.iter().enumerate().take(7) {
        cumulative += count;
        let ub = (1u64 << (i + 1)) - 1;
        let _ = writeln!(out, "csaw_batch_group_size_bucket{{le=\"{ub}\"}} {cumulative}");
    }
    cumulative += snap.batch_group_hist[7];
    let _ = writeln!(out, "csaw_batch_group_size_bucket{{le=\"+Inf\"}} {cumulative}");
    let _ = writeln!(out, "csaw_batch_group_size_count {cumulative}");

    // --- per-tenant scheduler plane ------------------------------------
    for (name, help, get) in [
        (
            "csaw_tenant_enqueued_total",
            "Jobs accepted into the tenant's fair queue",
            (|t: &TenantSnapshot| t.enqueued) as fn(&TenantSnapshot) -> u64,
        ),
        ("csaw_tenant_dispatched_total", "Jobs released to the service", |t| t.dispatched),
        ("csaw_tenant_completed_total", "Jobs completed", |t| t.completed),
        ("csaw_tenant_shed_quota_total", "Admissions shed by a token bucket", |t| t.shed_quota),
        ("csaw_tenant_shed_queue_total", "Admissions shed by the fair-queue bound", |t| {
            t.shed_queue
        }),
    ] {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        for t in tenants {
            let _ = writeln!(out, "{name}{{tenant=\"{}\"}} {}", escape(&t.tenant), get(t));
        }
    }
    let _ = writeln!(out, "# HELP csaw_tenant_queued Jobs waiting in the tenant's fair queue");
    let _ = writeln!(out, "# TYPE csaw_tenant_queued gauge");
    for t in tenants {
        let _ =
            writeln!(out, "csaw_tenant_queued{{tenant=\"{}\"}} {}", escape(&t.tenant), t.queued);
    }
    let _ = writeln!(out, "# HELP csaw_tenant_weight Fair-share weight in effect");
    let _ = writeln!(out, "# TYPE csaw_tenant_weight gauge");
    for t in tenants {
        let _ =
            writeln!(out, "csaw_tenant_weight{{tenant=\"{}\"}} {}", escape(&t.tenant), t.weight);
    }
    let _ =
        writeln!(out, "# HELP csaw_tenant_queue_wait_seconds Fair-queue wait, enqueue to dispatch");
    let _ = writeln!(out, "# TYPE csaw_tenant_queue_wait_seconds histogram");
    for t in tenants {
        let label = escape(&t.tenant);
        for (i, &ub_us) in WAIT_BUCKETS_US.iter().enumerate() {
            let ub_s = ub_us as f64 / 1e6;
            let _ = writeln!(
                out,
                "csaw_tenant_queue_wait_seconds_bucket{{tenant=\"{label}\",le=\"{ub_s}\"}} {}",
                t.wait.buckets[i]
            );
        }
        let _ = writeln!(
            out,
            "csaw_tenant_queue_wait_seconds_bucket{{tenant=\"{label}\",le=\"+Inf\"}} {}",
            t.wait.buckets[WAIT_BUCKETS_US.len()]
        );
        let _ = writeln!(
            out,
            "csaw_tenant_queue_wait_seconds_sum{{tenant=\"{label}\"}} {}",
            t.wait.sum_us as f64 / 1e6
        );
        let _ = writeln!(
            out,
            "csaw_tenant_queue_wait_seconds_count{{tenant=\"{label}\"}} {}",
            t.wait.count
        );
    }

    // --- server plane ---------------------------------------------------
    counter(&mut out, "csaw_serve_connections_total", "Connections accepted", serve.connections);
    counter(
        &mut out,
        "csaw_serve_bad_frames_total",
        "Frames that failed to decode",
        serve.bad_frames,
    );
    counter(
        &mut out,
        "csaw_serve_events_published_total",
        "Completion events published",
        serve.events_published,
    );
    counter(
        &mut out,
        "csaw_serve_events_dropped_total",
        "Events dropped (no live subscriber)",
        serve.events_dropped,
    );
    gauge(&mut out, "csaw_serve_subscribers", "Live event subscribers", serve.subscribers);

    out
}

/// Pulls one metric's value out of a rendered page — test and client
/// convenience, not a general parser. Matches an exact metric line
/// (`name value` or `name{labels} value`).
pub fn parse_value(page: &str, name_and_labels: &str) -> Option<f64> {
    page.lines().find_map(|line| {
        let rest = line.strip_prefix(name_and_labels)?;
        let rest = rest.strip_prefix(' ')?;
        rest.trim().parse().ok()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_ledger() {
        let snap = StatsSnapshot::default();
        let page = render(&snap, &[("acme".into(), 3)], &[], &ServeMetrics::default());
        assert_eq!(parse_value(&page, "csaw_requests_submitted_total"), Some(0.0));
        assert_eq!(
            parse_value(&page, "csaw_tenant_queue_full_sheds_total{tenant=\"acme\"}"),
            Some(3.0)
        );
        assert_eq!(parse_value(&page, "csaw_ledger_fully_accounted"), Some(1.0));
        assert!(page.contains("# TYPE csaw_batch_requests histogram"));
    }

    #[test]
    fn renders_depth_sync_batch_section() {
        let snap = StatsSnapshot {
            batch_groups: 5,
            batch_group_entries: 40,
            batch_prefetch_hits: 3,
            batch_prefetch_misses: 2,
            batch_group_hist: [1, 0, 0, 4, 0, 0, 0, 0],
            ..Default::default()
        };
        let page = render(&snap, &[], &[], &ServeMetrics::default());
        assert_eq!(parse_value(&page, "csaw_batch_groups_total"), Some(5.0));
        assert_eq!(parse_value(&page, "csaw_batch_group_entries_total"), Some(40.0));
        assert_eq!(parse_value(&page, "csaw_batch_prefetch_hits_total"), Some(3.0));
        assert_eq!(parse_value(&page, "csaw_batch_prefetch_misses_total"), Some(2.0));
        // Log2 buckets: one singleton group, four groups of 8-15 walkers.
        assert_eq!(parse_value(&page, "csaw_batch_group_size_bucket{le=\"1\"}"), Some(1.0));
        assert_eq!(parse_value(&page, "csaw_batch_group_size_bucket{le=\"7\"}"), Some(1.0));
        assert_eq!(parse_value(&page, "csaw_batch_group_size_bucket{le=\"15\"}"), Some(5.0));
        assert_eq!(parse_value(&page, "csaw_batch_group_size_bucket{le=\"+Inf\"}"), Some(5.0));
        assert_eq!(parse_value(&page, "csaw_batch_group_size_count"), Some(5.0));
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
