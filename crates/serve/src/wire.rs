//! The wire codec: length-prefixed binary frames over a byte stream.
//!
//! Every frame is `u32 length (LE) | u8 frame type | payload`; the
//! length counts the type byte plus the payload. All integers are
//! little-endian, floats travel as their IEEE-754 bit patterns, strings
//! and vectors are a `u32` count followed by their elements. Optional
//! fields are a `u8` presence flag followed by the value when present.
//!
//! **Versioning rules.** The first frame on a connection is
//! [`Frame::Hello`] carrying [`MAGIC`] and the client's
//! [`WIRE_VERSION`]; the server answers [`Frame::HelloAck`] with its
//! own version or an [`ErrorCode::VersionMismatch`] error frame and
//! closes. Within a major version, *new frame types and new error
//! codes may be added* but existing payload layouts never change — a
//! decoder that sees an unknown frame type returns the typed
//! [`WireError::UnknownFrameType`] rather than guessing.
//!
//! The decoder never panics on hostile input: truncated payloads,
//! trailing bytes, oversized counts, bad UTF-8, and out-of-range tags
//! all come back as a typed [`WireError`] (property-tested in
//! `tests/serve.rs`).

use csaw_graph::EdgeEdit;
use std::io::{Read, Write};
use std::time::Duration;

/// `"CSAW"` — the handshake magic carried by [`Frame::Hello`].
pub const MAGIC: u32 = 0x4353_4157;

/// Protocol version spoken by this build.
pub const WIRE_VERSION: u16 = 1;

/// Hard ceiling on a frame's encoded length (type byte + payload); the
/// reader rejects longer frames before allocating. 64 MiB comfortably
/// holds a response of a million 8-byte edges.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// Ceiling on an encoded string (tenant labels, error messages).
const MAX_STRING_LEN: u32 = 1 << 16;

/// Why a byte sequence failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the field being read.
    Truncated,
    /// Bytes remained after the frame's last field.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// The frame type byte names no known frame.
    UnknownFrameType(u8),
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    FrameTooLarge {
        /// The rejected length.
        len: u32,
    },
    /// A declared length of zero: frames always carry a type byte.
    EmptyFrame,
    /// [`Frame::Hello`] carried the wrong magic (not a csaw-serve peer).
    BadMagic(u32),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A string exceeded the 64 KiB per-field bound.
    StringTooLong(u32),
    /// An enum tag (edit kind, event kind, error code) was out of range.
    BadTag {
        /// Which field carried the bad tag.
        field: &'static str,
        /// The rejected value.
        value: u64,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::TrailingBytes { extra } => write!(f, "{extra} trailing bytes after frame"),
            WireError::UnknownFrameType(t) => write!(f, "unknown frame type {t:#04x}"),
            WireError::FrameTooLarge { len } => {
                write!(f, "frame length {len} exceeds {MAX_FRAME_LEN}")
            }
            WireError::EmptyFrame => write!(f, "zero-length frame"),
            WireError::BadMagic(m) => write!(f, "bad handshake magic {m:#010x}"),
            WireError::BadUtf8 => write!(f, "string field is not UTF-8"),
            WireError::StringTooLong(n) => write!(f, "string of {n} bytes exceeds field bound"),
            WireError::BadTag { field, value } => write!(f, "bad {field} tag {value}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Receiving can fail at the transport or at the codec.
#[derive(Debug)]
pub enum RecvError {
    /// The underlying stream failed (includes clean EOF between frames
    /// as `UnexpectedEof`).
    Io(std::io::Error),
    /// The bytes arrived but did not decode.
    Wire(WireError),
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Io(e) => write!(f, "io: {e}"),
            RecvError::Wire(e) => write!(f, "wire: {e}"),
        }
    }
}

impl std::error::Error for RecvError {}

impl From<std::io::Error> for RecvError {
    fn from(e: std::io::Error) -> RecvError {
        RecvError::Io(e)
    }
}

impl From<WireError> for RecvError {
    fn from(e: WireError) -> RecvError {
        RecvError::Wire(e)
    }
}

/// Typed failure carried by [`Frame::Error`]. Codes are stable wire
/// values: new codes may be added, existing codes never renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The request was malformed (unknown algorithm, bad seeds, ...).
    Invalid = 1,
    /// The service's bounded queue shed the request; retry after the
    /// hinted backoff.
    QueueFull = 2,
    /// The deadline passed before a result could be delivered.
    Expired = 3,
    /// The batch serving this request panicked (other batches are fine).
    BatchFailed = 4,
    /// The server is shutting down.
    ShuttingDown = 5,
    /// The tenant's token bucket (request or byte quota) is exhausted.
    TenantQuota = 6,
    /// The tenant's fair-share queue is full (per-tenant backpressure).
    TenantQueueFull = 7,
    /// Handshake version/magic mismatch.
    VersionMismatch = 8,
    /// The peer sent a frame the server cannot act on in this state.
    BadFrame = 9,
    /// Mutation: an endpoint is out of range.
    EditVertexOutOfRange = 10,
    /// Mutation: delete/reweight named a missing edge.
    EditEdgeNotFound = 11,
    /// Mutation: weighted edit on an unweighted graph.
    EditWeightOnUnweighted = 12,
    /// Mutation: weight not finite and positive.
    EditBadWeight = 13,
    /// Mutation: the graph is served from an immutable backing store.
    EditImmutableStore = 14,
}

impl ErrorCode {
    /// Decodes a wire value.
    pub fn from_u16(v: u16) -> Option<ErrorCode> {
        use ErrorCode::*;
        Some(match v {
            1 => Invalid,
            2 => QueueFull,
            3 => Expired,
            4 => BatchFailed,
            5 => ShuttingDown,
            6 => TenantQuota,
            7 => TenantQueueFull,
            8 => VersionMismatch,
            9 => BadFrame,
            10 => EditVertexOutOfRange,
            11 => EditEdgeNotFound,
            12 => EditWeightOnUnweighted,
            13 => EditBadWeight,
            14 => EditImmutableStore,
            _ => return None,
        })
    }
}

/// An algorithm reference as it travels on the wire: registry name plus
/// optional parameter overrides — exactly the surface of
/// [`csaw_core::AlgoSpec`], resolved and validated server-side.
#[derive(Debug, Clone, PartialEq)]
pub struct WireAlgo {
    /// Registry name (`"biased-walk"`, `"node2vec"`, ...).
    pub name: String,
    /// Depth / walk length override.
    pub depth: Option<u32>,
    /// NeighborSize override.
    pub neighbor_size: Option<u32>,
    /// Forest-fire burn probability.
    pub pf: Option<f64>,
    /// node2vec return parameter.
    pub p: Option<f64>,
    /// node2vec in-out parameter.
    pub q: Option<f64>,
    /// Jump probability.
    pub p_jump: Option<f64>,
    /// Restart probability.
    pub p_restart: Option<f64>,
}

impl WireAlgo {
    /// A reference by name with every parameter at its default.
    pub fn by_name(name: impl Into<String>) -> WireAlgo {
        WireAlgo {
            name: name.into(),
            depth: None,
            neighbor_size: None,
            pf: None,
            p: None,
            q: None,
            p_jump: None,
            p_restart: None,
        }
    }

    /// Overrides the depth / walk length.
    pub fn with_depth(mut self, depth: u32) -> WireAlgo {
        self.depth = Some(depth);
        self
    }
}

/// One sampling request frame.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleFrame {
    /// Client-chosen correlation id, echoed on every reply frame.
    pub id: u64,
    /// What to run.
    pub algo: WireAlgo,
    /// Seed vertices (one instance per seed; MDRW pools them).
    pub seeds: Vec<u32>,
    /// RNG seed (batch-key component).
    pub rng_seed: u64,
    /// Deadline in microseconds from admission (absent = none).
    pub deadline_us: Option<u64>,
    /// `0` requests one [`Frame::Response`]; `n > 0` requests streaming:
    /// the seeds are split into sub-requests of at most `n` seeds,
    /// admitted atomically with contiguous instance ranges, and each
    /// completed chunk arrives as a [`Frame::Chunk`] as soon as *its*
    /// batch finishes — first-walk latency decouples from batch
    /// completion. A [`Frame::StreamEnd`] closes the stream.
    pub stream_chunk: u32,
}

/// One complete (non-streamed) response.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseFrame {
    /// Echoed request id.
    pub id: u64,
    /// Global instance range start assigned at admission — a solo
    /// engine run at this base reproduces `instances` bit for bit.
    pub instance_base: u32,
    /// Requests coalesced into the launch that served this one.
    pub batch_requests: u64,
    /// Total sampling instances in that launch.
    pub batch_instances: u64,
    /// Queue wait in microseconds (admission → dequeue).
    pub queue_wait_us: u64,
    /// Edges sampled for this request.
    pub sampled_edges: u64,
    /// Per-instance sampled edges, in instance order.
    pub instances: Vec<Vec<(u32, u32)>>,
}

/// One chunk of a streamed response.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkFrame {
    /// Echoed request id.
    pub id: u64,
    /// Chunk sequence number, from 0.
    pub seq: u32,
    /// Instance base of *this chunk* (the whole stream's base plus the
    /// instances already streamed).
    pub chunk_base: u32,
    /// This chunk's instances.
    pub instances: Vec<Vec<(u32, u32)>>,
}

/// End of a streamed response.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamEndFrame {
    /// Echoed request id.
    pub id: u64,
    /// How many [`Frame::Chunk`]s were sent.
    pub chunks: u32,
    /// Instance base of the whole stream (chunk 0's base).
    pub instance_base: u32,
    /// Total edges across every chunk.
    pub sampled_edges: u64,
}

/// What a completion event reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// The request completed with a response.
    Completed,
    /// The request expired before delivery.
    Expired,
    /// The request's batch failed (panic isolation).
    Failed,
}

/// A walk-finished notification pushed to subscribers.
#[derive(Debug, Clone, PartialEq)]
pub struct EventFrame {
    /// Server-side request id (the service's admission-order id, or the
    /// wire id for requests that never reached admission).
    pub request_id: u64,
    /// Which tenant's request finished.
    pub tenant: String,
    /// Terminal state.
    pub kind: EventKind,
    /// Edges sampled (0 unless `Completed`).
    pub sampled_edges: u64,
    /// Instances in the response (0 unless `Completed`).
    pub instances: u32,
}

/// A typed failure reply.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorFrame {
    /// Echoed request id (0 for connection-level errors).
    pub id: u64,
    /// What failed.
    pub code: ErrorCode,
    /// Suggested client backoff in microseconds (0 = no hint). Carried
    /// by `QueueFull`, `TenantQuota`, and `TenantQueueFull`.
    pub retry_after_us: u64,
    /// Human-readable detail.
    pub message: String,
}

impl ErrorFrame {
    /// The backoff hint as a [`Duration`], if any.
    pub fn retry_after(&self) -> Option<Duration> {
        (self.retry_after_us > 0).then(|| Duration::from_micros(self.retry_after_us))
    }
}

/// Every frame the protocol speaks.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server, first frame: magic + version + tenant label.
    Hello {
        /// Client protocol version.
        version: u16,
        /// Tenant this connection belongs to (quota + fair-share key).
        tenant: String,
    },
    /// Server → client handshake acceptance.
    HelloAck {
        /// Server protocol version.
        version: u16,
    },
    /// Sampling request.
    Sample(SampleFrame),
    /// Complete response to a non-streamed [`Frame::Sample`].
    Response(ResponseFrame),
    /// One chunk of a streamed response.
    Chunk(ChunkFrame),
    /// Stream terminator.
    StreamEnd(StreamEndFrame),
    /// Atomic graph-edit batch.
    Mutate {
        /// Correlation id.
        id: u64,
        /// Edits applied in order, all-or-nothing.
        edits: Vec<EdgeEdit>,
    },
    /// Mutation acknowledgement.
    MutateAck {
        /// Echoed id.
        id: u64,
        /// Epoch the graph advanced to.
        epoch: u64,
        /// Vertices carrying an uncompacted delta.
        overlay_vertices: u64,
    },
    /// Fold the delta overlay into a fresh base CSR.
    Compact {
        /// Correlation id.
        id: u64,
    },
    /// Compaction acknowledgement.
    CompactAck {
        /// Echoed id.
        id: u64,
        /// Vertices folded.
        folded: u64,
    },
    /// Request the server's stats/metrics snapshot.
    Stats {
        /// Correlation id.
        id: u64,
    },
    /// Stats reply: the same Prometheus text the `/metrics` endpoint
    /// serves, so wire clients and scrapers read one vocabulary.
    StatsAck {
        /// Echoed id.
        id: u64,
        /// Prometheus text exposition.
        text: String,
    },
    /// Switch this connection into event-subscription mode: the server
    /// pushes [`Frame::Event`]s for this connection's tenant until the
    /// client disconnects.
    Subscribe {
        /// Correlation id (echoed on the acknowledging `HelloAck`-less
        /// first event batch; reserved).
        id: u64,
    },
    /// A walk-finished notification.
    Event(EventFrame),
    /// Typed failure reply.
    Error(ErrorFrame),
    /// Polite close (either direction); the peer may just disconnect.
    Goodbye,
}

// Frame type bytes (stable wire values).
const T_HELLO: u8 = 0x01;
const T_HELLO_ACK: u8 = 0x02;
const T_SAMPLE: u8 = 0x10;
const T_RESPONSE: u8 = 0x11;
const T_CHUNK: u8 = 0x12;
const T_STREAM_END: u8 = 0x13;
const T_MUTATE: u8 = 0x20;
const T_MUTATE_ACK: u8 = 0x21;
const T_COMPACT: u8 = 0x22;
const T_COMPACT_ACK: u8 = 0x23;
const T_STATS: u8 = 0x30;
const T_STATS_ACK: u8 = 0x31;
const T_SUBSCRIBE: u8 = 0x40;
const T_EVENT: u8 = 0x41;
const T_GOODBYE: u8 = 0x7E;
const T_ERROR: u8 = 0x7F;

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_opt_u32(buf: &mut Vec<u8>, v: Option<u32>) {
    match v {
        None => buf.push(0),
        Some(x) => {
            buf.push(1);
            put_u32(buf, x);
        }
    }
}

fn put_opt_u64(buf: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => buf.push(0),
        Some(x) => {
            buf.push(1);
            put_u64(buf, x);
        }
    }
}

fn put_opt_f64(buf: &mut Vec<u8>, v: Option<f64>) {
    match v {
        None => buf.push(0),
        Some(x) => {
            buf.push(1);
            put_u64(buf, x.to_bits());
        }
    }
}

fn put_instances(buf: &mut Vec<u8>, instances: &[Vec<(u32, u32)>]) {
    put_u32(buf, instances.len() as u32);
    for inst in instances {
        put_u32(buf, inst.len() as u32);
        for &(v, u) in inst {
            put_u32(buf, v);
            put_u32(buf, u);
        }
    }
}

fn put_algo(buf: &mut Vec<u8>, a: &WireAlgo) {
    put_str(buf, &a.name);
    put_opt_u32(buf, a.depth);
    put_opt_u32(buf, a.neighbor_size);
    put_opt_f64(buf, a.pf);
    put_opt_f64(buf, a.p);
    put_opt_f64(buf, a.q);
    put_opt_f64(buf, a.p_jump);
    put_opt_f64(buf, a.p_restart);
}

impl Frame {
    /// Encodes the frame — length prefix included — appending to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        let start = buf.len();
        put_u32(buf, 0); // patched below
        match self {
            Frame::Hello { version, tenant } => {
                buf.push(T_HELLO);
                put_u32(buf, MAGIC);
                put_u16(buf, *version);
                put_str(buf, tenant);
            }
            Frame::HelloAck { version } => {
                buf.push(T_HELLO_ACK);
                put_u16(buf, *version);
            }
            Frame::Sample(s) => {
                buf.push(T_SAMPLE);
                put_u64(buf, s.id);
                put_algo(buf, &s.algo);
                put_u64(buf, s.rng_seed);
                put_opt_u64(buf, s.deadline_us);
                put_u32(buf, s.stream_chunk);
                put_u32(buf, s.seeds.len() as u32);
                for &v in &s.seeds {
                    put_u32(buf, v);
                }
            }
            Frame::Response(r) => {
                buf.push(T_RESPONSE);
                put_u64(buf, r.id);
                put_u32(buf, r.instance_base);
                put_u64(buf, r.batch_requests);
                put_u64(buf, r.batch_instances);
                put_u64(buf, r.queue_wait_us);
                put_u64(buf, r.sampled_edges);
                put_instances(buf, &r.instances);
            }
            Frame::Chunk(c) => {
                buf.push(T_CHUNK);
                put_u64(buf, c.id);
                put_u32(buf, c.seq);
                put_u32(buf, c.chunk_base);
                put_instances(buf, &c.instances);
            }
            Frame::StreamEnd(e) => {
                buf.push(T_STREAM_END);
                put_u64(buf, e.id);
                put_u32(buf, e.chunks);
                put_u32(buf, e.instance_base);
                put_u64(buf, e.sampled_edges);
            }
            Frame::Mutate { id, edits } => {
                buf.push(T_MUTATE);
                put_u64(buf, *id);
                put_u32(buf, edits.len() as u32);
                for e in edits {
                    match *e {
                        EdgeEdit::Insert { src, dst, weight } => {
                            buf.push(0);
                            put_u32(buf, src);
                            put_u32(buf, dst);
                            put_u32(buf, weight.to_bits());
                        }
                        EdgeEdit::Delete { src, dst } => {
                            buf.push(1);
                            put_u32(buf, src);
                            put_u32(buf, dst);
                        }
                        EdgeEdit::Reweight { src, dst, weight } => {
                            buf.push(2);
                            put_u32(buf, src);
                            put_u32(buf, dst);
                            put_u32(buf, weight.to_bits());
                        }
                    }
                }
            }
            Frame::MutateAck { id, epoch, overlay_vertices } => {
                buf.push(T_MUTATE_ACK);
                put_u64(buf, *id);
                put_u64(buf, *epoch);
                put_u64(buf, *overlay_vertices);
            }
            Frame::Compact { id } => {
                buf.push(T_COMPACT);
                put_u64(buf, *id);
            }
            Frame::CompactAck { id, folded } => {
                buf.push(T_COMPACT_ACK);
                put_u64(buf, *id);
                put_u64(buf, *folded);
            }
            Frame::Stats { id } => {
                buf.push(T_STATS);
                put_u64(buf, *id);
            }
            Frame::StatsAck { id, text } => {
                buf.push(T_STATS_ACK);
                put_u64(buf, *id);
                put_str(buf, text);
            }
            Frame::Subscribe { id } => {
                buf.push(T_SUBSCRIBE);
                put_u64(buf, *id);
            }
            Frame::Event(e) => {
                buf.push(T_EVENT);
                put_u64(buf, e.request_id);
                put_str(buf, &e.tenant);
                buf.push(match e.kind {
                    EventKind::Completed => 0,
                    EventKind::Expired => 1,
                    EventKind::Failed => 2,
                });
                put_u64(buf, e.sampled_edges);
                put_u32(buf, e.instances);
            }
            Frame::Error(e) => {
                buf.push(T_ERROR);
                put_u64(buf, e.id);
                put_u16(buf, e.code as u16);
                put_u64(buf, e.retry_after_us);
                put_str(buf, &e.message);
            }
            Frame::Goodbye => {
                buf.push(T_GOODBYE);
            }
        }
        let len = (buf.len() - start - 4) as u32;
        buf[start..start + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// Encodes into a fresh buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }

    /// Decodes one frame body (type byte + payload, no length prefix).
    pub fn decode(body: &[u8]) -> Result<Frame, WireError> {
        let (&ty, payload) = body.split_first().ok_or(WireError::EmptyFrame)?;
        let mut r = Reader { buf: payload, pos: 0 };
        let frame = match ty {
            T_HELLO => {
                let magic = r.u32()?;
                if magic != MAGIC {
                    return Err(WireError::BadMagic(magic));
                }
                let version = r.u16()?;
                let tenant = r.string()?;
                Frame::Hello { version, tenant }
            }
            T_HELLO_ACK => Frame::HelloAck { version: r.u16()? },
            T_SAMPLE => {
                let id = r.u64()?;
                let algo = r.algo()?;
                let rng_seed = r.u64()?;
                let deadline_us = r.opt_u64()?;
                let stream_chunk = r.u32()?;
                let n = r.u32()? as usize;
                let mut seeds = Vec::with_capacity(r.bounded(n, 4)?);
                for _ in 0..n {
                    seeds.push(r.u32()?);
                }
                Frame::Sample(SampleFrame { id, algo, seeds, rng_seed, deadline_us, stream_chunk })
            }
            T_RESPONSE => {
                let id = r.u64()?;
                let instance_base = r.u32()?;
                let batch_requests = r.u64()?;
                let batch_instances = r.u64()?;
                let queue_wait_us = r.u64()?;
                let sampled_edges = r.u64()?;
                let instances = r.instances()?;
                Frame::Response(ResponseFrame {
                    id,
                    instance_base,
                    batch_requests,
                    batch_instances,
                    queue_wait_us,
                    sampled_edges,
                    instances,
                })
            }
            T_CHUNK => {
                let id = r.u64()?;
                let seq = r.u32()?;
                let chunk_base = r.u32()?;
                let instances = r.instances()?;
                Frame::Chunk(ChunkFrame { id, seq, chunk_base, instances })
            }
            T_STREAM_END => Frame::StreamEnd(StreamEndFrame {
                id: r.u64()?,
                chunks: r.u32()?,
                instance_base: r.u32()?,
                sampled_edges: r.u64()?,
            }),
            T_MUTATE => {
                let id = r.u64()?;
                let n = r.u32()? as usize;
                let mut edits = Vec::with_capacity(r.bounded(n, 9)?);
                for _ in 0..n {
                    let tag = r.u8()?;
                    edits.push(match tag {
                        0 => {
                            let src = r.u32()?;
                            let dst = r.u32()?;
                            let weight = f32::from_bits(r.u32()?);
                            EdgeEdit::Insert { src, dst, weight }
                        }
                        1 => EdgeEdit::Delete { src: r.u32()?, dst: r.u32()? },
                        2 => {
                            let src = r.u32()?;
                            let dst = r.u32()?;
                            let weight = f32::from_bits(r.u32()?);
                            EdgeEdit::Reweight { src, dst, weight }
                        }
                        other => {
                            return Err(WireError::BadTag {
                                field: "edit kind",
                                value: other as u64,
                            })
                        }
                    });
                }
                Frame::Mutate { id, edits }
            }
            T_MUTATE_ACK => {
                Frame::MutateAck { id: r.u64()?, epoch: r.u64()?, overlay_vertices: r.u64()? }
            }
            T_COMPACT => Frame::Compact { id: r.u64()? },
            T_COMPACT_ACK => Frame::CompactAck { id: r.u64()?, folded: r.u64()? },
            T_STATS => Frame::Stats { id: r.u64()? },
            T_STATS_ACK => Frame::StatsAck { id: r.u64()?, text: r.long_string()? },
            T_SUBSCRIBE => Frame::Subscribe { id: r.u64()? },
            T_EVENT => {
                let request_id = r.u64()?;
                let tenant = r.string()?;
                let kind = match r.u8()? {
                    0 => EventKind::Completed,
                    1 => EventKind::Expired,
                    2 => EventKind::Failed,
                    other => {
                        return Err(WireError::BadTag { field: "event kind", value: other as u64 })
                    }
                };
                let sampled_edges = r.u64()?;
                let instances = r.u32()?;
                Frame::Event(EventFrame { request_id, tenant, kind, sampled_edges, instances })
            }
            T_ERROR => {
                let id = r.u64()?;
                let code_raw = r.u16()?;
                let code = ErrorCode::from_u16(code_raw)
                    .ok_or(WireError::BadTag { field: "error code", value: code_raw as u64 })?;
                let retry_after_us = r.u64()?;
                let message = r.string()?;
                Frame::Error(ErrorFrame { id, code, retry_after_us, message })
            }
            T_GOODBYE => Frame::Goodbye,
            other => return Err(WireError::UnknownFrameType(other)),
        };
        if r.pos != r.buf.len() {
            return Err(WireError::TrailingBytes { extra: r.buf.len() - r.pos });
        }
        Ok(frame)
    }
}

/// Bounds-checked little-endian reader over a frame payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn opt_u32(&mut self) -> Result<Option<u32>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            _ => Ok(Some(self.u32()?)),
        }
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            _ => Ok(Some(self.u64()?)),
        }
    }

    fn opt_f64(&mut self) -> Result<Option<f64>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            _ => Ok(Some(f64::from_bits(self.u64()?))),
        }
    }

    /// Caps a declared element count by the bytes actually remaining
    /// (`elem_size` bytes minimum per element), so a hostile length
    /// cannot drive a huge allocation before the decode fails.
    fn bounded(&self, count: usize, elem_size: usize) -> Result<usize, WireError> {
        let remaining = self.buf.len() - self.pos;
        if count.saturating_mul(elem_size.max(1)) > remaining.saturating_mul(9) {
            // Even a 1-byte-per-element encoding can't satisfy this
            // count (factor 9 covers the largest variable elements).
            return Err(WireError::Truncated);
        }
        Ok(count.min(remaining))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let n = self.u32()?;
        if n > MAX_STRING_LEN {
            return Err(WireError::StringTooLong(n));
        }
        let bytes = self.take(n as usize)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    /// A string bounded only by the frame itself (metrics text).
    fn long_string(&mut self) -> Result<String, WireError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    fn algo(&mut self) -> Result<WireAlgo, WireError> {
        Ok(WireAlgo {
            name: self.string()?,
            depth: self.opt_u32()?,
            neighbor_size: self.opt_u32()?,
            pf: self.opt_f64()?,
            p: self.opt_f64()?,
            q: self.opt_f64()?,
            p_jump: self.opt_f64()?,
            p_restart: self.opt_f64()?,
        })
    }

    fn instances(&mut self) -> Result<Vec<Vec<(u32, u32)>>, WireError> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(self.bounded(n, 4)?);
        for _ in 0..n {
            let m = self.u32()? as usize;
            let mut inst = Vec::with_capacity(self.bounded(m, 8)?);
            for _ in 0..m {
                let v = self.u32()?;
                let u = self.u32()?;
                inst.push((v, u));
            }
            out.push(inst);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------
// Stream I/O
// ---------------------------------------------------------------------

/// Writes one frame to `w` (no flush; callers flush per logical reply).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    w.write_all(&frame.to_bytes())
}

/// Reads one frame from `r`, enforcing `max_len` on the declared frame
/// length before allocating.
pub fn read_frame_limited(r: &mut impl Read, max_len: u32) -> Result<Frame, RecvError> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len == 0 {
        return Err(WireError::EmptyFrame.into());
    }
    if len > max_len {
        return Err(WireError::FrameTooLarge { len }.into());
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(Frame::decode(&body)?)
}

/// Reads one frame with the default [`MAX_FRAME_LEN`] bound.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, RecvError> {
    read_frame_limited(r, MAX_FRAME_LEN)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        let bytes = frame.to_bytes();
        let mut cursor = std::io::Cursor::new(&bytes);
        let back = read_frame(&mut cursor).expect("decode");
        assert_eq!(back, frame);
        assert_eq!(cursor.position() as usize, bytes.len(), "whole frame consumed");
    }

    #[test]
    fn every_frame_kind_round_trips() {
        round_trip(Frame::Hello { version: WIRE_VERSION, tenant: "acme".into() });
        round_trip(Frame::HelloAck { version: WIRE_VERSION });
        round_trip(Frame::Sample(SampleFrame {
            id: 7,
            algo: WireAlgo { p: Some(0.5), ..WireAlgo::by_name("node2vec").with_depth(12) },
            seeds: vec![0, 3, 9],
            rng_seed: 42,
            deadline_us: Some(1_000_000),
            stream_chunk: 2,
        }));
        round_trip(Frame::Response(ResponseFrame {
            id: 7,
            instance_base: 3,
            batch_requests: 2,
            batch_instances: 5,
            queue_wait_us: 120,
            sampled_edges: 4,
            instances: vec![vec![(0, 1), (1, 2)], vec![], vec![(5, 6), (6, 5)]],
        }));
        round_trip(Frame::Chunk(ChunkFrame {
            id: 7,
            seq: 1,
            chunk_base: 8,
            instances: vec![vec![(1, 2)]],
        }));
        round_trip(Frame::StreamEnd(StreamEndFrame {
            id: 7,
            chunks: 2,
            instance_base: 3,
            sampled_edges: 9,
        }));
        round_trip(Frame::Mutate {
            id: 9,
            edits: vec![
                EdgeEdit::Insert { src: 1, dst: 2, weight: 1.5 },
                EdgeEdit::Delete { src: 2, dst: 1 },
                EdgeEdit::Reweight { src: 0, dst: 3, weight: 0.25 },
            ],
        });
        round_trip(Frame::MutateAck { id: 9, epoch: 3, overlay_vertices: 2 });
        round_trip(Frame::Compact { id: 10 });
        round_trip(Frame::CompactAck { id: 10, folded: 5 });
        round_trip(Frame::Stats { id: 11 });
        round_trip(Frame::StatsAck { id: 11, text: "# HELP x\nx 1\n".into() });
        round_trip(Frame::Subscribe { id: 12 });
        round_trip(Frame::Event(EventFrame {
            request_id: 4,
            tenant: "acme".into(),
            kind: EventKind::Completed,
            sampled_edges: 40,
            instances: 4,
        }));
        round_trip(Frame::Error(ErrorFrame {
            id: 7,
            code: ErrorCode::QueueFull,
            retry_after_us: 2000,
            message: "queue full".into(),
        }));
        round_trip(Frame::Goodbye);
    }

    #[test]
    fn truncation_is_typed_never_panicking() {
        let frame = Frame::Sample(SampleFrame {
            id: 1,
            algo: WireAlgo::by_name("biased-walk"),
            seeds: vec![1, 2, 3],
            rng_seed: 1,
            deadline_us: None,
            stream_chunk: 0,
        });
        let bytes = frame.to_bytes();
        // Every proper prefix of the body fails with a typed error.
        for cut in 1..bytes.len() - 1 {
            let body = &bytes[4..cut.max(5)];
            if body.is_empty() {
                continue;
            }
            let res = Frame::decode(body);
            assert!(res.is_err(), "prefix of {cut} bytes decoded: {res:?}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = Frame::Goodbye.to_bytes();
        bytes.extend_from_slice(&[0, 0]);
        // Patch the length to cover the extra bytes.
        let len = (bytes.len() - 4) as u32;
        bytes[0..4].copy_from_slice(&len.to_le_bytes());
        let err = Frame::decode(&bytes[4..]).unwrap_err();
        assert_eq!(err, WireError::TrailingBytes { extra: 2 });
    }

    #[test]
    fn unknown_frame_type_and_bad_magic() {
        assert_eq!(Frame::decode(&[0x6A]), Err(WireError::UnknownFrameType(0x6A)));
        let mut hello = Frame::Hello { version: 1, tenant: "t".into() }.to_bytes();
        hello[5] ^= 0xFF; // corrupt the magic (first payload byte)
        assert!(matches!(Frame::decode(&hello[4..]), Err(WireError::BadMagic(_))));
    }

    #[test]
    fn oversized_frame_rejected_before_allocation() {
        let mut bytes = Vec::new();
        put_u32(&mut bytes, MAX_FRAME_LEN + 1);
        bytes.push(T_GOODBYE);
        let err = read_frame(&mut std::io::Cursor::new(&bytes)).unwrap_err();
        assert!(matches!(err, RecvError::Wire(WireError::FrameTooLarge { .. })), "{err:?}");
    }

    #[test]
    fn hostile_count_fails_without_huge_allocation() {
        // A Sample frame declaring u32::MAX seeds with a 2-byte payload.
        let mut body = vec![T_SAMPLE];
        put_u64(&mut body, 1); // id
        put_str(&mut body, "simple-walk");
        body.extend_from_slice(&[0u8; 7]); // absent options
        put_u64(&mut body, 1); // rng_seed
        body.push(0); // no deadline
        put_u32(&mut body, 0); // stream_chunk
        put_u32(&mut body, u32::MAX); // seed count
        body.extend_from_slice(&[0, 0]);
        assert!(Frame::decode(&body).is_err());
    }
}
