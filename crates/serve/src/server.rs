//! The TCP front end: accept loop, per-connection protocol driver,
//! the weighted-fair dispatcher, and the `/metrics` side listener.
//!
//! Threading model (std networking only, no async runtime):
//!
//! - one **accept thread** per listener (wire + metrics), woken for
//!   shutdown by a self-connect;
//! - one **connection thread** per client, blocking on one request at a
//!   time (clients wanting concurrency open more connections — the
//!   protocol stays trivially ordered and the determinism contract has
//!   no interleaving to reason about);
//! - one **dispatcher thread** draining the [`FairScheduler`]: it
//!   releases the minimum-virtual-start job, runs its submission
//!   closure against the sampling service, and moves on; the owning
//!   connection thread waits for the tickets and reports completion
//!   back to the scheduler.
//!
//! A sampling request therefore crosses three admission gates in order:
//! the tenant's token buckets (socket boundary), the tenant's fair
//! queue (bounded, SFQ-ordered), and the service's global bounded
//! queue. Each gate sheds with a typed error frame carrying a
//! `retry_after` hint, so a client can distinguish "slow down"
//! ([`ErrorCode::TenantQuota`]) from "the whole service is saturated"
//! ([`ErrorCode::QueueFull`]).

use crate::metrics::{render, ServeMetrics};
use crate::notify::Notifier;
use crate::tenant::{AdmitError, FairScheduler, SchedulerConfig};
use crate::wire::{
    write_frame, ChunkFrame, ErrorCode, ErrorFrame, EventFrame, EventKind, Frame, RecvError,
    ResponseFrame, SampleFrame, StreamEndFrame, WireAlgo, WireError, MAX_FRAME_LEN, WIRE_VERSION,
};
use csaw_core::{AlgoSpec, FrontierMode};
use csaw_graph::EditError;
use csaw_service::{
    MutationRequest, SamplingRequest, SamplingResponse, SamplingService, ServiceError, Ticket,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Server knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Wire listener address (`"127.0.0.1:0"` picks a free port).
    pub addr: String,
    /// Metrics HTTP listener address; `None` disables the side listener
    /// (the wire `Stats` frame still serves the same text).
    pub metrics_addr: Option<String>,
    /// Tenant quotas and fair-share configuration.
    pub scheduler: SchedulerConfig,
    /// Per-frame length ceiling enforced before allocation.
    pub max_frame_len: u32,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            metrics_addr: Some("127.0.0.1:0".into()),
            scheduler: SchedulerConfig::default(),
            max_frame_len: MAX_FRAME_LEN,
        }
    }
}

/// A dispatched unit: the submission closure the dispatcher runs
/// against the service.
type DispatchJob = Box<dyn FnOnce(&SamplingService) + Send>;

struct ServerShared {
    service: Arc<SamplingService>,
    scheduler: FairScheduler<DispatchJob>,
    notifier: Notifier,
    shutdown: AtomicBool,
    connections: AtomicU64,
    bad_frames: AtomicU64,
    max_frame_len: u32,
}

impl ServerShared {
    fn metrics_page(&self) -> String {
        let snap = self.service.stats();
        let sheds = self.service.tenant_sheds();
        let tenants = self.scheduler.snapshot();
        let serve = ServeMetrics {
            connections: self.connections.load(Relaxed),
            bad_frames: self.bad_frames.load(Relaxed),
            events_published: self.notifier.published(),
            events_dropped: self.notifier.dropped(),
            subscribers: self.notifier.subscriber_count(),
        };
        render(&snap, &sheds, &tenants, &serve)
    }
}

/// A running server; dropping it without [`CsawServer::shutdown`]
/// leaves daemon threads running until process exit.
pub struct CsawServer {
    shared: Arc<ServerShared>,
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    accept_handle: Option<thread::JoinHandle<()>>,
    metrics_handle: Option<thread::JoinHandle<()>>,
    dispatch_handle: Option<thread::JoinHandle<()>>,
    conn_handles: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
}

impl CsawServer {
    /// Binds the listeners and starts serving `service`.
    pub fn start(service: SamplingService, config: ServeConfig) -> std::io::Result<CsawServer> {
        CsawServer::start_shared(Arc::new(service), config)
    }

    /// [`CsawServer::start`] over an already-shared service (callers
    /// that also submit in-process keep their own handle).
    pub fn start_shared(
        service: Arc<SamplingService>,
        config: ServeConfig,
    ) -> std::io::Result<CsawServer> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let metrics_listener = match &config.metrics_addr {
            Some(a) => Some(TcpListener::bind(a)?),
            None => None,
        };
        let metrics_addr = match &metrics_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };

        let shared = Arc::new(ServerShared {
            service,
            scheduler: FairScheduler::new(config.scheduler.clone()),
            notifier: Notifier::new(),
            shutdown: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            bad_frames: AtomicU64::new(0),
            max_frame_len: config.max_frame_len,
        });
        let conn_handles = Arc::new(Mutex::new(Vec::new()));

        let accept_handle = {
            let shared = Arc::clone(&shared);
            let handles = Arc::clone(&conn_handles);
            thread::Builder::new()
                .name("csaw-serve-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &handles))
                .expect("spawn accept thread")
        };
        let metrics_handle = metrics_listener.map(|listener| {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("csaw-serve-metrics".into())
                .spawn(move || metrics_loop(&listener, &shared))
                .expect("spawn metrics thread")
        });
        let dispatch_handle = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("csaw-serve-dispatch".into())
                .spawn(move || {
                    while let Some((_tenant, job)) = shared.scheduler.next() {
                        job(&shared.service);
                    }
                })
                .expect("spawn dispatcher")
        };

        Ok(CsawServer {
            shared,
            addr,
            metrics_addr,
            accept_handle: Some(accept_handle),
            metrics_handle: Some(metrics_handle).flatten(),
            dispatch_handle: Some(dispatch_handle),
            conn_handles,
        })
    }

    /// The wire listener's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The metrics listener's bound address, if enabled.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// The served sampling service (for in-process baselines and
    /// orderly [`SamplingService::shutdown`] after the server stops).
    pub fn service(&self) -> &Arc<SamplingService> {
        &self.shared.service
    }

    /// Renders the metrics page in-process (what `/metrics` serves).
    pub fn metrics_page(&self) -> String {
        self.shared.metrics_page()
    }

    /// Stops accepting, drains queued work, joins every thread, and
    /// returns the shared service handle.
    pub fn shutdown(mut self) -> Arc<SamplingService> {
        self.stop();
        Arc::clone(&self.shared.service)
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Relaxed);
        self.shared.scheduler.shutdown();
        // Self-connect to wake the blocking accept calls.
        let _ = TcpStream::connect(self.addr);
        if let Some(m) = self.metrics_addr {
            let _ = TcpStream::connect(m);
        }
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        if let Some(h) = self.metrics_handle.take() {
            let _ = h.join();
        }
        for h in self.conn_handles.lock().expect("conn handles").drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.dispatch_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for CsawServer {
    fn drop(&mut self) {
        if self.accept_handle.is_some() {
            self.stop();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<ServerShared>,
    handles: &Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => continue,
        };
        if shared.shutdown.load(Relaxed) {
            return;
        }
        shared.connections.fetch_add(1, Relaxed);
        let shared = Arc::clone(shared);
        let handle = thread::Builder::new()
            .name("csaw-serve-conn".into())
            .spawn(move || {
                let _ = serve_connection(stream, &shared);
            })
            .expect("spawn connection thread");
        handles.lock().expect("conn handles").push(handle);
    }
}

/// Outcome of an interruptible frame read.
enum ReadOutcome {
    Frame(Frame),
    /// Clean EOF or shutdown while idle between frames.
    Closed,
}

/// Reads one frame, polling the shutdown flag while idle. A timeout
/// *mid-frame* keeps waiting (abandoning a half-read frame would lose
/// stream sync); shutdown mid-frame gives the peer up.
fn read_frame_interruptible(
    stream: &mut TcpStream,
    shared: &ServerShared,
) -> Result<ReadOutcome, RecvError> {
    let mut len_bytes = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match stream.read(&mut len_bytes[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(ReadOutcome::Closed);
                }
                return Err(RecvError::Io(std::io::ErrorKind::UnexpectedEof.into()));
            }
            Ok(n) => got += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Relaxed) {
                    return Ok(ReadOutcome::Closed);
                }
            }
            Err(e) => return Err(RecvError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_bytes);
    if len == 0 {
        return Err(WireError::EmptyFrame.into());
    }
    if len > shared.max_frame_len {
        return Err(WireError::FrameTooLarge { len }.into());
    }
    let mut body = vec![0u8; len as usize];
    let mut got = 0usize;
    while got < body.len() {
        match stream.read(&mut body[got..]) {
            Ok(0) => return Err(RecvError::Io(std::io::ErrorKind::UnexpectedEof.into())),
            Ok(n) => got += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Relaxed) {
                    return Ok(ReadOutcome::Closed);
                }
            }
            Err(e) => return Err(RecvError::Io(e)),
        }
    }
    Ok(ReadOutcome::Frame(Frame::decode(&body)?))
}

fn send(stream: &mut TcpStream, frame: &Frame) -> std::io::Result<()> {
    write_frame(stream, frame)?;
    stream.flush()
}

fn send_error(
    stream: &mut TcpStream,
    id: u64,
    code: ErrorCode,
    retry_after: Option<Duration>,
    message: String,
) -> std::io::Result<()> {
    send(
        stream,
        &Frame::Error(ErrorFrame {
            id,
            code,
            retry_after_us: retry_after
                .map_or(0, |d| d.as_micros().min(u128::from(u64::MAX)) as u64),
            message,
        }),
    )
}

fn service_error_parts(e: &ServiceError) -> (ErrorCode, Option<Duration>) {
    match e {
        ServiceError::Invalid(_) => (ErrorCode::Invalid, None),
        ServiceError::QueueFull { retry_after } => (ErrorCode::QueueFull, Some(*retry_after)),
        ServiceError::Expired => (ErrorCode::Expired, None),
        ServiceError::BatchFailed(_) => (ErrorCode::BatchFailed, None),
        ServiceError::ShuttingDown => (ErrorCode::ShuttingDown, None),
    }
}

fn edit_error_code(e: &EditError) -> ErrorCode {
    match e {
        EditError::VertexOutOfRange { .. } => ErrorCode::EditVertexOutOfRange,
        EditError::EdgeNotFound { .. } => ErrorCode::EditEdgeNotFound,
        EditError::WeightOnUnweighted { .. } => ErrorCode::EditWeightOnUnweighted,
        EditError::BadWeight { .. } => ErrorCode::EditBadWeight,
        EditError::ImmutableStore => ErrorCode::EditImmutableStore,
    }
}

fn algo_spec_of(wire: &WireAlgo) -> Result<AlgoSpec, String> {
    let mut spec = AlgoSpec::by_name(&wire.name).map_err(|e| e.to_string())?;
    if let Some(d) = wire.depth {
        spec = spec.with_depth(d as usize);
    }
    if let Some(ns) = wire.neighbor_size {
        spec = spec.with_neighbor_size(ns as usize);
    }
    spec.pf = wire.pf.or(spec.pf);
    spec.p = wire.p.or(spec.p);
    spec.q = wire.q.or(spec.q);
    spec.p_jump = wire.p_jump.or(spec.p_jump);
    spec.p_restart = wire.p_restart.or(spec.p_restart);
    Ok(spec)
}

fn serve_connection(mut stream: TcpStream, shared: &Arc<ServerShared>) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;

    // Handshake: the first frame must be a version-compatible Hello.
    let tenant = match read_frame_interruptible(&mut stream, shared) {
        Ok(ReadOutcome::Frame(Frame::Hello { version, tenant })) => {
            if version != WIRE_VERSION {
                let _ = send_error(
                    &mut stream,
                    0,
                    ErrorCode::VersionMismatch,
                    None,
                    format!("server speaks wire version {WIRE_VERSION}, client sent {version}"),
                );
                return Ok(());
            }
            send(&mut stream, &Frame::HelloAck { version: WIRE_VERSION })?;
            tenant
        }
        Ok(ReadOutcome::Frame(_)) => {
            shared.bad_frames.fetch_add(1, Relaxed);
            let _ = send_error(
                &mut stream,
                0,
                ErrorCode::BadFrame,
                None,
                "expected Hello as the first frame".into(),
            );
            return Ok(());
        }
        Ok(ReadOutcome::Closed) => return Ok(()),
        Err(e) => {
            shared.bad_frames.fetch_add(1, Relaxed);
            let _ = send_error(
                &mut stream,
                0,
                ErrorCode::VersionMismatch,
                None,
                format!("handshake failed: {e}"),
            );
            return Ok(());
        }
    };

    loop {
        let frame = match read_frame_interruptible(&mut stream, shared) {
            Ok(ReadOutcome::Frame(f)) => f,
            Ok(ReadOutcome::Closed) => return Ok(()),
            Err(RecvError::Io(e)) => return Err(e),
            Err(RecvError::Wire(e)) => {
                shared.bad_frames.fetch_add(1, Relaxed);
                let _ = send_error(
                    &mut stream,
                    0,
                    ErrorCode::BadFrame,
                    None,
                    format!("bad frame: {e}"),
                );
                return Ok(());
            }
        };
        match frame {
            Frame::Sample(sample) => handle_sample(&mut stream, shared, &tenant, sample)?,
            Frame::Mutate { id, edits } => {
                match shared.service.mutate(MutationRequest::new(edits)) {
                    Ok(resp) => send(
                        &mut stream,
                        &Frame::MutateAck {
                            id,
                            epoch: resp.epoch,
                            overlay_vertices: resp.overlay_vertices as u64,
                        },
                    )?,
                    Err(e) => {
                        send_error(&mut stream, id, edit_error_code(&e), None, e.to_string())?
                    }
                }
            }
            Frame::Compact { id } => {
                let folded = shared.service.compact() as u64;
                send(&mut stream, &Frame::CompactAck { id, folded })?;
            }
            Frame::Stats { id } => {
                let text = shared.metrics_page();
                send(&mut stream, &Frame::StatsAck { id, text })?;
            }
            Frame::Subscribe { id: _ } => return pump_events(&mut stream, shared),
            Frame::Goodbye => return Ok(()),
            other => {
                shared.bad_frames.fetch_add(1, Relaxed);
                send_error(
                    &mut stream,
                    0,
                    ErrorCode::BadFrame,
                    None,
                    format!("server cannot act on {other:?}"),
                )?;
            }
        }
    }
}

/// Drives one sampling request end to end: admission through the
/// tenant gates, dispatch, result (or chunk stream), completion event.
fn handle_sample(
    stream: &mut TcpStream,
    shared: &Arc<ServerShared>,
    tenant: &str,
    sample: SampleFrame,
) -> std::io::Result<()> {
    let wire_id = sample.id;
    let spec = match algo_spec_of(&sample.algo) {
        Ok(s) => s,
        Err(msg) => return send_error(stream, wire_id, ErrorCode::Invalid, None, msg),
    };
    // Pool-replacement algorithms (MDRW) seed ONE instance with the
    // whole list: splitting them would change the sample, so streaming
    // degrades to a single chunk.
    let splittable = match spec.build() {
        Ok(algo) => !matches!(algo.config().frontier, FrontierMode::BiasedReplace),
        Err(e) => return send_error(stream, wire_id, ErrorCode::Invalid, None, e.to_string()),
    };
    let streaming = sample.stream_chunk > 0;
    let cost = if splittable { sample.seeds.len().max(1) as f64 } else { 1.0 };
    let bytes = (sample.seeds.len() * 4 + 96) as f64;
    let chunk = sample.stream_chunk as usize;
    let seed_chunks: Vec<Vec<u32>> = if chunk > 0 && splittable && !sample.seeds.is_empty() {
        sample.seeds.chunks(chunk).map(<[u32]>::to_vec).collect()
    } else {
        vec![sample.seeds]
    };

    let deadline = sample.deadline_us.map(Duration::from_micros);
    let reqs: Vec<SamplingRequest> = seed_chunks
        .into_iter()
        .map(|seeds| {
            let mut r = SamplingRequest::new(spec, seeds)
                .with_rng_seed(sample.rng_seed)
                .with_tenant(tenant);
            r.deadline = deadline;
            r
        })
        .collect();

    let (tx, rx) = mpsc::sync_channel::<Result<Vec<Ticket>, ServiceError>>(1);
    let job: DispatchJob = Box::new(move |service: &SamplingService| {
        let _ = tx.send(service.submit_group(reqs));
    });
    if let Err(e) = shared.scheduler.admit(tenant, cost, bytes, job) {
        let (code, retry, msg) = match e {
            AdmitError::Quota { retry_after } => (
                ErrorCode::TenantQuota,
                Some(retry_after),
                format!("tenant '{tenant}' quota exhausted"),
            ),
            AdmitError::QueueFull { retry_after } => (
                ErrorCode::TenantQueueFull,
                Some(retry_after),
                format!("tenant '{tenant}' fair queue full"),
            ),
            AdmitError::ShuttingDown => {
                (ErrorCode::ShuttingDown, None, "server shutting down".into())
            }
        };
        return send_error(stream, wire_id, code, retry, msg);
    }

    // The job is in the fair queue; the dispatcher will run it. From
    // here on the scheduler MUST be told about completion exactly once.
    let submit_result = rx.recv().unwrap_or(Err(ServiceError::ShuttingDown));
    let result = match submit_result {
        Ok(tickets) => stream_tickets(stream, tenant, wire_id, streaming, tickets),
        Err(e) => {
            let (code, retry) = service_error_parts(&e);
            send_error(stream, wire_id, code, retry, e.to_string()).map(|()| None)
        }
    };
    shared.scheduler.complete(tenant);
    result.map(|event| {
        if let Some(event) = event {
            shared.notifier.publish(&event);
        }
    })
}

/// Waits on the group's tickets in admission order, writing chunks (or
/// the single response) as they complete. Returns the completion event
/// to publish, or `None` when the outcome was already reported as an
/// error mid-stream.
fn stream_tickets(
    stream: &mut TcpStream,
    tenant: &str,
    wire_id: u64,
    streaming: bool,
    tickets: Vec<Ticket>,
) -> std::io::Result<Option<EventFrame>> {
    let first_request_id = tickets.first().map_or(wire_id, Ticket::request_id);
    let mut stream_base: Option<u32> = None;
    let mut total_edges = 0u64;
    let mut total_instances = 0u32;
    let mut chunks = 0u32;
    let mut responses: Vec<SamplingResponse> = Vec::new();

    for ticket in tickets {
        match ticket.wait() {
            Ok(resp) => {
                stream_base.get_or_insert(resp.instance_base);
                total_edges += resp.stats.sampled_edges;
                total_instances += resp.output.instances.len() as u32;
                if streaming {
                    send(
                        stream,
                        &Frame::Chunk(ChunkFrame {
                            id: wire_id,
                            seq: chunks,
                            chunk_base: resp.instance_base,
                            instances: resp.output.instances,
                        }),
                    )?;
                    chunks += 1;
                } else {
                    responses.push(resp);
                }
            }
            Err(e) => {
                let (code, retry) = service_error_parts(&e);
                send_error(stream, wire_id, code, retry, e.to_string())?;
                let kind = match e {
                    ServiceError::Expired => EventKind::Expired,
                    _ => EventKind::Failed,
                };
                return Ok(Some(EventFrame {
                    request_id: first_request_id,
                    tenant: tenant.to_string(),
                    kind,
                    sampled_edges: total_edges,
                    instances: total_instances,
                }));
            }
        }
    }

    if streaming {
        send(
            stream,
            &Frame::StreamEnd(StreamEndFrame {
                id: wire_id,
                chunks,
                instance_base: stream_base.unwrap_or(0),
                sampled_edges: total_edges,
            }),
        )?;
    } else {
        let resp = responses.pop().expect("non-streaming group has one ticket");
        send(
            stream,
            &Frame::Response(ResponseFrame {
                id: wire_id,
                instance_base: resp.instance_base,
                batch_requests: resp.stats.batch_requests as u64,
                batch_instances: resp.stats.batch_instances as u64,
                queue_wait_us: resp.stats.queue_wait.as_micros().min(u128::from(u64::MAX)) as u64,
                sampled_edges: resp.stats.sampled_edges,
                instances: resp.output.instances,
            }),
        )?;
    }
    Ok(Some(EventFrame {
        request_id: first_request_id,
        tenant: tenant.to_string(),
        kind: EventKind::Completed,
        sampled_edges: total_edges,
        instances: total_instances,
    }))
}

/// Turns the connection into a dedicated event receiver until the
/// client disconnects or the server shuts down.
fn pump_events(stream: &mut TcpStream, shared: &Arc<ServerShared>) -> std::io::Result<()> {
    let rx = shared.notifier.subscribe();
    loop {
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(event) => send(stream, &Frame::Event(event))?,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shared.shutdown.load(Relaxed) {
                    let _ = send(stream, &Frame::Goodbye);
                    return Ok(());
                }
                // Probe for a client Goodbye / disconnect without
                // blocking the event pump: one non-blocking read.
                let mut probe = [0u8; 1];
                match stream.peek(&mut probe) {
                    Ok(0) => return Ok(()), // peer closed
                    Ok(_) => {
                        // The client sent bytes; the only frame a
                        // subscribed connection may send is Goodbye, so
                        // any traffic ends the subscription.
                        return Ok(());
                    }
                    Err(ref e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut => {}
                    Err(_) => return Ok(()),
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return Ok(()),
        }
    }
}

/// Minimal HTTP/1.1 responder for `GET /metrics` (Prometheus text
/// exposition format 0.0.4); anything else gets a 404.
fn metrics_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    loop {
        let mut stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => continue,
        };
        if shared.shutdown.load(Relaxed) {
            return;
        }
        stream.set_read_timeout(Some(Duration::from_millis(500))).ok();
        let mut head = [0u8; 1024];
        let n = stream.read(&mut head).unwrap_or(0);
        let request = String::from_utf8_lossy(&head[..n]);
        let line = request.lines().next().unwrap_or("");
        let response = if line.starts_with("GET /metrics") {
            let body = shared.metrics_page();
            format!(
                "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n{}",
                body.len(),
                body
            )
        } else {
            let body = "not found; try GET /metrics\n";
            format!(
                "HTTP/1.1 404 Not Found\r\nContent-Type: text/plain\r\nContent-Length: {}\r\n\
                 Connection: close\r\n\r\n{}",
                body.len(),
                body
            )
        };
        let _ = stream.write_all(response.as_bytes());
        let _ = stream.flush();
    }
}
