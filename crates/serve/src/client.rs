//! A blocking wire client.
//!
//! [`Client::connect`] performs the versioned handshake; each method
//! then drives one request/response exchange. The client is
//! deliberately synchronous — one request at a time per connection,
//! matching the server's per-connection protocol driver — so callers
//! wanting concurrency open more connections.

use crate::wire::{
    read_frame_limited, write_frame, ChunkFrame, ErrorFrame, EventFrame, Frame, RecvError,
    ResponseFrame, SampleFrame, StreamEndFrame, WireAlgo, MAX_FRAME_LEN, WIRE_VERSION,
};
use csaw_graph::EdgeEdit;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The bytes arrived but did not decode.
    Wire(crate::wire::WireError),
    /// The server answered with a typed error frame.
    Server(ErrorFrame),
    /// The server answered with a frame the exchange did not expect.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Wire(e) => write!(f, "wire: {e}"),
            ClientError::Server(e) => {
                write!(f, "server error {:?}: {}", e.code, e.message)
            }
            ClientError::Protocol(msg) => write!(f, "protocol: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<RecvError> for ClientError {
    fn from(e: RecvError) -> ClientError {
        match e {
            RecvError::Io(e) => ClientError::Io(e),
            RecvError::Wire(e) => ClientError::Wire(e),
        }
    }
}

/// A streamed response, reassembled.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamedResponse {
    /// Instance base of the whole stream (what a solo run needs).
    pub instance_base: u32,
    /// Chunks in arrival order (sequence numbers are consecutive).
    pub chunks: Vec<ChunkFrame>,
    /// The stream terminator.
    pub end: StreamEndFrame,
}

impl StreamedResponse {
    /// Concatenates the chunks back into one instance list — the
    /// determinism contract makes this bit-identical to the unstreamed
    /// response for the same request.
    pub fn reassemble(&self) -> Vec<Vec<(u32, u32)>> {
        let mut out = Vec::new();
        for c in &self.chunks {
            out.extend(c.instances.iter().cloned());
        }
        out
    }
}

/// A connected, handshaken wire client.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects and performs the handshake under `tenant`'s identity.
    pub fn connect(addr: impl ToSocketAddrs, tenant: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut client = Client { stream, next_id: 1 };
        client.send(&Frame::Hello { version: WIRE_VERSION, tenant: tenant.to_string() })?;
        match client.recv()? {
            Frame::HelloAck { .. } => Ok(client),
            Frame::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!("expected HelloAck, got {other:?}"))),
        }
    }

    fn send(&mut self, frame: &Frame) -> Result<(), ClientError> {
        write_frame(&mut self.stream, frame)?;
        use std::io::Write as _;
        self.stream.flush()?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Frame, ClientError> {
        Ok(read_frame_limited(&mut self.stream, MAX_FRAME_LEN)?)
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Runs one sampling request and waits for the full response.
    pub fn sample(
        &mut self,
        algo: WireAlgo,
        seeds: Vec<u32>,
        rng_seed: u64,
        deadline: Option<Duration>,
    ) -> Result<ResponseFrame, ClientError> {
        let id = self.fresh_id();
        self.send(&Frame::Sample(SampleFrame {
            id,
            algo,
            seeds,
            rng_seed,
            deadline_us: deadline.map(|d| d.as_micros().min(u128::from(u64::MAX)) as u64),
            stream_chunk: 0,
        }))?;
        match self.recv()? {
            Frame::Response(r) if r.id == id => Ok(r),
            Frame::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!("expected Response, got {other:?}"))),
        }
    }

    /// Runs one sampling request in streaming mode (`chunk_seeds` seeds
    /// per chunk), invoking `on_chunk` as each chunk arrives and
    /// returning the reassembled stream.
    pub fn sample_streamed(
        &mut self,
        algo: WireAlgo,
        seeds: Vec<u32>,
        rng_seed: u64,
        chunk_seeds: u32,
        mut on_chunk: impl FnMut(&ChunkFrame),
    ) -> Result<StreamedResponse, ClientError> {
        let id = self.fresh_id();
        self.send(&Frame::Sample(SampleFrame {
            id,
            algo,
            seeds,
            rng_seed,
            deadline_us: None,
            stream_chunk: chunk_seeds.max(1),
        }))?;
        let mut chunks = Vec::new();
        loop {
            match self.recv()? {
                Frame::Chunk(c) if c.id == id => {
                    if c.seq as usize != chunks.len() {
                        return Err(ClientError::Protocol(format!(
                            "chunk seq {} out of order (expected {})",
                            c.seq,
                            chunks.len()
                        )));
                    }
                    on_chunk(&c);
                    chunks.push(c);
                }
                Frame::StreamEnd(end) if end.id == id => {
                    if end.chunks as usize != chunks.len() {
                        return Err(ClientError::Protocol(format!(
                            "stream declared {} chunks, received {}",
                            end.chunks,
                            chunks.len()
                        )));
                    }
                    return Ok(StreamedResponse { instance_base: end.instance_base, chunks, end });
                }
                Frame::Error(e) => return Err(ClientError::Server(e)),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected Chunk/StreamEnd, got {other:?}"
                    )))
                }
            }
        }
    }

    /// Applies a batch of graph edits atomically.
    pub fn mutate(&mut self, edits: Vec<EdgeEdit>) -> Result<(u64, u64), ClientError> {
        let id = self.fresh_id();
        self.send(&Frame::Mutate { id, edits })?;
        match self.recv()? {
            Frame::MutateAck { id: rid, epoch, overlay_vertices } if rid == id => {
                Ok((epoch, overlay_vertices))
            }
            Frame::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!("expected MutateAck, got {other:?}"))),
        }
    }

    /// Folds the delta overlay; returns how many vertices folded.
    pub fn compact(&mut self) -> Result<u64, ClientError> {
        let id = self.fresh_id();
        self.send(&Frame::Compact { id })?;
        match self.recv()? {
            Frame::CompactAck { id: rid, folded } if rid == id => Ok(folded),
            Frame::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!("expected CompactAck, got {other:?}"))),
        }
    }

    /// Fetches the server's metrics page over the wire.
    pub fn stats_text(&mut self) -> Result<String, ClientError> {
        let id = self.fresh_id();
        self.send(&Frame::Stats { id })?;
        match self.recv()? {
            Frame::StatsAck { id: rid, text } if rid == id => Ok(text),
            Frame::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!("expected StatsAck, got {other:?}"))),
        }
    }

    /// Switches this connection into event-subscription mode.
    pub fn subscribe(mut self) -> Result<EventStream, ClientError> {
        let id = self.fresh_id();
        self.send(&Frame::Subscribe { id })?;
        Ok(EventStream { stream: self.stream })
    }

    /// Sends a polite Goodbye and closes.
    pub fn goodbye(mut self) -> Result<(), ClientError> {
        self.send(&Frame::Goodbye)
    }
}

/// A connection dedicated to receiving completion events.
pub struct EventStream {
    stream: TcpStream,
}

impl EventStream {
    /// Blocks for the next event; `Ok(None)` on orderly server close.
    pub fn next_event(&mut self) -> Result<Option<EventFrame>, ClientError> {
        match read_frame_limited(&mut self.stream, MAX_FRAME_LEN) {
            Ok(Frame::Event(e)) => Ok(Some(e)),
            Ok(Frame::Goodbye) => Ok(None),
            Ok(other) => Err(ClientError::Protocol(format!("expected Event, got {other:?}"))),
            Err(RecvError::Io(ref e)) if e.kind() == std::io::ErrorKind::UnexpectedEof => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Bounds how long [`EventStream::next_event`] may block.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }
}
