//! Multi-tenant admission and weighted-fair dispatch.
//!
//! Two mechanisms stack at the socket boundary, *in front of* the
//! sampling service's global bounded queue:
//!
//! 1. **Token buckets** ([`TenantQuota::rate`]/[`TenantQuota::burst`]
//!    for requests, `byte_rate`/`byte_burst` for payload bytes) shed a
//!    tenant's excess offered load immediately with a typed
//!    `TenantQuota` error and a `retry_after` hint — one greedy client
//!    cannot even *enqueue* enough work to starve others.
//! 2. **Start-time fair queuing (SFQ)** orders what survives the
//!    buckets. Each tenant owns a FIFO of pending jobs tagged with
//!    virtual start/finish times: `start = max(global_vtime,
//!    tenant_finish)`, `finish = start + cost / weight`. The dispatcher
//!    always releases the pending job with the minimum start tag and
//!    advances the global virtual clock to that tag. Backlogged tenants
//!    therefore share dispatch capacity in proportion to their weights,
//!    while an idle tenant's clock never builds up credit it could
//!    later burst with (start tags are clamped to the global clock).
//!
//! Dispatch concurrency is capped ([`SchedulerConfig::max_inflight`]):
//! the fair queue only matters while there is contention, and the cap
//! is what creates a well-defined "next slot" for the SFQ ordering to
//! arbitrate.

use std::collections::HashMap;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Admission and fair-share knobs for one tenant.
#[derive(Debug, Clone, Copy)]
pub struct TenantQuota {
    /// Fair-share weight: a weight-3 tenant gets 3× the dispatch slots
    /// of a weight-1 tenant while both are backlogged.
    pub weight: u32,
    /// Request tokens refilled per second.
    pub rate: f64,
    /// Request-token bucket capacity (burst size).
    pub burst: f64,
    /// Payload-byte tokens refilled per second.
    pub byte_rate: f64,
    /// Payload-byte bucket capacity.
    pub byte_burst: f64,
    /// Pending jobs this tenant may hold in its fair queue; admissions
    /// beyond it are shed with per-tenant backpressure.
    pub max_queued: usize,
}

impl Default for TenantQuota {
    fn default() -> TenantQuota {
        TenantQuota {
            weight: 1,
            rate: 1000.0,
            burst: 2000.0,
            byte_rate: 64.0 * 1024.0 * 1024.0,
            byte_burst: 128.0 * 1024.0 * 1024.0,
            max_queued: 64,
        }
    }
}

/// Scheduler-wide knobs.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Jobs dispatched into the service but not yet completed. `1`
    /// serializes dispatch (strictest fairness); larger values trade
    /// fairness granularity for pipeline depth.
    pub max_inflight: usize,
    /// Quota applied to tenants with no explicit entry.
    pub default_quota: TenantQuota,
    /// Per-tenant quota overrides.
    pub tenant_quotas: HashMap<String, TenantQuota>,
}

impl Default for SchedulerConfig {
    fn default() -> SchedulerConfig {
        SchedulerConfig {
            max_inflight: 4,
            default_quota: TenantQuota::default(),
            tenant_quotas: HashMap::new(),
        }
    }
}

/// Why admission refused a job at the socket boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// A token bucket (request or byte) is empty; retry after the hint.
    Quota {
        /// When the bucket will hold enough tokens again.
        retry_after: Duration,
    },
    /// The tenant's fair queue is at `max_queued`.
    QueueFull {
        /// Suggested backoff (one dispatch interval estimate).
        retry_after: Duration,
    },
    /// The scheduler is shutting down.
    ShuttingDown,
}

/// Classic token bucket over a monotonic clock.
#[derive(Debug)]
struct TokenBucket {
    tokens: f64,
    capacity: f64,
    rate: f64,
    last: Instant,
}

impl TokenBucket {
    fn new(rate: f64, capacity: f64, now: Instant) -> TokenBucket {
        TokenBucket { tokens: capacity, capacity, rate, last: now }
    }

    /// Takes `n` tokens or reports how long until they exist.
    fn try_take(&mut self, n: f64, now: Instant) -> Result<(), Duration> {
        let elapsed = now.saturating_duration_since(self.last).as_secs_f64();
        self.tokens = (self.tokens + elapsed * self.rate).min(self.capacity);
        self.last = now;
        if self.tokens >= n {
            self.tokens -= n;
            Ok(())
        } else if self.rate <= 0.0 {
            Err(Duration::from_secs(3600))
        } else {
            Err(Duration::from_secs_f64((n - self.tokens) / self.rate))
        }
    }
}

/// Upper bounds of the queue-wait histogram, in microseconds; the last
/// bucket is `+Inf`.
pub const WAIT_BUCKETS_US: [u64; 6] = [100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// A cumulative latency histogram (Prometheus `le` semantics).
#[derive(Debug, Default, Clone)]
pub struct WaitHistogram {
    /// Observations at or below each of [`WAIT_BUCKETS_US`], plus the
    /// `+Inf` bucket at the end.
    pub buckets: [u64; WAIT_BUCKETS_US.len() + 1],
    /// Sum of all observations, microseconds.
    pub sum_us: u64,
    /// Total observations.
    pub count: u64,
}

impl WaitHistogram {
    fn observe(&mut self, wait: Duration) {
        let us = wait.as_micros().min(u128::from(u64::MAX)) as u64;
        for (i, &ub) in WAIT_BUCKETS_US.iter().enumerate() {
            if us <= ub {
                self.buckets[i] += 1;
            }
        }
        *self.buckets.last_mut().expect("inf bucket") += 1;
        self.sum_us += us;
        self.count += 1;
    }
}

/// Point-in-time per-tenant accounting, for the metrics plane.
#[derive(Debug, Clone)]
pub struct TenantSnapshot {
    /// Tenant label.
    pub tenant: String,
    /// Fair-share weight in effect.
    pub weight: u32,
    /// Jobs accepted into the fair queue.
    pub enqueued: u64,
    /// Jobs released to the service.
    pub dispatched: u64,
    /// Jobs whose completion was reported.
    pub completed: u64,
    /// Admissions shed by a token bucket.
    pub shed_quota: u64,
    /// Admissions shed by the per-tenant queue bound.
    pub shed_queue: u64,
    /// Jobs currently waiting in the fair queue.
    pub queued: usize,
    /// Time jobs spent waiting in the fair queue (enqueue → dispatch).
    pub wait: WaitHistogram,
}

/// One queued unit of work: the payload is opaque to the scheduler.
struct Job<T> {
    start_tag: f64,
    finish_tag: f64,
    enqueued: Instant,
    payload: T,
}

struct TenantState<T> {
    quota: TenantQuota,
    bucket: TokenBucket,
    byte_bucket: TokenBucket,
    queue: std::collections::VecDeque<Job<T>>,
    /// Finish tag of this tenant's most recently tagged job — the chain
    /// that spaces consecutive jobs `cost/weight` apart in virtual time.
    last_finish: f64,
    enqueued: u64,
    dispatched: u64,
    completed: u64,
    shed_quota: u64,
    shed_queue: u64,
    wait: WaitHistogram,
}

struct SchedState<T> {
    tenants: HashMap<String, TenantState<T>>,
    /// The global virtual clock: the start tag of the last dispatch.
    global_vtime: f64,
    queued_total: usize,
    inflight: usize,
    shutdown: bool,
}

/// The weighted-fair scheduler (see module docs). `T` is the dispatched
/// payload — the server queues closures, tests queue markers.
pub struct FairScheduler<T> {
    state: Mutex<SchedState<T>>,
    cv: Condvar,
    config: SchedulerConfig,
}

impl<T> FairScheduler<T> {
    /// An empty scheduler.
    pub fn new(config: SchedulerConfig) -> FairScheduler<T> {
        FairScheduler {
            state: Mutex::new(SchedState {
                tenants: HashMap::new(),
                global_vtime: 0.0,
                queued_total: 0,
                inflight: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
            config,
        }
    }

    fn quota_for(&self, tenant: &str) -> TenantQuota {
        self.config.tenant_quotas.get(tenant).copied().unwrap_or(self.config.default_quota)
    }

    /// Admits one job for `tenant`: charges the token buckets (`bytes`
    /// of payload), tags the job with SFQ virtual times, and queues it.
    /// `cost` is the job's fair-share cost (the server uses its instance
    /// count, so fairness is over *work*, not request count).
    pub fn admit(&self, tenant: &str, cost: f64, bytes: f64, payload: T) -> Result<(), AdmitError> {
        let now = Instant::now();
        let mut st = self.state.lock().expect("scheduler lock");
        if st.shutdown {
            return Err(AdmitError::ShuttingDown);
        }
        let global_vtime = st.global_vtime;
        let quota = self.quota_for(tenant);
        let ts = st.tenants.entry(tenant.to_string()).or_insert_with(|| TenantState {
            quota,
            bucket: TokenBucket::new(quota.rate, quota.burst, now),
            byte_bucket: TokenBucket::new(quota.byte_rate, quota.byte_burst, now),
            queue: std::collections::VecDeque::new(),
            last_finish: 0.0,
            enqueued: 0,
            dispatched: 0,
            completed: 0,
            shed_quota: 0,
            shed_queue: 0,
            wait: WaitHistogram::default(),
        });
        let req = ts.bucket.try_take(1.0, now);
        let byt = ts.byte_bucket.try_take(bytes, now);
        if let Err(wait) = req.and(byt) {
            ts.shed_quota += 1;
            return Err(AdmitError::Quota { retry_after: wait });
        }
        if ts.queue.len() >= ts.quota.max_queued {
            ts.shed_queue += 1;
            // Backoff hint: the head-of-queue job's virtual distance is
            // meaningless wall-clock, so hint one bucket refill instead.
            let retry = Duration::from_secs_f64(1.0 / ts.quota.rate.max(1.0));
            return Err(AdmitError::QueueFull { retry_after: retry });
        }
        let start = global_vtime.max(ts.last_finish);
        let finish = start + cost / f64::from(ts.quota.weight.max(1));
        ts.last_finish = finish;
        ts.queue.push_back(Job { start_tag: start, finish_tag: finish, enqueued: now, payload });
        ts.enqueued += 1;
        st.queued_total += 1;
        drop(st);
        self.cv.notify_all();
        Ok(())
    }

    /// Blocks until a dispatch slot and a queued job exist, then
    /// releases the minimum-start-tag job. Returns `None` on shutdown
    /// with an empty queue (drain semantics: queued jobs still flow).
    pub fn next(&self) -> Option<(String, T)> {
        let mut st = self.state.lock().expect("scheduler lock");
        loop {
            if st.queued_total > 0 && st.inflight < self.config.max_inflight {
                let (tenant, _) = st
                    .tenants
                    .iter()
                    .filter_map(|(name, ts)| {
                        ts.queue.front().map(|job| (name.clone(), job.start_tag))
                    })
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("queued_total > 0 implies a non-empty queue");
                let ts = st.tenants.get_mut(&tenant).expect("tenant exists");
                let job = ts.queue.pop_front().expect("non-empty");
                ts.dispatched += 1;
                ts.wait.observe(job.enqueued.elapsed());
                st.queued_total -= 1;
                st.inflight += 1;
                st.global_vtime = st.global_vtime.max(job.start_tag);
                let _ = job.finish_tag;
                return Some((tenant, job.payload));
            }
            if st.shutdown && st.queued_total == 0 {
                return None;
            }
            st = self.cv.wait(st).expect("scheduler lock");
        }
    }

    /// Reports a dispatched job's completion, freeing its slot.
    pub fn complete(&self, tenant: &str) {
        let mut st = self.state.lock().expect("scheduler lock");
        st.inflight = st.inflight.saturating_sub(1);
        if let Some(ts) = st.tenants.get_mut(tenant) {
            ts.completed += 1;
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Stops admission and wakes the dispatcher; queued jobs drain.
    pub fn shutdown(&self) {
        self.state.lock().expect("scheduler lock").shutdown = true;
        self.cv.notify_all();
    }

    /// Per-tenant accounting, sorted by label.
    pub fn snapshot(&self) -> Vec<TenantSnapshot> {
        let st = self.state.lock().expect("scheduler lock");
        let mut out: Vec<TenantSnapshot> = st
            .tenants
            .iter()
            .map(|(name, ts)| TenantSnapshot {
                tenant: name.clone(),
                weight: ts.quota.weight,
                enqueued: ts.enqueued,
                dispatched: ts.dispatched,
                completed: ts.completed,
                shed_quota: ts.shed_quota,
                shed_queue: ts.shed_queue,
                queued: ts.queue.len(),
                wait: ts.wait.clone(),
            })
            .collect();
        out.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(max_inflight: usize, quotas: &[(&str, TenantQuota)]) -> SchedulerConfig {
        SchedulerConfig {
            max_inflight,
            default_quota: TenantQuota::default(),
            tenant_quotas: quotas.iter().map(|(n, q)| (n.to_string(), *q)).collect(),
        }
    }

    #[test]
    fn weighted_interleave_follows_weights() {
        // Tenant a (weight 3) and b (weight 1), both backlogged with
        // unit-cost jobs: every window of 4 dispatches holds 3 a's.
        let quota_a = TenantQuota { weight: 3, ..TenantQuota::default() };
        let quota_b = TenantQuota { weight: 1, ..TenantQuota::default() };
        let sched: FairScheduler<&'static str> =
            FairScheduler::new(config(1, &[("a", quota_a), ("b", quota_b)]));
        for _ in 0..12 {
            sched.admit("a", 1.0, 0.0, "a").unwrap();
        }
        for _ in 0..4 {
            sched.admit("b", 1.0, 0.0, "b").unwrap();
        }
        let mut order = Vec::new();
        for _ in 0..16 {
            let (tenant, _) = sched.next().expect("queued work");
            sched.complete(&tenant);
            order.push(tenant);
        }
        let a_in_first_8 = order.iter().take(8).filter(|t| *t == "a").count();
        assert!(
            (5..=7).contains(&a_in_first_8),
            "weight-3 tenant got {a_in_first_8}/8 early slots: {order:?}"
        );
        assert_eq!(order.iter().filter(|t| *t == "a").count(), 12);
    }

    #[test]
    fn token_bucket_sheds_and_recovers() {
        let quota = TenantQuota { rate: 10.0, burst: 2.0, ..TenantQuota::default() };
        let sched: FairScheduler<u32> = FairScheduler::new(config(4, &[("t", quota)]));
        sched.admit("t", 1.0, 0.0, 0).unwrap();
        sched.admit("t", 1.0, 0.0, 1).unwrap();
        let err = sched.admit("t", 1.0, 0.0, 2).unwrap_err();
        match err {
            AdmitError::Quota { retry_after } => {
                assert!(retry_after <= Duration::from_millis(150), "{retry_after:?}");
            }
            other => panic!("expected quota shed, got {other:?}"),
        }
        let snap = sched.snapshot();
        assert_eq!(snap[0].shed_quota, 1);
        assert_eq!(snap[0].enqueued, 2);
        // After a refill interval the bucket admits again.
        std::thread::sleep(Duration::from_millis(120));
        sched.admit("t", 1.0, 0.0, 3).expect("bucket refilled");
    }

    #[test]
    fn per_tenant_queue_bound_sheds() {
        let quota = TenantQuota { max_queued: 2, ..TenantQuota::default() };
        let sched: FairScheduler<u32> = FairScheduler::new(config(1, &[("t", quota)]));
        sched.admit("t", 1.0, 0.0, 0).unwrap();
        sched.admit("t", 1.0, 0.0, 1).unwrap();
        assert!(matches!(sched.admit("t", 1.0, 0.0, 2), Err(AdmitError::QueueFull { .. })));
        assert_eq!(sched.snapshot()[0].shed_queue, 1);
    }

    #[test]
    fn idle_tenant_gains_no_credit() {
        // b stays idle while a dispatches many jobs; when b arrives its
        // start tag clamps to the global clock, so it does not monopolize.
        let sched: FairScheduler<&'static str> = FairScheduler::new(config(1, &[]));
        for _ in 0..8 {
            sched.admit("a", 1.0, 0.0, "a").unwrap();
        }
        for _ in 0..4 {
            let (t, _) = sched.next().unwrap();
            sched.complete(&t);
        }
        for _ in 0..4 {
            sched.admit("b", 1.0, 0.0, "b").unwrap();
        }
        let mut order = Vec::new();
        for _ in 0..8 {
            let (t, _) = sched.next().unwrap();
            sched.complete(&t);
            order.push(t);
        }
        // Equal weights from here on: roughly alternating, not b-first-4.
        let b_in_first_4 = order.iter().take(4).filter(|t| *t == "b").count();
        assert!(b_in_first_4 <= 3, "idle tenant burst ahead: {order:?}");
    }

    #[test]
    fn shutdown_drains_then_ends() {
        let sched: FairScheduler<u32> = FairScheduler::new(config(1, &[]));
        sched.admit("t", 1.0, 0.0, 7).unwrap();
        sched.shutdown();
        assert!(matches!(sched.admit("t", 1.0, 0.0, 8), Err(AdmitError::ShuttingDown)));
        let (t, v) = sched.next().expect("drain the queued job");
        assert_eq!((t.as_str(), v), ("t", 7));
        sched.complete("t");
        assert!(sched.next().is_none());
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut h = WaitHistogram::default();
        h.observe(Duration::from_micros(50));
        h.observe(Duration::from_micros(500));
        h.observe(Duration::from_secs(20));
        assert_eq!(h.count, 3);
        assert_eq!(h.buckets[0], 1); // <= 100us
        assert_eq!(h.buckets[1], 2); // <= 1ms
        assert_eq!(h.buckets[WAIT_BUCKETS_US.len()], 3); // +Inf
    }
}
