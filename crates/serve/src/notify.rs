//! Pub-sub completion notifications.
//!
//! A connection that sends `Subscribe` becomes a dedicated event
//! receiver (Redis pub/sub style): the server thread serving it drains
//! a per-subscriber channel of [`EventFrame`]s — one per request that
//! reaches a terminal state — and forwards each as a `Frame::Event`.
//! Publishing never blocks the request path: a subscriber that fell
//! behind past its channel bound simply misses events (counted in
//! `events_dropped`), it cannot exert backpressure on samplers.

use crate::wire::EventFrame;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{mpsc, Mutex};

/// Bound on a subscriber's pending events; beyond it, new events for
/// that subscriber are dropped (slow consumers lose data, not latency).
const SUBSCRIBER_DEPTH: usize = 1024;

/// Fan-out hub for walk-finished events.
#[derive(Default)]
pub struct Notifier {
    subscribers: Mutex<Vec<mpsc::SyncSender<EventFrame>>>,
    published: AtomicU64,
    dropped: AtomicU64,
}

impl Notifier {
    /// A hub with no subscribers.
    pub fn new() -> Notifier {
        Notifier::default()
    }

    /// Registers a subscriber; drop the receiver to unsubscribe.
    pub fn subscribe(&self) -> mpsc::Receiver<EventFrame> {
        let (tx, rx) = mpsc::sync_channel(SUBSCRIBER_DEPTH);
        self.subscribers.lock().expect("notifier lock").push(tx);
        rx
    }

    /// Publishes one event to every live subscriber, pruning dead ones.
    pub fn publish(&self, event: &EventFrame) {
        self.published.fetch_add(1, Relaxed);
        let mut subs = self.subscribers.lock().expect("notifier lock");
        subs.retain(|tx| match tx.try_send(event.clone()) {
            Ok(()) => true,
            Err(mpsc::TrySendError::Full(_)) => {
                self.dropped.fetch_add(1, Relaxed);
                true
            }
            Err(mpsc::TrySendError::Disconnected(_)) => false,
        });
    }

    /// Events published since start.
    pub fn published(&self) -> u64 {
        self.published.load(Relaxed)
    }

    /// Events dropped on full subscriber channels.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Relaxed)
    }

    /// Live subscriber count (dead ones prune on the next publish).
    pub fn subscriber_count(&self) -> u64 {
        self.subscribers.lock().expect("notifier lock").len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::EventKind;

    fn event(id: u64) -> EventFrame {
        EventFrame {
            request_id: id,
            tenant: "t".into(),
            kind: EventKind::Completed,
            sampled_edges: 1,
            instances: 1,
        }
    }

    #[test]
    fn fan_out_reaches_every_subscriber() {
        let hub = Notifier::new();
        let rx1 = hub.subscribe();
        let rx2 = hub.subscribe();
        hub.publish(&event(1));
        assert_eq!(rx1.try_recv().unwrap().request_id, 1);
        assert_eq!(rx2.try_recv().unwrap().request_id, 1);
        assert_eq!(hub.published(), 1);
        assert_eq!(hub.dropped(), 0);
    }

    #[test]
    fn dead_subscribers_are_pruned() {
        let hub = Notifier::new();
        let rx = hub.subscribe();
        drop(rx);
        hub.publish(&event(1));
        assert_eq!(hub.subscriber_count(), 0);
    }

    #[test]
    fn slow_subscriber_loses_events_not_latency() {
        let hub = Notifier::new();
        let rx = hub.subscribe();
        for i in 0..(SUBSCRIBER_DEPTH as u64 + 10) {
            hub.publish(&event(i));
        }
        assert_eq!(hub.dropped(), 10);
        assert_eq!(rx.try_recv().unwrap().request_id, 0);
    }
}
