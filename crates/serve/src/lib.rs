#![warn(missing_docs)]

//! # csaw-serve
//!
//! A multi-tenant **wire-protocol front end** for the sampling service:
//! the piece that turns `csaw-service`'s in-process micro-batcher into
//! something a GNN feature store or DeepWalk corpus generator can call
//! over the network — without surrendering the paper's determinism
//! contract at the socket.
//!
//! Three planes, three modules:
//!
//! - [`wire`]: a length-prefixed binary protocol over TCP (std
//!   networking only — no async runtime). Versioned handshake, typed
//!   request/response frames for sampling, mutation/compaction, and
//!   stats, and **chunked streaming responses** so a client's
//!   first-walk latency is set by the first chunk's micro-batch, not
//!   the whole request. Streaming preserves bit-identical output:
//!   chunks are admitted atomically via
//!   [`csaw_service::SamplingService::submit_group`], so their
//!   contiguous `instance_base` ranges key exactly the RNG streams the
//!   unsplit request would have drawn.
//! - [`tenant`]: admission and scheduling. Per-tenant token buckets
//!   (request rate + byte budget) shed excess offered load at the
//!   socket boundary; start-time fair queuing arbitrates what survives,
//!   so dispatch capacity divides by configured weights under
//!   contention and per-tenant backpressure (`TenantQuota`,
//!   `TenantQueueFull`) travels back over the wire with `retry_after`
//!   hints.
//! - [`metrics`] + [`notify`]: the observability plane. One renderer
//!   produces Prometheus text for both the `GET /metrics` HTTP side
//!   listener and the wire `Stats` frame — service conservation ledger,
//!   cache gauges, method counters, per-tenant queue/latency
//!   histograms — and a pub-sub hub pushes walk-finished events to
//!   subscribed connections.
//!
//! [`server`] assembles the planes into [`CsawServer`]; [`client`] is
//! the matching blocking [`Client`].

pub mod client;
pub mod metrics;
pub mod notify;
pub mod server;
pub mod tenant;
pub mod wire;

pub use client::{Client, ClientError, EventStream, StreamedResponse};
pub use metrics::{parse_value, render, ServeMetrics};
pub use notify::Notifier;
pub use server::{CsawServer, ServeConfig};
pub use tenant::{
    AdmitError, FairScheduler, SchedulerConfig, TenantQuota, TenantSnapshot, WaitHistogram,
};
pub use wire::{
    read_frame, read_frame_limited, write_frame, ChunkFrame, ErrorCode, ErrorFrame, EventFrame,
    EventKind, Frame, RecvError, ResponseFrame, SampleFrame, StreamEndFrame, WireAlgo, WireError,
    MAGIC, MAX_FRAME_LEN, WIRE_VERSION,
};
