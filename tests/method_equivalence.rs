//! Distribution-equality validation for the adaptive method chooser.
//!
//! `MethodPolicy::ForceIts` is pinned bit-for-bit by `step_golden`. The
//! alias and rejection methods consume different Philox draws, so
//! `MethodPolicy::Adaptive` cannot be bit-compared — instead this suite
//! checks the only property the chooser is allowed to rely on: every
//! method samples the *same target distribution*. Pearson chi-square
//! against the exact bias-derived probabilities is the arbiter, at the
//! primitive level (ITS vs alias vs rejection over identical bias
//! arrays) and end-to-end through the engine (Adaptive vs the exact
//! per-step distribution for a static-bias walk and for node2vec).

use csaw::core::algorithms::{
    BiasedNeighborSampling, BiasedRandomWalk, ForestFire, LayerSampling, MetropolisHastingsWalk,
    MultiDimRandomWalk, MultiIndependentRandomWalk, Node2Vec, RandomWalkWithJump,
    RandomWalkWithRestart, SimpleRandomWalk, Snowball, UnbiasedNeighborSampling,
};
use csaw::core::alias::AliasTable;
use csaw::core::api::Algorithm;
use csaw::core::ctps_cache::CtpsCache;
use csaw::core::engine::{RunOptions, Sampler};
use csaw::core::method::MethodPolicy;
use csaw::core::select::{select_one, select_one_rejection};
use csaw::gpu::stats::SimStats;
use csaw::gpu::Philox;
use csaw::graph::generators::toy_graph;
use csaw::graph::quality::chi_square_stat;
use csaw::graph::{Csr, CsrBuilder, VertexId};
use std::sync::Arc;

/// A comfortably loose chi-square acceptance threshold (~99.99th
/// percentile for the df sizes used here): failures mean a broken
/// sampler, not an unlucky seed — the seeds below are fixed.
fn chi2_threshold(df: usize) -> f64 {
    df as f64 + 4.0 * (2.0 * df as f64).sqrt() + 7.0
}

fn counts_its(biases: &[f64], draws: usize, seed: u64) -> Vec<u64> {
    let mut rng = Philox::new(seed);
    let mut stats = SimStats::new();
    let mut counts = vec![0u64; biases.len()];
    for _ in 0..draws {
        counts[select_one(biases, &mut rng, &mut stats).expect("positive mass")] += 1;
    }
    counts
}

fn counts_alias(biases: &[f64], draws: usize, seed: u64) -> Vec<u64> {
    let mut rng = Philox::new(seed);
    let mut stats = SimStats::new();
    let table = AliasTable::build(biases, &mut stats).expect("valid biases");
    let mut counts = vec![0u64; biases.len()];
    for _ in 0..draws {
        counts[table.sample(&mut rng, &mut stats)] += 1;
    }
    counts
}

fn counts_rejection(biases: &[f64], draws: usize, seed: u64) -> Vec<u64> {
    let mut rng = Philox::new(seed);
    let mut stats = SimStats::new();
    let bound = biases.iter().cloned().fold(0.0, f64::max);
    let mut counts = vec![0u64; biases.len()];
    for _ in 0..draws {
        // Restarting an exhausted cap is itself exact — the kernel falls
        // back to ITS instead only to bound worst-case work.
        let i = loop {
            if let Some(i) =
                select_one_rejection(biases.len(), bound, 64, |j| biases[j], &mut rng, &mut stats)
            {
                break i;
            }
        };
        counts[i] += 1;
    }
    counts
}

/// All three primitives against the exact distribution on one array.
fn assert_three_way(biases: &[f64], draws: usize, seed: u64) {
    let df = biases.iter().filter(|&&b| b > 0.0).count() - 1;
    for (name, counts) in [
        ("its", counts_its(biases, draws, seed)),
        ("alias", counts_alias(biases, draws, seed ^ 0xA11A5)),
        ("rejection", counts_rejection(biases, draws, seed ^ 0x7E7EC7)),
    ] {
        let stat = chi_square_stat(&counts, biases);
        assert!(
            stat < chi2_threshold(df.max(1)),
            "{name} diverged from the bias distribution: chi2 {stat:.1} over df {df} \
             (counts {counts:?})"
        );
    }
}

#[test]
fn methods_agree_on_a_skewed_array() {
    assert_three_way(&[8.0, 4.0, 2.0, 1.0, 1.0, 1.0, 1.0, 2.0], 300_000, 11);
}

#[test]
fn methods_agree_on_a_uniform_array() {
    assert_three_way(&[1.0; 16], 300_000, 12);
}

#[test]
fn methods_agree_on_a_single_survivor_array() {
    // Zero-bias candidates must never be selected by ANY method.
    let biases = [0.0, 0.0, 7.5, 0.0];
    for counts in [
        counts_its(&biases, 20_000, 13),
        counts_alias(&biases, 20_000, 14),
        counts_rejection(&biases, 20_000, 15),
    ] {
        assert_eq!(counts, vec![0, 0, 20_000, 0]);
    }
}

#[test]
fn methods_agree_on_a_large_draw_count() {
    // ~1e6 draws over a 32-category power-law-ish array: tight enough to
    // catch a subtly mis-scaled acceptance test or alias row.
    let biases: Vec<f64> = (0..32).map(|i| 1.0 / (1.0 + i as f64)).collect();
    assert_three_way(&biases, 1_000_000, 16);
}

fn toy_opts(policy: MethodPolicy, cache: bool) -> RunOptions {
    RunOptions {
        method_policy: policy,
        ctps_cache: cache.then(|| Arc::new(CtpsCache::new(1 << 20))),
        ..RunOptions::default()
    }
}

/// End-to-end: Adaptive biased random walk (static bias → cached-alias
/// path) must reproduce the exact degree-proportional first-hop
/// distribution, with the chooser actually exercising the alias method.
#[test]
fn adaptive_biased_walk_matches_exact_distribution() {
    let g = toy_graph();
    let algo = BiasedRandomWalk { length: 1 };
    let seeds = vec![8u32; 40_000];
    let out = Sampler::new(&g, &algo)
        .with_options(toy_opts(MethodPolicy::Adaptive, true))
        .run_single_seeds(&seeds);

    let nbrs = g.neighbors(8);
    let probs: Vec<f64> = nbrs.iter().map(|&u| g.degree(u) as f64).collect();
    let mut counts = vec![0u64; nbrs.len()];
    for inst in &out.instances {
        let dest = inst[0].1;
        counts[nbrs.iter().position(|&u| u == dest).expect("hop must be a neighbor")] += 1;
    }
    let stat = chi_square_stat(&counts, &probs);
    assert!(
        stat < chi2_threshold(nbrs.len() - 1),
        "adaptive biased walk diverged: chi2 {stat:.1} (counts {counts:?})"
    );
    assert!(out.stats.method_alias > 0, "static bias + cache must exercise the alias method");
    assert!(out.stats.ctps_cache_hits > 0, "40k expansions of one vertex must hit the alias cache");
    assert_eq!(out.stats.method_rejection, 0, "static bias never chooses rejection");
}

/// Node2vec probe graph where vertex 1 (degree 4 — enough for the
/// rejection chooser) splits its neighbors into the three distance
/// classes relative to prev = 0: return (0), common neighbor (2), and
/// explore-only (3, 4).
fn probe_graph() -> Csr {
    CsrBuilder::new()
        .symmetrize(true)
        .add_edge(0, 1)
        .add_edge(0, 2)
        .add_edge(1, 2)
        .add_edge(1, 3)
        .add_edge(1, 4)
        .build()
}

/// End-to-end: Adaptive node2vec (dynamic bias → rejection path) must
/// reproduce the exact second-order hop distribution.
#[test]
fn adaptive_node2vec_matches_exact_distribution() {
    let g = probe_graph();
    let algo = Node2Vec { length: 2, p: 0.1, q: 1.0 };
    let seeds = vec![0u32; 60_000];
    let out = Sampler::new(&g, &algo)
        .with_options(toy_opts(MethodPolicy::Adaptive, false))
        .run_single_seeds(&seeds);

    // Second hops of walks whose first hop was 1, prev = 0. Biases:
    // u=0 → 1/p = 10, u=2 → 1 (neighbor of 0), u=3 → 1/q = 1, u=4 → 1.
    let classes: [VertexId; 4] = [0, 2, 3, 4];
    let probs = [10.0, 1.0, 1.0, 1.0];
    let mut counts = [0u64; 4];
    let mut walks = 0u64;
    for inst in &out.instances {
        if inst.len() == 2 && inst[0].1 == 1 {
            counts[classes.iter().position(|&u| u == inst[1].1).expect("real neighbor")] += 1;
            walks += 1;
        }
    }
    assert!(walks > 10_000, "first hop 0→1 has probability 1/2, got {walks}");
    let stat = chi_square_stat(&counts, &probs);
    assert!(
        stat < chi2_threshold(3),
        "adaptive node2vec diverged: chi2 {stat:.1} (counts {counts:?})"
    );
    assert!(out.stats.method_rejection > 0, "degree-4 dynamic bias must exercise rejection");
    assert!(
        out.stats.rejection_trials >= out.stats.method_rejection,
        "every rejection-served expansion throws at least once"
    );
}

/// The thirteen Table-I algorithms with the same parameters as the
/// `step_golden` pins.
fn registry() -> Vec<(Box<dyn Algorithm>, bool)> {
    // (algorithm, uses single-vertex seeds — false = 3-vertex pools)
    vec![
        (Box::new(SimpleRandomWalk { length: 4 }), true),
        (Box::new(MetropolisHastingsWalk { length: 4 }), true),
        (Box::new(RandomWalkWithJump { length: 4, p_jump: 0.25 }), true),
        (Box::new(RandomWalkWithRestart { length: 4, p_restart: 0.25 }), true),
        (Box::new(MultiIndependentRandomWalk { length: 4 }), true),
        (Box::new(BiasedRandomWalk { length: 4 }), true),
        (Box::new(Node2Vec { length: 4, p: 0.5, q: 2.0 }), true),
        (Box::new(UnbiasedNeighborSampling { neighbor_size: 2, depth: 2 }), true),
        (Box::new(BiasedNeighborSampling { neighbor_size: 2, depth: 2 }), true),
        (Box::new(ForestFire { pf: 0.6, depth: 2 }), true),
        (Box::new(Snowball { depth: 2 }), true),
        (Box::new(LayerSampling { layer_size: 3, depth: 2 }), false),
        (Box::new(MultiDimRandomWalk { budget: 5 }), false),
    ]
}

fn seed_sets(singles: bool) -> Vec<Vec<VertexId>> {
    if singles {
        vec![vec![0], vec![8]]
    } else {
        vec![vec![0, 5, 8], vec![2, 7, 12]]
    }
}

/// `ForceIts` — explicit or by default, with or without a CTPS cache —
/// is one bit-identical sampling process across every Table-I algorithm,
/// and never ticks a method counter.
#[test]
fn force_its_is_bit_identical_to_the_default_for_all_algorithms() {
    let g = toy_graph();
    for (algo, singles) in registry() {
        let sets = seed_sets(singles);
        let default_out = Sampler::new(&g, &algo).run(&sets);
        for cache in [false, true] {
            let out = Sampler::new(&g, &algo)
                .with_options(toy_opts(MethodPolicy::ForceIts, cache))
                .run(&sets);
            assert_eq!(
                out.instances,
                default_out.instances,
                "{}: explicit ForceIts (cache={cache}) diverged from the default",
                algo.name()
            );
            let s = &out.stats;
            assert_eq!(
                (s.method_its, s.method_alias, s.method_rejection, s.method_uniform),
                (0, 0, 0, 0),
                "{}: ForceIts must not tick method counters",
                algo.name()
            );
        }
    }
}

/// Adaptive runs of every Table-I algorithm stay structurally valid
/// (real edges, walk lengths intact) and account each per-vertex
/// expansion to exactly one method counter.
#[test]
fn adaptive_stays_valid_for_all_algorithms() {
    let g = toy_graph();
    for (algo, singles) in registry() {
        let sets = seed_sets(singles);
        let out =
            Sampler::new(&g, &algo).with_options(toy_opts(MethodPolicy::Adaptive, true)).run(&sets);
        for inst in &out.instances {
            for &(v, u) in inst {
                assert!(g.has_edge(v, u), "{}: sampled a non-edge {v}-{u}", algo.name());
            }
        }
        let s = &out.stats;
        let methods = s.method_its + s.method_alias + s.method_rejection + s.method_uniform;
        if singles {
            assert!(
                methods > 0,
                "{}: adaptive per-vertex expansions must be accounted to a method",
                algo.name()
            );
        }
    }
}
