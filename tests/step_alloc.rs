//! Allocation-regression gate for the expand hot path.
//!
//! Drives the shared [`StepKernel`] directly — the same per-mode driver
//! loops the engine uses — under a counting global allocator, and asserts
//! that a steady-state repetition of every Table-I algorithm performs
//! **exactly zero** heap allocations. Any `Vec`/`Box`/`HashSet` growth
//! inside `expand`/`expand_layer`/`expand_replace`, SELECT, or the SIMT
//! warp scan trips this test, so per-step churn cannot creep back in.
//!
//! The binary holds a single `#[test]` on purpose: the counting allocator
//! is process-global, and a concurrent test thread allocating during the
//! measured window would produce false positives.

use csaw::core::algorithms::registry::{AlgoSpec, AlgorithmId};
use csaw::core::api::FrontierMode;
use csaw::core::batch::{run_chunk, BatchArena, ChunkInstance};
use csaw::core::ctps_cache::CtpsCache;
use csaw::core::residency::{DiskAccess, DiskRunConfig, ADMIT_TOUCHES};
use csaw::core::select::SelectConfig;
use csaw::core::step::{
    CsrAccess, EmitSink, NeighborAccess, PoolSink, PoolSlot, StepEntry, StepKernel, StepScratch,
    TrialCounter,
};
use csaw::gpu::alloc_count::CountingAllocator;
use csaw::gpu::stats::SimStats;
use csaw::graph::generators::{rmat, RmatParams};
use csaw::graph::store::write_store;
use csaw::graph::{Csr, DiskStore, VertexId};
use std::collections::HashSet;
use std::sync::Arc;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

/// Reusable driver state, cleared (never dropped) between repetitions so
/// steady-state repetitions run entirely in warmed capacity.
#[derive(Default)]
struct DriverBufs {
    pool: Vec<PoolSlot>,
    pool_biases: Vec<f64>,
    frontier: Vec<PoolSlot>,
    visited: HashSet<VertexId>,
    out: Vec<(VertexId, VertexId)>,
    trials: TrialCounter,
    stats: SimStats,
    scratch: StepScratch,
}

/// One full repetition: every instance of the algorithm over its seed
/// chunks. Deterministic (draws keyed by task), so every repetition
/// performs identical work. Returns kernel step invocations.
fn run_rep(
    kernel: &StepKernel<'_>,
    access: &mut impl NeighborAccess,
    chunks: &[Vec<VertexId>],
    b: &mut DriverBufs,
) -> u64 {
    let cfg = *kernel.cfg();
    let detector = kernel.select().detector;
    let mut steps = 0u64;
    for (inst, seeds) in chunks.iter().enumerate() {
        let inst = inst as u32;
        let home = seeds[0];
        b.pool.clear();
        b.pool.extend(seeds.iter().map(|&s| PoolSlot::seed(s)));
        b.visited.clear();
        if cfg.without_replacement {
            b.visited.extend(seeds.iter().copied());
        }
        b.out.clear();
        match cfg.frontier {
            FrontierMode::IndependentPerVertex => {
                for depth in 0..cfg.depth {
                    if b.pool.is_empty() {
                        break;
                    }
                    std::mem::swap(&mut b.pool, &mut b.frontier);
                    b.pool.clear();
                    b.trials.reset();
                    for i in 0..b.frontier.len() {
                        let slot = b.frontier[i];
                        let entry = StepEntry {
                            instance: inst,
                            depth: depth as u32,
                            vertex: slot.vertex,
                            prev: slot.prev,
                            trial: b.trials.next(inst, slot.vertex),
                        };
                        let mut sink = PoolSink {
                            cfg: &cfg,
                            detector,
                            visited: &mut b.visited,
                            next: &mut b.pool,
                            out: &mut b.out,
                        };
                        kernel.expand(
                            access,
                            &entry,
                            home,
                            &mut sink,
                            &mut b.scratch,
                            &mut b.stats,
                        );
                        steps += 1;
                    }
                }
            }
            FrontierMode::SharedLayer => {
                for depth in 0..cfg.depth {
                    if b.pool.is_empty() {
                        break;
                    }
                    std::mem::swap(&mut b.pool, &mut b.frontier);
                    b.pool.clear();
                    let mut sink = PoolSink {
                        cfg: &cfg,
                        detector,
                        visited: &mut b.visited,
                        next: &mut b.pool,
                        out: &mut b.out,
                    };
                    kernel.expand_layer(
                        access,
                        inst,
                        depth as u32,
                        &b.frontier,
                        &mut sink,
                        &mut b.scratch,
                        &mut b.stats,
                    );
                    steps += 1;
                }
            }
            FrontierMode::BiasedReplace => {
                b.pool_biases.clear();
                for depth in 0..cfg.depth {
                    if b.pool.is_empty() {
                        break;
                    }
                    let mut sink = EmitSink(&mut b.out);
                    kernel.expand_replace(
                        access,
                        inst,
                        depth as u32,
                        home,
                        &mut b.pool,
                        &mut b.pool_biases,
                        &mut sink,
                        &mut b.scratch,
                        &mut b.stats,
                    );
                    steps += 1;
                }
            }
        }
    }
    steps
}

/// Every Table-I algorithm through `access`: two warm-up repetitions,
/// then one measured repetition that must allocate nothing.
///
/// Two warm-ups, not one: the pool/frontier double buffer swaps roles
/// when a repetition performs an odd number of depth steps, so the
/// second pass warms the other parity's capacities.
fn gate_all(g: &Csr, access: &mut impl NeighborAccess, tag: &str) {
    let n = g.num_vertices() as VertexId;

    for id in AlgorithmId::ALL {
        let spec = if id.uses_walk_length() {
            AlgoSpec::new(id).with_depth(12)
        } else {
            AlgoSpec::new(id)
        };
        let algo = spec.build().expect("registry specs are valid");
        let cfg = algo.config();
        let seeds_per = match cfg.frontier {
            FrontierMode::IndependentPerVertex => 1,
            _ => 3,
        };
        let chunks: Vec<Vec<VertexId>> = (0..16)
            .map(|i| (0..seeds_per).map(|j| ((i * seeds_per + j) as VertexId * 131) % n).collect())
            .collect();

        // A generous-budget CTPS cache rides along: the warm-up
        // repetitions populate it, so the measured repetition runs its
        // static-bias lookups as cache hits — which must be just as
        // allocation-free as the rebuild path they replace.
        let cache = CtpsCache::new(64 << 20);
        let kernel = StepKernel::new(&*algo, 0x5eed)
            .with_select(SelectConfig::paper_best())
            .with_ctps_cache(Some(&cache));
        let mut bufs = DriverBufs::default();

        let warm1 = run_rep(&kernel, access, &chunks, &mut bufs);
        let warm2 = run_rep(&kernel, access, &chunks, &mut bufs);
        assert_eq!(warm1, warm2, "{}/{tag}: repetitions must perform identical work", id.name());

        let before = ALLOC.snapshot();
        let steps = run_rep(&kernel, access, &chunks, &mut bufs);
        let delta = ALLOC.snapshot().since(&before);

        assert_eq!(steps, warm1, "{}/{tag}: repetitions must perform identical work", id.name());
        assert!(steps > 0, "{}/{tag}: workload must actually step", id.name());
        assert_eq!(
            delta.allocations,
            0,
            "{}/{tag}: steady-state repetition allocated {} times ({} bytes) over {} steps — \
             the zero-allocation hot path has regressed",
            id.name(),
            delta.allocations,
            delta.bytes,
            steps
        );
    }
}

/// The depth-synchronous driver under the same gate: every per-vertex-
/// frontier algorithm through [`run_chunk`] with a warm [`BatchArena`].
/// Grouped expansion, batched Philox, the record/replay lanes, and the
/// prefetch bookkeeping must all run in warmed capacity — a steady-state
/// batched depth allocates exactly as much as an instance-major one:
/// nothing. No CTPS cache here so static-bias algorithms take the
/// shared-build (`prepare_group`/`expand_in_group`) path.
fn gate_batched(g: &Csr, access: &mut impl NeighborAccess) {
    let n = g.num_vertices() as VertexId;

    for id in AlgorithmId::ALL {
        let spec = if id.uses_walk_length() {
            AlgoSpec::new(id).with_depth(12)
        } else {
            AlgoSpec::new(id)
        };
        let algo = spec.build().expect("registry specs are valid");
        if algo.config().frontier != FrontierMode::IndependentPerVertex {
            continue;
        }
        let seeds: Vec<Vec<VertexId>> = (0..16).map(|i| vec![(i as VertexId * 131) % n]).collect();
        let chunk: Vec<ChunkInstance<'_>> = seeds
            .iter()
            .enumerate()
            .map(|(i, s)| ChunkInstance { global_id: i as u32, seeds: s })
            .collect();
        let kernel = StepKernel::new(&*algo, 0x5eed).with_select(SelectConfig::paper_best());
        let mut arena = BatchArena::new();
        let mut scratch = StepScratch::new();
        let mut outs = vec![Vec::new(); chunk.len()];
        let mut per_inst = vec![SimStats::new(); chunk.len()];
        fn rep<N: NeighborAccess>(
            kernel: &StepKernel<'_>,
            chunk: &[ChunkInstance<'_>],
            access: &mut N,
            outs: &mut [Vec<(VertexId, VertexId)>],
            per_inst: &mut [SimStats],
            arena: &mut BatchArena,
            scratch: &mut StepScratch,
        ) -> usize {
            for o in outs.iter_mut() {
                o.clear();
            }
            per_inst.fill(SimStats::new());
            run_chunk(kernel, access, chunk, 0x5eed, 8, outs, per_inst, arena, scratch);
            outs.iter().map(Vec::len).sum::<usize>()
        }

        // Two warm-ups for the cur/next double buffer's parity, as above.
        let warm1 =
            rep(&kernel, &chunk, access, &mut outs, &mut per_inst, &mut arena, &mut scratch);
        let warm2 =
            rep(&kernel, &chunk, access, &mut outs, &mut per_inst, &mut arena, &mut scratch);
        assert_eq!(warm1, warm2, "{}/batched: repetitions must be identical", id.name());

        let before = ALLOC.snapshot();
        let edges =
            rep(&kernel, &chunk, access, &mut outs, &mut per_inst, &mut arena, &mut scratch);
        let delta = ALLOC.snapshot().since(&before);

        assert_eq!(edges, warm1, "{}/batched: repetitions must be identical", id.name());
        assert!(edges > 0, "{}/batched: workload must actually sample", id.name());
        let total: SimStats = per_inst.iter().copied().sum();
        assert!(total.batch_groups > 0, "{}/batched: must form groups", id.name());
        assert_eq!(
            delta.allocations,
            0,
            "{}/batched: steady-state batched depth allocated {} times ({} bytes) — \
             the zero-allocation gate has regressed in depth-sync mode",
            id.name(),
            delta.allocations,
            delta.bytes,
        );
    }
}

#[test]
fn steady_state_step_allocates_nothing() {
    // Power-law graph large enough to exercise long adjacency gathers
    // and without-replacement retries, small enough for a test.
    let g = rmat(9, 8, RmatParams::MILD, 42);
    gate_all(&g, &mut CsrAccess { graph: &g }, "csr");
    gate_batched(&g, &mut CsrAccess { graph: &g });

    // The same gate through the disk tier: with every partition
    // admitted to a warm full-budget pool, stepping through
    // [`DiskAccess`] — resolve hits, ring scans, graveyard upkeep — must
    // be exactly as allocation-free as the in-memory CSR path.
    let base = std::env::var_os("CSAW_DISK_TMPDIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    let dir = base.join(format!("csaw-step-alloc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    write_store(&dir, &g, 8, 0).expect("write store");
    let store = Arc::new(DiskStore::open(&dir).expect("open store"));
    let cfg = DiskRunConfig {
        store: Arc::clone(&store),
        pool_budget: store.total_decoded_bytes(),
        shared: None,
    };
    let mut access = DiskAccess::new(&cfg);
    let mut warm_stats = SimStats::new();
    for _ in 0..(2 * ADMIT_TOUCHES as usize + 2) {
        for v in 0..g.num_vertices() as VertexId {
            let _ = access.gather(v, &mut warm_stats);
        }
    }
    let snap = access.snapshot();
    assert_eq!(
        snap.bytes,
        store.total_decoded_bytes() as u64,
        "warm-up must leave every partition resident: {snap:?}"
    );
    gate_all(&g, &mut access, "disk");
    let snap = access.snapshot();
    assert!(snap.is_conserved(), "{snap:?}");
    assert_eq!(snap.evictions, 0, "full budget must never evict");
    let _ = std::fs::remove_dir_all(&dir);
}
