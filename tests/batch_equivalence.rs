//! Determinism properties of depth-synchronous execution.
//!
//! The tentpole invariant: execution order is a *free variable*. Draws
//! are keyed by `(instance, depth, vertex, trial)` and the depth-sync
//! driver replays its sink traffic in flat order, so advancing all
//! instances in lockstep — at any chunk size, any prefetch distance, on
//! any executor — must be **bit-identical** to the instance-major
//! schedule, per instance and in edge order. These properties fuzz that
//! claim across random graphs, seed multisets (duplicates included, so
//! walkers collide on vertices and share groups), chunk partitions, and
//! prefetch lookaheads, through all three paths: the engine, the
//! out-of-memory scheduler, and the sampling service.

use csaw::core::engine::{ExecMode, RunOptions, Sampler};
use csaw::core::AlgoSpec;
use csaw::gpu::stats::SimStats;
use csaw::graph::{Csr, CsrBuilder};
use csaw::oom::{OomConfig, OomRunner};
use csaw::service::{SamplingRequest, SamplingService, ServiceConfig};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const N: u32 = 48;

fn arb_graph() -> impl Strategy<Value = Csr> {
    prop::collection::vec((0u32..N, 0u32..N), 40..200).prop_map(|edges| {
        CsrBuilder::new().with_num_vertices(N as usize).symmetrize(true).extend_edges(edges).build()
    })
}

/// Seed sets with repeats across instances: colliding walkers are what
/// exercise vertex grouping, shared builds, and trial-ordinal handoff.
fn arb_seed_sets() -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(prop::collection::vec(0u32..N, 1..3), 1..12)
}

/// One uniform walk, one statically-biased walk (group-shareable CTPS),
/// one without-replacement expansion — the three SELECT shapes the
/// depth-sync driver treats differently.
fn algo_spec(choice: usize) -> AlgoSpec {
    match choice {
        0 => AlgoSpec::by_name("simple-walk").unwrap().with_depth(7),
        1 => AlgoSpec::by_name("biased-walk").unwrap().with_depth(6),
        _ => AlgoSpec::by_name("neighbor").unwrap().with_depth(2),
    }
}

/// Zeroes the counters that only depth-sync execution produces — the
/// *only* stats allowed to differ between the two schedules.
fn scrub(mut s: SimStats) -> SimStats {
    s.batch_groups = 0;
    s.batch_group_entries = 0;
    s.batch_group_hist = [0; 8];
    s.batch_prefetch_hits = 0;
    s.batch_prefetch_misses = 0;
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Engine path: `ExecMode::DepthSync` at any chunk size and prefetch
    /// distance reproduces the instance-major run exactly — same edges in
    /// the same order per instance, and charge-identical work counters
    /// modulo the `batch_*` observability.
    #[test]
    fn depth_sync_engine_is_bit_identical(
        g in arb_graph(),
        seed_sets in arb_seed_sets(),
        choice in 0usize..3,
        chunk in prop::option::of(1usize..8),
        prefetch in 0usize..12,
        rng_seed in 1u64..4,
    ) {
        let algo = algo_spec(choice).build().unwrap();
        let algo: &dyn csaw::core::api::Algorithm = algo.as_ref();
        let reference = Sampler::new(&g, &algo)
            .with_options(RunOptions { seed: rng_seed, ..Default::default() })
            .run(&seed_sets);
        let batched = Sampler::new(&g, &algo)
            .with_options(RunOptions {
                seed: rng_seed,
                exec: ExecMode::DepthSync,
                prefetch_distance: prefetch,
                batch_chunk: chunk,
                ..Default::default()
            })
            .run(&seed_sets);
        prop_assert_eq!(&batched.instances, &reference.instances,
            "depth-sync diverged (chunk {:?}, prefetch {})", chunk, prefetch);
        // Conservation of the new observability, then charge-identity.
        prop_assert_eq!(
            batched.stats.batch_prefetch_hits + batched.stats.batch_prefetch_misses,
            batched.stats.batch_groups
        );
        prop_assert_eq!(
            batched.stats.batch_group_hist.iter().sum::<u64>(),
            batched.stats.batch_groups
        );
        prop_assert_eq!(scrub(batched.stats), scrub(reference.stats));
        // Per-instance attribution still sums to the totals.
        let summed: SimStats = batched.instance_stats.iter().copied().sum();
        prop_assert_eq!(scrub(summed), scrub(batched.stats));
    }

    /// Out-of-memory path: the scheduler's grouped drain under
    /// `ExecMode::DepthSync` matches its instance-major drain exactly —
    /// ordered edges per instance, not just multisets, because the
    /// grouped drain replays sink traffic in drained-batch order.
    #[test]
    fn depth_sync_oom_drain_is_bit_identical(
        g in arb_graph(),
        seeds in prop::collection::vec(0u32..N, 4..24),
        choice in 0usize..3,
        rng_seed in 1u64..4,
    ) {
        let algo = algo_spec(choice).build().unwrap();
        let cfg = OomConfig::full();
        let run = |exec: ExecMode| {
            OomRunner::new(&g, &algo, cfg)
                .with_seed(rng_seed)
                .with_exec(exec)
                .run(&seeds)
        };
        let reference = run(ExecMode::InstanceMajor);
        let batched = run(ExecMode::DepthSync);
        prop_assert_eq!(&batched.instances, &reference.instances);
        prop_assert_eq!(scrub(batched.stats), scrub(reference.stats));
    }

    /// Service path: a service configured for depth-sync execution
    /// answers every request bit-identically to a solo instance-major
    /// engine run at the request's assigned instance base — coalescing
    /// and the schedule change compose without touching sampling.
    #[test]
    fn depth_sync_service_matches_instance_major_solo_runs(
        g in arb_graph(),
        requests in prop::collection::vec(
            (0usize..3, prop::collection::vec(0u32..N, 1..4), 1u64..3), 1..5),
        max_batch in 1usize..8,
        prefetch in 0usize..10,
    ) {
        let g = Arc::new(g);
        let svc = SamplingService::with_engine(Arc::clone(&g), ServiceConfig {
            start_paused: true,
            max_batch_instances: max_batch,
            batch_window: Duration::from_millis(1),
            exec: ExecMode::DepthSync,
            prefetch_distance: prefetch,
            ..ServiceConfig::default()
        });
        // Submit everything in one paused admission batch, then resume.
        #[allow(clippy::needless_collect)]
        let tickets: Vec<_> = requests
            .iter()
            .map(|(choice, seeds, rng_seed)| {
                let spec = algo_spec(*choice);
                let t = svc
                    .submit(SamplingRequest::new(spec, seeds.clone()).with_rng_seed(*rng_seed))
                    .expect("valid request");
                (spec, seeds.clone(), *rng_seed, t)
            })
            .collect();
        svc.resume();
        for (spec, seeds, rng_seed, ticket) in tickets {
            let resp = ticket.wait().expect("healthy algo, no deadline");
            let algo = spec.build().unwrap();
            let solo = Sampler::new(&g, &algo)
                .with_options(RunOptions {
                    seed: rng_seed,
                    instance_base: resp.instance_base,
                    ..Default::default()
                })
                .run_single_seeds(&seeds);
            prop_assert_eq!(&resp.output.instances, &solo.instances,
                "depth-sync service diverged from solo (base {})", resp.instance_base);
        }
        let snap = svc.shutdown();
        prop_assert!(snap.fully_accounted(), "{:?}", snap);
    }
}
