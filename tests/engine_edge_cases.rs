//! Engine edge cases and failure injection: degenerate graphs, extreme
//! parameters, and misuse that must degrade gracefully rather than panic.

use csaw::core::algorithms::*;
use csaw::core::api::*;
use csaw::core::engine::Sampler;
use csaw::graph::{Csr, CsrBuilder, GraphView};

#[test]
fn depth_zero_samples_nothing() {
    struct Noop;
    impl Algorithm for Noop {
        fn name(&self) -> &'static str {
            "noop"
        }
        fn config(&self) -> AlgoConfig {
            AlgoConfig {
                depth: 0,
                neighbor_size: NeighborSize::Constant(2),
                frontier: FrontierMode::IndependentPerVertex,
                without_replacement: true,
            }
        }
    }
    let g = csaw::graph::generators::toy_graph();
    let out = Sampler::new(&g, &Noop).run_single_seeds(&[0, 8]);
    assert_eq!(out.sampled_edges(), 0);
    assert_eq!(out.instances.len(), 2);
}

#[test]
fn neighbor_size_zero_is_inert() {
    struct ZeroNs;
    impl Algorithm for ZeroNs {
        fn name(&self) -> &'static str {
            "zero-ns"
        }
        fn config(&self) -> AlgoConfig {
            AlgoConfig {
                depth: 3,
                neighbor_size: NeighborSize::Constant(0),
                frontier: FrontierMode::IndependentPerVertex,
                without_replacement: true,
            }
        }
    }
    let g = csaw::graph::generators::toy_graph();
    let out = Sampler::new(&g, &ZeroNs).run_single_seeds(&[8]);
    assert_eq!(out.sampled_edges(), 0);
}

#[test]
fn all_seeds_isolated() {
    let g = Csr::empty(10);
    let walk = SimpleRandomWalk { length: 10 };
    let out = Sampler::new(&g, &walk).run_single_seeds(&[0, 5, 9]);
    assert_eq!(out.sampled_edges(), 0);
    let ns = UnbiasedNeighborSampling { neighbor_size: 2, depth: 2 };
    let out = Sampler::new(&g, &ns).run_single_seeds(&[1]);
    assert_eq!(out.sampled_edges(), 0);
}

#[test]
fn self_loops_are_walkable_when_kept() {
    // A vertex whose only edge is a self loop: the walk stays put forever
    // but must still terminate at the configured length.
    let g = CsrBuilder::new().drop_self_loops(false).add_edge(0, 0).build();
    let walk = SimpleRandomWalk { length: 7 };
    let out = Sampler::new(&g, &walk).run_single_seeds(&[0]);
    assert_eq!(out.instances[0], vec![(0, 0); 7]);
}

#[test]
fn huge_neighbor_size_saturates_at_degree() {
    let g = csaw::graph::generators::toy_graph();
    let ns = UnbiasedNeighborSampling { neighbor_size: 10_000, depth: 1 };
    let out = Sampler::new(&g, &ns).run_single_seeds(&[8]);
    assert_eq!(out.instances[0].len(), 5, "v8 has 5 neighbors");
}

#[test]
fn duplicate_seeds_make_independent_instances() {
    let g = csaw::graph::generators::toy_graph();
    let walk = SimpleRandomWalk { length: 40 };
    let out = Sampler::new(&g, &walk).run_single_seeds(&[8; 8]);
    let distinct: std::collections::HashSet<_> =
        out.instances.iter().map(|i| format!("{i:?}")).collect();
    assert!(distinct.len() > 1);
}

#[test]
fn mdrw_pool_with_duplicates_and_isolated() {
    let g = CsrBuilder::new().with_num_vertices(5).symmetrize(true).add_edge(0, 1).build();
    let algo = MultiDimRandomWalk { budget: 10 };
    // Pool mixes a connected pair with isolated vertices (zero bias).
    let out = Sampler::new(&g, &algo).run(&[vec![0, 0, 3, 4]]);
    // Isolated pool entries carry zero degree bias and are never picked;
    // the 0<->1 pair ping-pongs for the whole budget.
    assert_eq!(out.instances[0].len(), 10);
    assert!(out.instances[0].iter().all(|&(v, u)| (v == 0 || v == 1) && (u == 0 || u == 1)));
}

#[test]
fn forest_fire_pf_one_is_rejected_like_behavior_documented() {
    // pf = 0.999...: realize() caps at the degree, so this must not hang.
    let g = csaw::graph::generators::toy_graph();
    let algo = ForestFire { pf: 0.999, depth: 2 };
    let out = Sampler::new(&g, &algo).run_single_seeds(&[8]);
    assert!(out.sampled_edges() > 0);
}

#[test]
fn update_discard_everything_terminates_early() {
    struct DropAll;
    impl Algorithm for DropAll {
        fn name(&self) -> &'static str {
            "drop-all"
        }
        fn config(&self) -> AlgoConfig {
            AlgoConfig {
                depth: 50,
                neighbor_size: NeighborSize::Constant(1),
                frontier: FrontierMode::IndependentPerVertex,
                without_replacement: false,
            }
        }
        fn update(
            &self,
            _g: GraphView<'_>,
            _e: &EdgeCand,
            _home: u32,
            _rng: &mut csaw::gpu::Philox,
        ) -> UpdateAction {
            UpdateAction::Discard
        }
    }
    let g = csaw::graph::generators::toy_graph();
    let out = Sampler::new(&g, &DropAll).run_single_seeds(&[8]);
    // One edge sampled, then the frontier dies.
    assert_eq!(out.instances[0].len(), 1);
}

#[test]
fn weighted_graph_with_uniform_weights_matches_unweighted_distribution() {
    use std::collections::HashMap;
    let gw = csaw::graph::generators::toy_graph().with_unit_weights();
    let algo = BiasedNeighborSampling { neighbor_size: 1, depth: 1 };
    // On the weighted copy the bias is the (unit) weight -> uniform.
    let out = Sampler::new(&gw, &algo).run_single_seeds(&vec![8; 40_000]);
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for inst in &out.instances {
        *counts.entry(inst[0].1).or_default() += 1;
    }
    for &u in gw.neighbors(8) {
        let f = counts[&u] as f64 / 40_000.0;
        assert!((f - 0.2).abs() < 0.02, "neighbor {u}: {f}");
    }
}

#[test]
fn checked_runs_reject_bad_seed_ids_with_typed_errors() {
    use csaw::core::engine::RunError;
    let g = csaw::graph::generators::toy_graph(); // 13 vertices
    let walk = SimpleRandomWalk { length: 4 };
    let s = Sampler::new(&g, &walk);
    // Out-of-range single seed: the error pins the instance and vertex.
    match s.run_single_seeds_checked(&[0, 99]) {
        Err(RunError::SeedOutOfRange { instance, vertex, num_vertices }) => {
            assert_eq!((instance, vertex, num_vertices), (1, 99, 13));
        }
        other => panic!("expected SeedOutOfRange, got {other:?}"),
    }
    // Empty seed *set* (an instance with no seeds) is an error...
    match s.run_checked(&[vec![0], vec![]]) {
        Err(RunError::EmptySeedSet { instance }) => assert_eq!(instance, 1),
        other => panic!("expected EmptySeedSet, got {other:?}"),
    }
    // ...but an empty *list* of sets is a valid zero-instance run.
    let out = s.run_checked(&[]).unwrap();
    assert_eq!(out.instances.len(), 0);
    // Valid seeds pass through to a normal run, bit-identical to the
    // unchecked entry point.
    let checked = s.run_single_seeds_checked(&[0, 8]).unwrap();
    let unchecked = s.run_single_seeds(&[0, 8]);
    assert_eq!(checked.instances, unchecked.instances);
}

#[test]
fn run_error_messages_name_the_problem() {
    use csaw::core::engine::RunError;
    let oob = RunError::SeedOutOfRange { instance: 3, vertex: 42, num_vertices: 10 };
    let msg = oob.to_string();
    assert!(msg.contains("42") && msg.contains("10"), "{msg}");
    let empty = RunError::EmptySeedSet { instance: 3 };
    assert!(empty.to_string().contains('3'), "{empty}");
}

#[test]
fn snowball_on_star_graph_is_one_shot() {
    let mut b = CsrBuilder::new().symmetrize(true);
    for i in 1..=6u32 {
        b = b.add_edge(0, i);
    }
    let g = b.build();
    let out = Sampler::new(&g, &Snowball { depth: 4 }).run_single_seeds(&[0]);
    // Depth 1 takes all 6 spokes; depth 2 adds the 6 back-edges to the
    // (visited) hub — filtered; nothing further.
    assert_eq!(out.instances[0].len(), 6 + 6);
}
