#![allow(clippy::needless_range_loop)] // index-centric assertions read better here
//! Statistical validation: the sampled distributions must obey Theorem 1
//! (transition probability ∝ bias) end-to-end through the engine, for
//! biased and unbiased algorithms, against exact references.

use csaw::core::algorithms::{BiasedRandomWalk, MetropolisHastingsWalk, SimpleRandomWalk};
use csaw::core::api::*;
use csaw::core::engine::Sampler;
use csaw::graph::generators::{ring_lattice, toy_graph};
use csaw::graph::GraphView;
use std::collections::HashMap;

/// Total variation distance between an empirical count map and an exact
/// distribution.
fn tv(counts: &HashMap<u32, usize>, exact: &HashMap<u32, f64>, n: usize) -> f64 {
    let mut d = 0.0;
    for (&v, &p) in exact {
        let f = counts.get(&v).copied().unwrap_or(0) as f64 / n as f64;
        d += (f - p).abs();
    }
    d / 2.0
}

#[test]
fn first_hop_matches_theorem_1_for_degree_bias() {
    let g = toy_graph();
    let n = 120_000;
    let out = Sampler::new(&g, &BiasedRandomWalk { length: 1 }).run_single_seeds(&vec![8; n]);
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for inst in &out.instances {
        *counts.entry(inst[0].1).or_default() += 1;
    }
    // Theorem 1 on Fig. 1: t = b / Σb with b = {3,6,2,2,2}.
    let exact: HashMap<u32, f64> =
        [(5u32, 0.2), (7, 0.4), (9, 2.0 / 15.0), (10, 2.0 / 15.0), (11, 2.0 / 15.0)]
            .into_iter()
            .collect();
    let d = tv(&counts, &exact, n);
    assert!(d < 0.01, "TV distance {d}");
}

#[test]
fn long_simple_walk_converges_to_degree_distribution() {
    // Stationary distribution of an unbiased walk on an undirected graph
    // is deg(v) / 2|E|.
    let g = toy_graph();
    let out =
        Sampler::new(&g, &SimpleRandomWalk { length: 4_000 }).run_single_seeds(&[0, 4, 8, 12]);
    let mut visits = vec![0usize; g.num_vertices()];
    let mut total = 0usize;
    for inst in &out.instances {
        for &(v, _) in inst.iter().skip(100) {
            visits[v as usize] += 1;
            total += 1;
        }
    }
    let mut d = 0.0;
    for v in 0..g.num_vertices() {
        let exact = g.degree(v as u32) as f64 / g.num_edges() as f64;
        let freq = visits[v] as f64 / total as f64;
        d += (freq - exact).abs();
    }
    d /= 2.0;
    assert!(d < 0.02, "TV from degree distribution: {d}");
}

#[test]
fn metropolis_hastings_converges_to_uniform() {
    // MH corrects the degree bias: the chain's stationary distribution is
    // uniform. The engine records *moves* only (stays consume the step
    // silently), so the observed frequency of vertex v as an edge source
    // is π(v)·P(move|v) normalized, with
    // P(move|v) = (1/deg v)·Σ_{u∈N(v)} min(1, deg v / deg u).
    let g = toy_graph();
    let out = Sampler::new(&g, &MetropolisHastingsWalk { length: 8_000 })
        .run_single_seeds(&[0, 4, 8, 12]);
    let mut visits = vec![0usize; g.num_vertices()];
    let mut total = 0usize;
    for inst in &out.instances {
        for &(v, _) in inst.iter().skip(200) {
            visits[v as usize] += 1;
            total += 1;
        }
    }
    // Exact prediction under uniform π.
    let p_move: Vec<f64> = (0..g.num_vertices() as u32)
        .map(|v| {
            let dv = g.degree(v) as f64;
            g.neighbors(v).iter().map(|&u| (dv / g.degree(u) as f64).min(1.0)).sum::<f64>() / dv
        })
        .collect();
    let norm: f64 = p_move.iter().sum();
    let mut d = 0.0;
    for (v, &c) in visits.iter().enumerate() {
        d += (c as f64 / total as f64 - p_move[v] / norm).abs();
    }
    d /= 2.0;
    assert!(d < 0.02, "TV from the exact move-weighted uniform law: {d}");
}

/// A custom user bias goes through the whole stack unchanged: bias by the
/// *square* of the neighbor id.
#[test]
fn custom_edge_bias_respected_end_to_end() {
    struct SquareBias;
    impl Algorithm for SquareBias {
        fn name(&self) -> &'static str {
            "square-bias"
        }
        fn config(&self) -> AlgoConfig {
            AlgoConfig {
                depth: 1,
                neighbor_size: NeighborSize::Constant(1),
                frontier: FrontierMode::IndependentPerVertex,
                without_replacement: false,
            }
        }
        fn edge_bias(&self, _g: GraphView<'_>, e: &EdgeCand) -> f64 {
            (e.u as f64).powi(2)
        }
    }
    let g = toy_graph();
    let n = 120_000;
    let out = Sampler::new(&g, &SquareBias).run_single_seeds(&vec![8; n]);
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for inst in &out.instances {
        *counts.entry(inst[0].1).or_default() += 1;
    }
    let total: f64 = g.neighbors(8).iter().map(|&u| (u as f64).powi(2)).sum();
    let exact: HashMap<u32, f64> =
        g.neighbors(8).iter().map(|&u| (u, (u as f64).powi(2) / total)).collect();
    let d = tv(&counts, &exact, n);
    assert!(d < 0.01, "TV distance {d}");
}

#[test]
fn mh_walk_on_regular_graph_never_rejects() {
    // On a regular graph every MH proposal is accepted, so the walk
    // behaves exactly like a simple walk: full length, no stalls.
    let g = ring_lattice(64, 2);
    let out = Sampler::new(&g, &MetropolisHastingsWalk { length: 100 }).run_single_seeds(&[0]);
    let inst = &out.instances[0];
    assert_eq!(inst.len(), 100);
    for w in inst.windows(2) {
        assert_ne!(w[0].0, w[0].1, "no self loops on the ring");
        assert_eq!(w[0].1, w[1].0);
    }
}
