//! The mutable-graph epoch contract, end to end: any interleaving of
//! edits and compactions yields an overlay whose merged adjacency is
//! edge-multiset-identical to a CSR rebuilt from scratch, and walks
//! launched in epoch E see exactly snapshot E — bit-identical to a
//! from-scratch run on the compacted CSR of E, unperturbed by
//! later-epoch mutations, on every runtime (engine, out-of-memory
//! scheduler, service).

use csaw::core::algorithms::{BiasedRandomWalk, UnbiasedNeighborSampling};
use csaw::core::ctps_cache::CtpsCache;
use csaw::core::engine::{RunOptions, Sampler};
use csaw::core::{DeltaAccess, NeighborAccess};
use csaw::gpu::config::DeviceConfig;
use csaw::gpu::stats::SimStats;
use csaw::graph::generators::{rmat, toy_graph, RmatParams};
use csaw::graph::{Csr, CsrBuilder, EdgeEdit, GraphSnapshot, MutableGraph};
use csaw::oom::{OomConfig, OomRunner};
use csaw::service::{
    MutationRequest, RequestAlgo, SamplingRequest, SamplingService, ServiceConfig,
};
use proptest::prelude::*;
use std::sync::Arc;

/// One step of an edit/compact interleaving, encoded with fractional
/// slots so it is valid against any intermediate graph state.
#[derive(Debug, Clone)]
enum Step {
    /// Insert edge (src, dst) — skipped if already present, so the naive
    /// model stays exact (duplicate-copy semantics have their own unit
    /// tests in `csaw_graph::dynamic`).
    Insert { src_frac: f64, dst_frac: f64, weight: f32 },
    /// Delete the `pick`-th existing edge; no-op on an empty graph.
    Delete { pick: f64 },
    /// Reweight the `pick`-th existing edge; no-op on an empty graph.
    Reweight { pick: f64, weight: f32 },
    /// Fold the overlay into a fresh base.
    Compact,
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    let step =
        (0u32..8, 0.0f64..1.0, 0.0f64..1.0, 0.5f64..4.0).prop_map(
            |(kind, a, b, weight)| match kind {
                0..=2 => Step::Insert { src_frac: a, dst_frac: b, weight: weight as f32 },
                3 | 4 => Step::Delete { pick: a },
                5 | 6 => Step::Reweight { pick: a, weight: weight as f32 },
                _ => Step::Compact,
            },
        );
    prop::collection::vec(step, 0..30)
}

/// Naive reference: a plain edge list mutated in lockstep with the
/// overlay, rebuilt into a CSR from scratch at the end.
#[derive(Debug, Clone)]
struct Model {
    n: usize,
    edges: Vec<(u32, u32, f32)>,
}

impl Model {
    fn has(&self, src: u32, dst: u32) -> bool {
        self.edges.iter().any(|&(s, d, _)| s == src && d == dst)
    }

    fn to_csr(&self) -> Csr {
        // Keep self-loops and duplicates: the overlay allows both, so the
        // scratch rebuild must not normalize them away.
        let mut b = CsrBuilder::new()
            .with_num_vertices(self.n)
            .dedup(false)
            .drop_self_loops(false)
            .weighted(true);
        for &(s, d, w) in &self.edges {
            b = b.add_weighted_edge(s, d, w);
        }
        b.build()
    }
}

/// Applies `steps` to both representations; invalid picks degrade to
/// no-ops on both sides identically.
fn apply_steps(mg: &mut MutableGraph, model: &mut Model, steps: &[Step]) {
    for step in steps {
        match *step {
            Step::Insert { src_frac, dst_frac, weight } => {
                let src = ((src_frac * model.n as f64) as u32).min(model.n as u32 - 1);
                let dst = ((dst_frac * model.n as f64) as u32).min(model.n as u32 - 1);
                if model.has(src, dst) {
                    continue;
                }
                mg.apply_batch(&[EdgeEdit::Insert { src, dst, weight }]).unwrap();
                model.edges.push((src, dst, weight));
            }
            Step::Delete { pick } => {
                if model.edges.is_empty() {
                    continue;
                }
                let i = ((pick * model.edges.len() as f64) as usize).min(model.edges.len() - 1);
                let (src, dst, _) = model.edges.remove(i);
                mg.apply_batch(&[EdgeEdit::Delete { src, dst }]).unwrap();
            }
            Step::Reweight { pick, weight } => {
                if model.edges.is_empty() {
                    continue;
                }
                let i = ((pick * model.edges.len() as f64) as usize).min(model.edges.len() - 1);
                let (src, dst, _) = model.edges[i];
                mg.apply_batch(&[EdgeEdit::Reweight { src, dst, weight }]).unwrap();
                model.edges[i] = (src, dst, weight);
            }
            Step::Compact => {
                mg.compact();
            }
        }
    }
}

/// `v`'s adjacency as a sorted (dst, weight-bits) multiset.
fn edge_multiset(neighbors: &[u32], weights: Option<&[f32]>) -> Vec<(u32, u32)> {
    let mut out: Vec<(u32, u32)> = neighbors
        .iter()
        .enumerate()
        .map(|(i, &d)| (d, weights.map_or(1.0f32, |w| w[i]).to_bits()))
        .collect();
    out.sort_unstable();
    out
}

fn sorted(mut instances: Vec<Vec<(u32, u32)>>) -> Vec<Vec<(u32, u32)>> {
    for inst in &mut instances {
        inst.sort_unstable();
    }
    instances
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any interleaving of edits and compactions: the overlay's
    /// `DeltaAccess` gather is edge-multiset-identical (per vertex) to a
    /// CSR rebuilt from scratch, and snapshot walks are bit-identical to
    /// walks on that rebuilt CSR.
    #[test]
    fn overlay_gather_matches_scratch_rebuild(steps in arb_steps()) {
        // Start from a weighted seed graph so reweights always have
        // targets and the overlay materializes non-trivial bases.
        let seed_graph = toy_graph().with_unit_weights();
        let mut model = Model {
            n: seed_graph.num_vertices(),
            edges: (0..seed_graph.num_vertices() as u32)
                .flat_map(|v| {
                    seed_graph.neighbors(v).iter().map(move |&d| (v, d, 1.0f32))
                })
                .collect(),
        };
        let mut mg = MutableGraph::new(seed_graph);
        apply_steps(&mut mg, &mut model, &steps);

        let scratch = model.to_csr();
        let snap = mg.snapshot();
        let mut access = DeltaAccess { snapshot: &snap };
        let mut stats = SimStats::new();
        prop_assert_eq!(snap.view().num_edges(), scratch.num_edges());
        for v in 0..model.n as u32 {
            let got = access.gather(v, &mut stats);
            let got_set = edge_multiset(got.neighbors, got.weights);
            let want_set = edge_multiset(scratch.neighbors(v), scratch.neighbor_weights(v));
            prop_assert_eq!(got_set, want_set, "vertex {}", v);
        }

        // Walk bit-identity: the snapshot run equals a from-scratch run
        // on the rebuilt CSR (same RNG keying, same logical adjacency).
        let algo = BiasedRandomWalk { length: 3 };
        let seeds: Vec<u32> = (0..8).map(|i| i * 3 % model.n as u32).collect();
        let on_snap = Sampler::new(snap.base(), &algo)
            .with_snapshot(snap.clone())
            .run_single_seeds(&seeds);
        let on_scratch = Sampler::new(&scratch, &algo).run_single_seeds(&seeds);
        prop_assert_eq!(on_snap.instances, on_scratch.instances);
    }
}

#[test]
fn epoch_walks_are_frozen_against_later_mutations() {
    let mut mg = MutableGraph::new(toy_graph().with_unit_weights());
    mg.apply_batch(&[
        EdgeEdit::Insert { src: 0, dst: 9, weight: 2.5 },
        EdgeEdit::Delete { src: 8, dst: 5 },
        EdgeEdit::Reweight { src: 3, dst: 7, weight: 0.5 },
    ])
    .unwrap();
    let s1 = mg.snapshot();
    let algo = BiasedRandomWalk { length: 8 };
    let seeds: Vec<u32> = (0..13).collect();
    let run = |snap: &GraphSnapshot| {
        Sampler::new(snap.base(), &algo).with_snapshot(snap.clone()).run_single_seeds(&seeds)
    };

    // Contract half 1: the epoch-1 run equals a from-scratch run on the
    // compacted CSR of epoch 1.
    let out1 = run(&s1);
    let compacted = s1.to_csr();
    let scratch = Sampler::new(&compacted, &algo).run_single_seeds(&seeds);
    assert_eq!(out1.instances, scratch.instances);

    // Contract half 2: later-epoch mutations and compactions never
    // perturb walks launched against the epoch-1 snapshot.
    mg.apply_batch(&[EdgeEdit::Insert { src: 5, dst: 0, weight: 1.0 }]).unwrap();
    mg.compact();
    mg.apply_batch(&[EdgeEdit::Delete { src: 0, dst: 9 }]).unwrap();
    let out2 = run(&s1);
    assert_eq!(out1.instances, out2.instances);

    // And the live graph's own walks see the epoch-3 adjacency, which
    // differs from epoch 1's (edge (0, 9) is gone again).
    let s3 = mg.snapshot();
    assert_eq!(s3.epoch(), 3);
    assert!(!s3.view().has_edge(0, 9));
    assert!(s1.view().has_edge(0, 9));
}

#[test]
fn engine_and_oom_agree_on_snapshot_walks() {
    let g = rmat(9, 6, RmatParams::GRAPH500, 22);
    let mut mg = MutableGraph::new(g);
    // Edit a mix of hub-adjacent and leaf vertices: inserts everywhere,
    // plus a delete of a known base edge.
    let probe = {
        let s = mg.snapshot();
        let v = (0..s.view().num_vertices() as u32)
            .find(|&v| s.view().degree(v) > 0)
            .expect("rmat graph has edges");
        (v, s.view().neighbors(v)[0])
    };
    mg.apply_batch(&[
        EdgeEdit::Insert { src: 3, dst: 250, weight: 1.0 },
        EdgeEdit::Insert { src: 250, dst: 3, weight: 1.0 },
        EdgeEdit::Insert { src: 7, dst: 400, weight: 1.0 },
        EdgeEdit::Delete { src: probe.0, dst: probe.1 },
    ])
    .unwrap();
    let snap = mg.snapshot();
    let algo = UnbiasedNeighborSampling { neighbor_size: 2, depth: 3 };
    let seeds: Vec<u32> = (0..48).map(|i| i * 11 % 512).collect();

    let engine =
        Sampler::new(snap.base(), &algo).with_snapshot(snap.clone()).run_single_seeds(&seeds);
    let oom = OomRunner::new(snap.base(), &algo, OomConfig::default())
        .with_device(DeviceConfig::tiny(1 << 20))
        .with_snapshot(snap.clone())
        .run(&seeds);
    assert_eq!(sorted(engine.instances.clone()), sorted(oom.instances));

    // Both equal the from-scratch run on the compacted CSR of the epoch.
    let compacted = snap.to_csr();
    let scratch = Sampler::new(&compacted, &algo).run_single_seeds(&seeds);
    assert_eq!(engine.instances, scratch.instances);
}

#[test]
fn service_mutations_apply_atomically_and_walks_track_epochs() {
    let graph = Arc::new(toy_graph());
    let svc = SamplingService::with_engine(Arc::clone(&graph), ServiceConfig::default());
    let spec = RequestAlgo::by_name("biased-walk").unwrap();
    let algo = csaw::core::AlgoSpec::by_name("biased-walk").unwrap().build().unwrap();
    let submit = |svc: &SamplingService| {
        svc.submit(SamplingRequest::new(spec.clone(), vec![0, 8]).with_rng_seed(7))
            .unwrap()
            .wait()
            .unwrap()
    };
    // Solo reference at a given instance base (each submit advances the
    // key's base by two instances): `snapshot = None` is the pre-mutation
    // graph, `Some` the epoch-1 overlay.
    let solo = |snapshot: Option<&GraphSnapshot>, instance_base: u32| {
        let g = snapshot.map_or(&*graph, |s| s.base());
        Sampler::new(g, &algo)
            .with_options(RunOptions {
                seed: 7,
                instance_base,
                snapshot: snapshot.cloned(),
                ..RunOptions::default()
            })
            .run_single_seeds(&[0, 8])
            .instances
    };
    let r0 = submit(&svc);
    assert_eq!(r0.output.instances, solo(None, r0.instance_base));

    // A rejected batch is fully atomic: epoch unchanged, nothing applied,
    // and walks still match the unmutated solo reference.
    let err = svc
        .mutate(MutationRequest::new(vec![
            EdgeEdit::Insert { src: 8, dst: 0, weight: 1.0 },
            EdgeEdit::Delete { src: 0, dst: 999 },
        ]))
        .unwrap_err();
    assert!(matches!(err, csaw::graph::EditError::VertexOutOfRange { .. }));
    assert_eq!(svc.graph_epoch(), 0);
    let ra = submit(&svc);
    assert_eq!(ra.output.instances, solo(None, ra.instance_base));

    // A successful mutation advances the epoch and is visible to the
    // next batch; the response is bit-identical to a solo engine run on
    // the mutated snapshot.
    let resp =
        svc.mutate(MutationRequest::new(vec![EdgeEdit::Insert { src: 8, dst: 0, weight: 1.0 }]));
    let resp = resp.unwrap();
    assert_eq!(resp.epoch, 1);
    assert_eq!(resp.overlay_vertices, 1);
    assert_eq!(svc.graph_epoch(), 1);
    let mut solo_mg = MutableGraph::from_arc(Arc::clone(&graph));
    solo_mg.apply_batch(&[EdgeEdit::Insert { src: 8, dst: 0, weight: 1.0 }]).unwrap();
    let snap1 = solo_mg.snapshot();
    let r1 = submit(&svc);
    assert_eq!(r1.output.instances, solo(Some(&snap1), r1.instance_base));

    // Compaction folds the overlay without changing walks or the epoch:
    // the post-fold service still matches the *uncompacted* epoch-1
    // snapshot reference.
    assert_eq!(svc.compact(), 1);
    assert_eq!(svc.graph_epoch(), 1);
    let r2 = submit(&svc);
    assert_eq!(r2.output.instances, solo(Some(&snap1), r2.instance_base));

    let snap = svc.shutdown();
    assert_eq!(snap.mutations, 1);
    assert_eq!(snap.compactions, 1);
    assert_eq!(snap.graph_epoch, 1);
    assert_eq!(snap.overlay_vertices, 0, "gauge reflects the fold");
    assert!(snap.fully_accounted());
}

#[test]
fn untouched_hot_vertices_keep_cache_entries_across_epochs() {
    let algo = BiasedRandomWalk { length: 1 };
    let cache = Arc::new(CtpsCache::new(1 << 20));
    let mut mg = MutableGraph::new(toy_graph());
    let seeds = vec![8u32; 4];
    let run = |mg: &MutableGraph| {
        let snap = mg.snapshot();
        Sampler::new(snap.base(), &algo)
            .with_options(RunOptions {
                ctps_cache: Some(Arc::clone(&cache)),
                snapshot: Some(snap.clone()),
                ..RunOptions::default()
            })
            .run_single_seeds(&seeds)
    };

    run(&mg);
    let warm = cache.snapshot();
    assert!(warm.promotions > 0, "walk promoted vertex 8's table");
    assert!(warm.hits > 0, "repeated seeds hit the promoted table");
    assert_eq!(warm.evictions_stale, 0);

    // Mutating a vertex the walk never expands leaves every cached
    // entry valid: same tag (version 0), pure hits, no stale drops.
    mg.apply_batch(&[EdgeEdit::Insert { src: 0, dst: 3, weight: 1.0 }]).unwrap();
    run(&mg);
    let after_cold_edit = cache.snapshot();
    assert_eq!(after_cold_edit.evictions_stale, 0, "untouched vertices keep entries");
    assert_eq!(after_cold_edit.promotions, warm.promotions, "nothing re-promoted");
    assert!(after_cold_edit.hits > warm.hits);

    // Compaction doesn't invalidate either (versions are retained).
    mg.compact();
    run(&mg);
    let after_compact = cache.snapshot();
    assert_eq!(after_compact.evictions_stale, 0);
    assert_eq!(after_compact.promotions, warm.promotions);

    // Mutating the hot vertex itself invalidates exactly its entry:
    // one stale drop, one re-promotion at the new version tag.
    mg.apply_batch(&[EdgeEdit::Insert { src: 8, dst: 0, weight: 1.0 }]).unwrap();
    run(&mg);
    let after_hot_edit = cache.snapshot();
    assert_eq!(after_hot_edit.evictions_stale, 1, "only the mutated vertex went stale");
    assert_eq!(after_hot_edit.promotions, warm.promotions + 1);
    assert!(after_hot_edit.is_conserved());
}
