//! Cross-crate integration tests: run every Table-I algorithm end-to-end
//! on generated graphs and check structural invariants of the samples.

use csaw::core::algorithms::*;
use csaw::core::api::{Algorithm, FrontierMode};
use csaw::core::engine::{RunOptions, Sampler};
use csaw::graph::generators::{barabasi_albert, rmat, toy_graph, RmatParams};
use csaw::graph::Csr;

fn check_edges_are_real(g: &Csr, out: &csaw::core::SampleOutput) {
    for inst in &out.instances {
        for &(v, u) in inst {
            assert!(g.has_edge(v, u), "sampled non-edge ({v}, {u})");
        }
    }
}

fn run_all_algorithms(g: &Csr, seeds: &[u32]) {
    macro_rules! run {
        ($algo:expr) => {{
            let algo = $algo;
            let out = if algo.config().frontier == FrontierMode::BiasedReplace {
                Sampler::new(g, &algo).run(&[seeds.to_vec()])
            } else {
                Sampler::new(g, &algo).run_single_seeds(seeds)
            };
            check_edges_are_real(g, &out);
            assert!(out.sampled_edges() > 0, "{} sampled nothing", algo.name());
            out
        }};
    }

    run!(SimpleRandomWalk { length: 12 });
    run!(MetropolisHastingsWalk { length: 12 });
    run!(RandomWalkWithJump { length: 12, p_jump: 0.15 });
    run!(RandomWalkWithRestart { length: 12, p_restart: 0.15 });
    run!(MultiIndependentRandomWalk { length: 12 });
    run!(BiasedRandomWalk { length: 12 });
    run!(Node2Vec { length: 12, p: 0.5, q: 2.0 });
    run!(UnbiasedNeighborSampling { neighbor_size: 2, depth: 3 });
    run!(BiasedNeighborSampling { neighbor_size: 2, depth: 3 });
    run!(ForestFire::paper(3));
    run!(Snowball { depth: 2 });
    run!(LayerSampling { layer_size: 4, depth: 3 });
    run!(MultiDimRandomWalk { budget: 24 });
}

#[test]
fn all_algorithms_on_toy_graph() {
    let g = toy_graph();
    run_all_algorithms(&g, &[8, 0, 3, 12]);
}

#[test]
fn all_algorithms_on_rmat() {
    let g = rmat(10, 8, RmatParams::GRAPH500, 77);
    let seeds: Vec<u32> = (0..16).map(|i| i * 61 % 1024).collect();
    run_all_algorithms(&g, &seeds);
}

#[test]
fn all_algorithms_on_barabasi_albert() {
    let g = barabasi_albert(600, 3, 5);
    let seeds: Vec<u32> = (0..16).map(|i| i * 37 % 600).collect();
    run_all_algorithms(&g, &seeds);
}

#[test]
fn all_algorithms_on_weighted_graph() {
    let g = rmat(9, 6, RmatParams::MILD, 3).with_unit_weights();
    let seeds: Vec<u32> = (0..8).map(|i| i * 63 % 512).collect();
    run_all_algorithms(&g, &seeds);
}

#[test]
fn samples_differ_across_instances_but_runs_are_reproducible() {
    let g = rmat(9, 6, RmatParams::GRAPH500, 8);
    let algo = SimpleRandomWalk { length: 30 };
    let seeds = vec![5u32; 16];
    let a = Sampler::new(&g, &algo).run_single_seeds(&seeds);
    let b = Sampler::new(&g, &algo).run_single_seeds(&seeds);
    assert_eq!(a.instances, b.instances, "same run options, same output");
    assert!(
        a.instances.iter().any(|i| i != &a.instances[0]),
        "independent instances from the same seed must diverge"
    );
}

#[test]
fn thread_count_does_not_change_results() {
    // Counter-based RNG keying means the rayon pool size is irrelevant.
    let g = rmat(9, 4, RmatParams::GRAPH500, 10);
    let algo = BiasedNeighborSampling { neighbor_size: 2, depth: 3 };
    let seeds: Vec<u32> = (0..64).collect();

    let baseline = Sampler::new(&g, &algo).run_single_seeds(&seeds);
    let single = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap()
        .install(|| Sampler::new(&g, &algo).run_single_seeds(&seeds));
    assert_eq!(baseline.instances, single.instances);
    assert_eq!(baseline.stats, single.stats);
}

#[test]
fn select_strategy_changes_work_not_validity() {
    use csaw::core::collision::DetectorKind;
    use csaw::core::select::{SelectConfig, SelectStrategy};
    let g = rmat(9, 8, RmatParams::GRAPH500, 12).with_unit_weights();
    let algo = BiasedNeighborSampling { neighbor_size: 4, depth: 2 };
    let seeds: Vec<u32> = (0..64).collect();
    for strategy in [SelectStrategy::Repeated, SelectStrategy::Updated, SelectStrategy::Bipartite] {
        for detector in [
            DetectorKind::LinearSearch,
            DetectorKind::ContiguousBitmap { word_bits: 8 },
            DetectorKind::StridedBitmap { word_bits: 8 },
        ] {
            let out = Sampler::new(&g, &algo)
                .with_options(RunOptions {
                    seed: 3,
                    select: SelectConfig { strategy, detector },
                    ..Default::default()
                })
                .run_single_seeds(&seeds);
            check_edges_are_real(&g, &out);
            assert!(out.sampled_edges() > 0);
        }
    }
}
