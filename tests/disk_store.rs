//! Disk-tier equivalence: sampling through the mmap-backed partitioned
//! store must be **bit-identical** to the in-memory CSR at every pool
//! budget, on every runtime — the engine, both out-of-memory paths, and
//! the batching service. This is the acceptance contract of the
//! residency hierarchy: eviction pressure changes counters, never
//! samples (every RNG draw is keyed by `(instance, depth, vertex,
//! trial)`, and the disk tier serves the exact same neighbor slices).

use csaw::core::algorithms::{BiasedRandomWalk, UnbiasedNeighborSampling};
use csaw::core::engine::{RunOptions, Sampler};
use csaw::core::residency::{DiskRunConfig, DiskTierStats};
use csaw::core::AlgoSpec;
use csaw::graph::generators::{rmat, RmatParams};
use csaw::graph::store::write_store;
use csaw::graph::{Csr, DiskStore, EdgeEdit};
use csaw::oom::{OomConfig, OomRunner};
use csaw::service::{
    MutationRequest, OomExecutor, SamplingRequest, SamplingService, ServiceConfig,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Per-instance `(u, v)` edge lists for each request of a batch.
type BatchEdges = Vec<Vec<Vec<(u32, u32)>>>;

/// Budgets from "one partition barely fits" to "everything resident".
const POOL_BUDGETS: [usize; 3] = [1 << 12, 1 << 16, 1 << 24];

fn tmp_dir(name: &str) -> PathBuf {
    let base =
        std::env::var_os("CSAW_DISK_TMPDIR").map(PathBuf::from).unwrap_or_else(std::env::temp_dir);
    let dir = base.join(format!("csaw-disk-eq-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Writes `g` as a store and returns a disk config with a stats sink.
fn disk_cfg(g: &Csr, dir: &Path, parts: usize, pool: usize) -> DiskRunConfig {
    if !dir.join("store.meta").exists() {
        write_store(dir, g, parts, 0).expect("write store");
    }
    DiskRunConfig {
        store: Arc::new(DiskStore::open(dir).expect("open store")),
        pool_budget: pool,
        shared: Some(Arc::new(DiskTierStats::default())),
    }
}

#[test]
fn engine_is_bit_identical_at_every_pool_budget() {
    let g = rmat(9, 6, RmatParams::GRAPH500, 31);
    let seeds: Vec<u32> = (0..48).map(|i| i * 13 % 512).collect();
    let dir = tmp_dir("engine");
    for algo_case in 0..2 {
        let run = |disk: Option<DiskRunConfig>| {
            let opts = RunOptions { seed: 7, disk, ..Default::default() };
            match algo_case {
                0 => {
                    let algo = BiasedRandomWalk { length: 12 };
                    Sampler::new(&g, &algo).with_options(opts).run_single_seeds(&seeds)
                }
                _ => {
                    let algo = UnbiasedNeighborSampling { neighbor_size: 2, depth: 3 };
                    Sampler::new(&g, &algo).with_options(opts).run_single_seeds(&seeds)
                }
            }
        };
        let mem = run(None);
        for pool in POOL_BUDGETS {
            let cfg = disk_cfg(&g, &dir, 8, pool);
            let tier = cfg.shared.clone().unwrap();
            let disk = run(Some(cfg));
            assert_eq!(
                disk.instances, mem.instances,
                "algo {algo_case}: pool {pool} changed the sample"
            );
            let (lookups, hits, misses) = (
                tier.lookups.load(std::sync::atomic::Ordering::Relaxed),
                tier.hits.load(std::sync::atomic::Ordering::Relaxed),
                tier.misses.load(std::sync::atomic::Ordering::Relaxed),
            );
            assert!(lookups > 0, "disk tier never consulted");
            assert_eq!(lookups, hits + misses, "tier ledger must balance");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn oom_queue_runtime_is_bit_identical_with_disk_behind_it() {
    let g = rmat(9, 6, RmatParams::GRAPH500, 32);
    let algo = UnbiasedNeighborSampling { neighbor_size: 2, depth: 3 };
    let seeds: Vec<u32> = (0..48).map(|i| i * 13 % 512).collect();
    let dir = tmp_dir("oom-queue");
    let cfg = OomConfig::full();
    let mem = OomRunner::new(&g, &algo, cfg).run(&seeds);
    for pool in POOL_BUDGETS {
        let disk =
            OomRunner::new(&g, &algo, cfg).with_disk(disk_cfg(&g, &dir, 8, pool)).run(&seeds);
        assert_eq!(disk.instances, mem.instances, "pool {pool} changed the OOM sample");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn oom_pooled_runtime_is_bit_identical_with_disk_behind_it() {
    let g = rmat(9, 6, RmatParams::GRAPH500, 33);
    let algo = csaw::core::algorithms::MultiDimRandomWalk { budget: 60 };
    let pools = csaw::core::algorithms::MultiDimRandomWalk::seed_pools(g.num_vertices(), 6, 32, 7);
    let dir = tmp_dir("oom-pooled");
    let cfg = OomConfig::full();
    let mem = OomRunner::new(&g, &algo, cfg).run_pools(&pools);
    for pool in POOL_BUDGETS {
        let disk =
            OomRunner::new(&g, &algo, cfg).with_disk(disk_cfg(&g, &dir, 8, pool)).run_pools(&pools);
        assert_eq!(disk.instances, mem.instances, "pool {pool} changed the pooled sample");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Runs the same request stream against a memory-backed and a
/// disk-backed service and returns both response edge lists.
fn serve_both(
    g: &Arc<Csr>,
    mk: impl Fn(Option<DiskRunConfig>) -> SamplingService,
    disk: DiskRunConfig,
) -> (BatchEdges, BatchEdges) {
    let run = |svc: SamplingService| {
        let spec = AlgoSpec::by_name("biased-walk").unwrap().with_depth(8);
        let mut all = Vec::new();
        for i in 0..4u32 {
            let n = g.num_vertices() as u32;
            let req = SamplingRequest::new(spec, vec![i % n, (i * 7 + 1) % n]);
            let resp = svc.submit(req).unwrap().wait().unwrap();
            all.push(resp.output.instances);
        }
        svc.shutdown();
        all
    };
    (run(mk(None)), run(mk(Some(disk))))
}

#[test]
fn service_is_bit_identical_and_rejects_mutation_on_every_executor() {
    let g = Arc::new(rmat(9, 6, RmatParams::GRAPH500, 34));
    let dir = tmp_dir("service");
    for pool in POOL_BUDGETS {
        // Engine executor.
        let mk = |disk: Option<DiskRunConfig>| {
            SamplingService::with_engine(
                Arc::clone(&g),
                ServiceConfig { disk, ..ServiceConfig::default() },
            )
        };
        let (mem, disk) = serve_both(&g, mk, disk_cfg(&g, &dir, 8, pool));
        assert_eq!(mem, disk, "engine service diverged at pool {pool}");

        // OOM executor.
        let mk = |disk: Option<DiskRunConfig>| {
            SamplingService::new(
                Arc::clone(&g),
                Arc::new(OomExecutor::new(OomConfig::full())),
                ServiceConfig { disk, ..ServiceConfig::default() },
            )
        };
        let (mem, disk) = serve_both(&g, mk, disk_cfg(&g, &dir, 8, pool));
        assert_eq!(mem, disk, "OOM service diverged at pool {pool}");
    }

    // A disk-backed service refuses edits (the store is immutable) and
    // still balances every ledger, including the disk tier's.
    let svc = SamplingService::with_engine(
        Arc::clone(&g),
        ServiceConfig { disk: Some(disk_cfg(&g, &dir, 8, 1 << 16)), ..ServiceConfig::default() },
    );
    let spec = AlgoSpec::by_name("simple-walk").unwrap().with_depth(6);
    svc.submit(SamplingRequest::new(spec, vec![0, 1])).unwrap().wait().unwrap();
    let err = svc
        .mutate(MutationRequest::new(vec![EdgeEdit::Insert { src: 0, dst: 1, weight: 1.0 }]))
        .unwrap_err();
    assert!(
        matches!(err, csaw::graph::EditError::ImmutableStore),
        "expected ImmutableStore, got {err:?}"
    );
    let snap = svc.shutdown();
    assert!(snap.disk_lookups > 0, "service never consulted the disk tier");
    assert_eq!(snap.disk_lookups, snap.disk_hits + snap.disk_misses);
    assert_eq!(snap.mutations_rejected, 1);
    assert!(snap.fully_accounted(), "{snap:?}");
    std::fs::remove_dir_all(&dir).ok();
}
