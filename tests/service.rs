//! Robustness contract of the sampling service: deadlines are always
//! reported, saturation sheds instead of stalling, a poisoned request
//! fails only its own batch, and every submitted request reaches
//! exactly one terminal state.

use csaw::core::api::{AlgoConfig, Algorithm, EdgeCand, FrontierMode, NeighborSize, UpdateAction};
use csaw::core::AlgoSpec;
use csaw::graph::generators::toy_graph;
use csaw::graph::GraphView;
use csaw::service::{RequestAlgo, SamplingRequest, SamplingService, ServiceConfig, ServiceError};
use std::sync::Arc;
use std::time::Duration;

fn spec(name: &str) -> AlgoSpec {
    AlgoSpec::by_name(name).unwrap()
}

fn engine_service(config: ServiceConfig) -> SamplingService {
    SamplingService::with_engine(Arc::new(toy_graph()), config)
}

#[test]
fn deadline_expiry_at_dequeue_is_reported_not_dropped() {
    let svc = engine_service(ServiceConfig { start_paused: true, ..ServiceConfig::default() });
    let ticket = svc
        .submit(
            SamplingRequest::new(spec("simple-walk"), vec![0])
                .with_deadline(Duration::from_millis(5)),
        )
        .unwrap();
    // Let the deadline pass while the batcher is paused, then resume:
    // the request expires the moment the batcher dequeues it.
    std::thread::sleep(Duration::from_millis(40));
    svc.resume();
    assert_eq!(ticket.wait().unwrap_err(), ServiceError::Expired);
    let snap = svc.shutdown();
    assert_eq!(snap.expired, 1);
    assert_eq!(snap.batches, 0, "an expired request never launches");
    assert!(snap.fully_accounted(), "{snap:?}");
}

/// A walk whose bias hook sleeps — stands in for a request that is
/// admitted in time but whose batch outlives its deadline.
struct SlowWalk {
    step_sleep: Duration,
}

impl Algorithm for SlowWalk {
    fn name(&self) -> &'static str {
        "slow-walk"
    }
    fn config(&self) -> AlgoConfig {
        AlgoConfig {
            depth: 10,
            neighbor_size: NeighborSize::Constant(1),
            frontier: FrontierMode::IndependentPerVertex,
            without_replacement: false,
        }
    }
    fn edge_bias(&self, _g: GraphView<'_>, _e: &EdgeCand) -> f64 {
        std::thread::sleep(self.step_sleep);
        1.0
    }
}

#[test]
fn deadline_expiry_at_batch_completion_is_reported() {
    let svc = engine_service(ServiceConfig::default());
    let slow: Arc<dyn Algorithm> = Arc::new(SlowWalk { step_sleep: Duration::from_millis(10) });
    // The batch is dequeued almost immediately (well inside 250ms) but
    // takes ~500ms to run (10 steps x 5 neighbors x 10ms), so the
    // deadline check at completion must fire.
    let ticket = svc
        .submit(
            SamplingRequest::new(RequestAlgo::Custom(slow), vec![8])
                .with_deadline(Duration::from_millis(250)),
        )
        .unwrap();
    assert_eq!(ticket.wait().unwrap_err(), ServiceError::Expired);
    let snap = svc.shutdown();
    assert_eq!(snap.expired, 1);
    assert_eq!(snap.batches, 1, "the batch ran; its result arrived late");
    assert!(snap.fully_accounted(), "{snap:?}");
}

#[test]
fn full_queue_sheds_load_with_retry_hint() {
    let svc = engine_service(ServiceConfig {
        start_paused: true,
        queue_capacity: 2,
        ..ServiceConfig::default()
    });
    let t1 = svc.submit(SamplingRequest::new(spec("simple-walk"), vec![0])).unwrap();
    let t2 = svc.submit(SamplingRequest::new(spec("simple-walk"), vec![1])).unwrap();
    match svc.submit(SamplingRequest::new(spec("simple-walk"), vec![2])) {
        Err(ServiceError::QueueFull { retry_after }) => {
            assert!(retry_after > Duration::ZERO);
        }
        other => panic!("expected QueueFull, got {other:?}"),
    }
    svc.resume();
    assert!(t1.wait().is_ok());
    assert!(t2.wait().is_ok());
    let snap = svc.shutdown();
    assert_eq!(
        (snap.submitted, snap.accepted, snap.rejected_queue_full, snap.completed),
        (3, 2, 1, 2)
    );
    assert!(snap.fully_accounted(), "{snap:?}");
}

/// An algorithm whose UPDATE hook panics — the poisoned request.
struct PanickingUpdate;

impl Algorithm for PanickingUpdate {
    fn name(&self) -> &'static str {
        "panicking-update"
    }
    fn config(&self) -> AlgoConfig {
        AlgoConfig {
            depth: 4,
            neighbor_size: NeighborSize::Constant(1),
            frontier: FrontierMode::IndependentPerVertex,
            without_replacement: false,
        }
    }
    fn update(
        &self,
        _g: GraphView<'_>,
        _e: &EdgeCand,
        _home: u32,
        _rng: &mut csaw::gpu::Philox,
    ) -> UpdateAction {
        panic!("poisoned request")
    }
}

#[test]
fn panicking_update_fails_only_its_batch() {
    let svc = engine_service(ServiceConfig { start_paused: true, ..ServiceConfig::default() });
    let poison: Arc<dyn Algorithm> = Arc::new(PanickingUpdate);
    // Two requests sharing the poisoned Arc coalesce into one batch;
    // the registry request forms its own (different batch key).
    let p1 = svc
        .submit(SamplingRequest::new(RequestAlgo::Custom(Arc::clone(&poison)), vec![0]))
        .unwrap();
    let p2 = svc.submit(SamplingRequest::new(RequestAlgo::Custom(poison), vec![1])).unwrap();
    let healthy = svc.submit(SamplingRequest::new(spec("simple-walk"), vec![2])).unwrap();
    svc.resume();
    assert!(matches!(p1.wait(), Err(ServiceError::BatchFailed(_))));
    assert!(matches!(p2.wait(), Err(ServiceError::BatchFailed(_))));
    assert!(healthy.wait().is_ok(), "a healthy batch is unaffected by the poisoned one");
    // The worker survived the panic and keeps serving.
    let again = svc.submit(SamplingRequest::new(spec("simple-walk"), vec![3])).unwrap();
    assert!(again.wait().is_ok());
    let snap = svc.shutdown();
    assert_eq!(snap.failed, 2);
    assert_eq!(snap.completed, 2);
    assert!(snap.fully_accounted(), "{snap:?}");
}

#[test]
fn shutdown_drains_queued_requests() {
    // A paused service with queued work: shutdown overrides the pause
    // and answers everything before the worker exits.
    let svc = engine_service(ServiceConfig { start_paused: true, ..ServiceConfig::default() });
    let tickets: Vec<_> = (0u32..5)
        .map(|i| svc.submit(SamplingRequest::new(spec("biased-walk"), vec![i])).unwrap())
        .collect();
    let snap = svc.shutdown();
    assert_eq!(snap.completed, 5);
    assert!(snap.fully_accounted(), "{snap:?}");
    let mut edges = 0;
    for t in tickets {
        let resp = t.wait().expect("drained, not dropped");
        assert_eq!(resp.stats.sampled_edges, resp.output.sampled_edges());
        edges += resp.stats.sampled_edges;
    }
    assert_eq!(edges, snap.sampled_edges, "per-request slices cover the batch totals");
}

#[test]
fn mixed_burst_is_exactly_accounted() {
    let svc = engine_service(ServiceConfig {
        start_paused: true,
        queue_capacity: 3,
        ..ServiceConfig::default()
    });
    // 1: invalid (out-of-range seed) — rejected at admission.
    assert!(svc.submit(SamplingRequest::new(spec("neighbor"), vec![999])).is_err());
    // 2-4: accepted; one carries an already-tiny deadline.
    let ok1 = svc.submit(SamplingRequest::new(spec("neighbor"), vec![0])).unwrap();
    let doomed = svc
        .submit(
            SamplingRequest::new(spec("neighbor"), vec![1]).with_deadline(Duration::from_millis(1)),
        )
        .unwrap();
    let ok2 = svc.submit(SamplingRequest::new(spec("neighbor"), vec![2])).unwrap();
    // 5: shed — the queue holds the 3 accepted requests.
    assert!(matches!(
        svc.submit(SamplingRequest::new(spec("neighbor"), vec![3])),
        Err(ServiceError::QueueFull { .. })
    ));
    std::thread::sleep(Duration::from_millis(30));
    svc.resume();
    assert!(ok1.wait().is_ok());
    assert_eq!(doomed.wait().unwrap_err(), ServiceError::Expired);
    assert!(ok2.wait().is_ok());
    let snap = svc.shutdown();
    assert_eq!(snap.submitted, 5);
    assert_eq!(snap.rejected_invalid, 1);
    assert_eq!(snap.rejected_queue_full, 1);
    assert_eq!(snap.accepted, 3);
    assert_eq!(snap.expired, 1);
    assert_eq!(snap.completed, 2);
    assert!(snap.fully_accounted(), "{snap:?}");
}

#[test]
fn expired_request_leaves_a_gap_batchmates_survive() {
    // Three same-key requests admitted contiguously; the middle one
    // expires at dequeue, splitting the batch into two contiguous
    // segments — both of which must still reproduce their solo runs.
    use csaw::core::engine::{RunOptions, Sampler};
    let g = Arc::new(toy_graph());
    let svc = SamplingService::with_engine(
        Arc::clone(&g),
        ServiceConfig { start_paused: true, ..ServiceConfig::default() },
    );
    let a = svc.submit(SamplingRequest::new(spec("biased-walk"), vec![0, 1])).unwrap();
    let doomed = svc
        .submit(
            SamplingRequest::new(spec("biased-walk"), vec![2])
                .with_deadline(Duration::from_millis(1)),
        )
        .unwrap();
    let b = svc.submit(SamplingRequest::new(spec("biased-walk"), vec![3, 4])).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    svc.resume();
    let ra = a.wait().unwrap();
    assert_eq!(doomed.wait().unwrap_err(), ServiceError::Expired);
    let rb = b.wait().unwrap();
    assert_eq!((ra.instance_base, rb.instance_base), (0, 3), "gap at instance 2");
    let algo = spec("biased-walk").build().unwrap();
    let solo_a = Sampler::new(&g, &algo)
        .with_options(RunOptions { seed: 1, instance_base: 0, ..RunOptions::default() })
        .run_single_seeds(&[0, 1]);
    let solo_b = Sampler::new(&g, &algo)
        .with_options(RunOptions { seed: 1, instance_base: 3, ..RunOptions::default() })
        .run_single_seeds(&[3, 4]);
    assert_eq!(ra.output.instances, solo_a.instances);
    assert_eq!(rb.output.instances, solo_b.instances);
    assert!(svc.shutdown().fully_accounted());
}

#[test]
fn ctps_cache_is_shared_across_batches_and_conserved() {
    // Two sequential batches of the same static-bias algorithm: the
    // second re-hits tables the first built, the gauges obey the
    // conservation identities, and a cached service answers exactly
    // what a cache-disabled service answers.
    let svc = engine_service(ServiceConfig::default());
    let r1 =
        svc.submit(SamplingRequest::new(spec("biased-walk"), vec![0, 8])).unwrap().wait().unwrap();
    let mid = svc.stats();
    assert!(
        mid.cache_lookups > 0 && mid.cache_lookups == mid.cache_hits + mid.cache_misses,
        "{mid:?}"
    );
    let r2 =
        svc.submit(SamplingRequest::new(spec("biased-walk"), vec![0, 8])).unwrap().wait().unwrap();
    let snap = svc.shutdown();
    assert_eq!(snap.cache_lookups, snap.cache_hits + snap.cache_misses, "{snap:?}");
    assert!(snap.cache_hits > mid.cache_hits, "batch 2 must re-hit batch 1's tables: {snap:?}");
    assert!(snap.cache_bytes > 0);

    let bare = engine_service(ServiceConfig { ctps_cache_budget: 0, ..ServiceConfig::default() });
    let b1 =
        bare.submit(SamplingRequest::new(spec("biased-walk"), vec![0, 8])).unwrap().wait().unwrap();
    let b2 =
        bare.submit(SamplingRequest::new(spec("biased-walk"), vec![0, 8])).unwrap().wait().unwrap();
    let bare_snap = bare.shutdown();
    assert_eq!(bare_snap.cache_lookups, 0, "budget 0 must disable the cache: {bare_snap:?}");
    assert_eq!(r1.output.instances, b1.output.instances);
    assert_eq!(r2.output.instances, b2.output.instances);
}
