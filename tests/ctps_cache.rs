//! Integration tests for the hot-vertex CTPS cache: across every
//! runtime, a cached run must sample **bit-identical** edges to an
//! uncached run at every byte budget — the cache is a cost-model
//! optimization, never a semantics change — and its counters must obey
//! the conservation identities (`lookups == hits + misses`,
//! `bytes <= budget`).

use csaw::core::algorithms::registry::{AlgoSpec, AlgorithmId};
use csaw::core::algorithms::{BiasedNeighborSampling, BiasedRandomWalk, MultiDimRandomWalk};
use csaw::core::ctps_cache::CtpsCache;
use csaw::core::engine::{RunOptions, Sampler};
use csaw::gpu::config::DeviceConfig;
use csaw::graph::generators::{rmat, RmatParams};
use csaw::graph::{Csr, CsrBuilder, VertexId};
use csaw::oom::{MultiGpu, OomConfig, OomRunner, UnifiedRunner};
use proptest::prelude::*;
use std::sync::Arc;

/// Budgets spanning "evict constantly" to "everything fits": a few
/// entries, a fraction of the graph's CTPS bytes, and effectively
/// unlimited.
fn budget_sweep(g: &Csr) -> Vec<usize> {
    let full = g.num_edges() * 8;
    vec![256, full / 20 + 64, full / 4 + 64, 4 * full + 4096]
}

/// Engine: every registry algorithm, cached at every budget, samples
/// exactly what the uncached engine samples — instance order, edge
/// order, everything.
#[test]
fn engine_cached_output_is_bit_identical_at_every_budget() {
    let g = rmat(9, 8, RmatParams::MILD, 11);
    let n = g.num_vertices() as VertexId;
    let seeds: Vec<VertexId> = (0..48).map(|i| (i * 131) % n).collect();

    for id in AlgorithmId::ALL {
        let spec = if id.uses_walk_length() {
            AlgoSpec::new(id).with_depth(10)
        } else {
            AlgoSpec::new(id)
        };
        let algo = spec.build().expect("registry specs are valid");
        let baseline = Sampler::new(&g, &algo).run_single_seeds(&seeds);
        for budget in budget_sweep(&g) {
            let cache = Arc::new(CtpsCache::new(budget));
            let opts = RunOptions { ctps_cache: Some(Arc::clone(&cache)), ..RunOptions::default() };
            let cached = Sampler::new(&g, &algo).with_options(opts).run_single_seeds(&seeds);
            assert_eq!(
                cached.instances,
                baseline.instances,
                "{} at budget {budget}: cached run changed the sample",
                id.name()
            );
            let snap = cache.snapshot();
            assert!(snap.is_conserved(), "{} at budget {budget}: {snap:?}", id.name());
        }
    }
}

/// The cache's counters and the kernel's `SimStats` agree: every
/// static-bias selection is exactly one lookup, and every lookup is a
/// hit or a miss.
#[test]
fn cache_stats_are_conserved_and_match_sim_stats() {
    let g = rmat(9, 8, RmatParams::MILD, 13);
    let algo = BiasedRandomWalk { length: 16 };
    let seeds: Vec<VertexId> = (0..64).collect();

    let cache = Arc::new(CtpsCache::new(1 << 20));
    let opts = RunOptions { ctps_cache: Some(Arc::clone(&cache)), ..RunOptions::default() };
    let out = Sampler::new(&g, &algo).with_options(opts).run_single_seeds(&seeds);

    let snap = cache.snapshot();
    assert!(snap.is_conserved(), "{snap:?}");
    assert_eq!(
        out.stats.ctps_cache_hits + out.stats.ctps_cache_misses,
        snap.lookups,
        "kernel-side hit/miss accounting diverged from the cache's own: {snap:?}"
    );
    assert!(snap.hits > 0, "a 16-step walk over 64 instances must re-visit hot vertices");
    assert!(snap.bytes <= snap.budget);
    assert!(snap.entries > 0);
}

/// Under heavy eviction pressure (a budget of a few entries) the output
/// is still identical and the clock hand actually evicts.
#[test]
fn eviction_pressure_never_changes_the_sample() {
    let g = rmat(10, 8, RmatParams::GRAPH500, 17);
    let n = g.num_vertices() as VertexId;
    let algo = BiasedNeighborSampling { neighbor_size: 2, depth: 3 };
    let seeds: Vec<VertexId> = (0..64).map(|i| (i * 197) % n).collect();

    let baseline = Sampler::new(&g, &algo).run_single_seeds(&seeds);
    // ~6 average-degree entries across 16 shards: constant displacement.
    let cache = Arc::new(CtpsCache::new(1024));
    let opts = RunOptions { ctps_cache: Some(Arc::clone(&cache)), ..RunOptions::default() };
    let cached = Sampler::new(&g, &algo).with_options(opts).run_single_seeds(&seeds);

    assert_eq!(cached.instances, baseline.instances);
    let snap = cache.snapshot();
    assert!(snap.is_conserved(), "{snap:?}");
    assert!(
        snap.evictions > 0 || snap.admission_rejects > 0,
        "a 1 KiB budget on a power-law graph must displace entries: {snap:?}"
    );
}

/// Out-of-memory scheduler: per-stream cache shards (with epoch
/// invalidation across partition swaps) sample exactly what the
/// cache-less scheduler samples, on a device small enough to force
/// residency churn.
#[test]
fn oom_cached_output_is_bit_identical_across_partition_swaps() {
    let g = rmat(9, 6, RmatParams::GRAPH500, 19);
    let algo = BiasedNeighborSampling { neighbor_size: 2, depth: 3 };
    let seeds: Vec<VertexId> = (0..48).map(|i| i * 13 % 512).collect();
    let device = DeviceConfig::tiny(1 << 20);

    let base = OomRunner::new(&g, &algo, OomConfig::full()).with_device(device).run(&seeds);
    assert!(base.transfers > 0, "the tiny device must actually swap partitions");
    for budget in budget_sweep(&g) {
        let cached = OomRunner::new(&g, &algo, OomConfig::full())
            .with_device(device)
            .with_ctps_cache_budget(budget)
            .run(&seeds);
        assert_eq!(cached.instances, base.instances, "budget {budget} changed the OOM sample");
        assert_eq!(cached.transfers, base.transfers, "budget {budget} changed scheduling");
    }
}

/// Unified-memory comparator: demand paging plus the cache still equals
/// demand paging alone.
#[test]
fn unified_cached_output_is_bit_identical() {
    let g = rmat(9, 6, RmatParams::GRAPH500, 23);
    let algo = BiasedRandomWalk { length: 12 };
    let seeds: Vec<VertexId> = (0..32).collect();
    let device = DeviceConfig::tiny(1 << 20);

    let base = UnifiedRunner::new(&g, &algo, device).run(&seeds);
    for budget in budget_sweep(&g) {
        let cached =
            UnifiedRunner::new(&g, &algo, device).with_ctps_cache_budget(budget).run(&seeds);
        assert_eq!(cached.instances, base.instances, "budget {budget} changed the sample");
    }
}

/// Multi-GPU driver: one shared `Arc` cache across every device group
/// equals no cache at all.
#[test]
fn multi_gpu_shares_one_cache_without_changing_the_sample() {
    let g = rmat(9, 6, RmatParams::MILD, 29);
    let algo = BiasedRandomWalk { length: 10 };
    let seeds: Vec<VertexId> = (0..48).collect();

    let base = MultiGpu::new(3).run_single_seeds(&g, &algo, &seeds, RunOptions::default());
    for budget in budget_sweep(&g) {
        let cache = Arc::new(CtpsCache::new(budget));
        let opts = RunOptions { ctps_cache: Some(Arc::clone(&cache)), ..RunOptions::default() };
        let cached = MultiGpu::new(3).run_single_seeds(&g, &algo, &seeds, opts);
        assert_eq!(cached.instances, base.instances, "budget {budget} changed the sample");
        let snap = cache.snapshot();
        assert!(snap.is_conserved(), "{snap:?}");
        assert!(snap.lookups > 0, "three device groups must consult the shared cache");
    }
}

/// The pooled (MDRW) runtime's amortized pool-bias lane: engine and
/// out-of-memory pooled runs still agree edge-for-edge — the warm lane
/// is a cost-model change only.
#[test]
fn mdrw_amortized_pool_scan_keeps_engine_oom_parity() {
    let g = rmat(9, 6, RmatParams::GRAPH500, 31);
    let algo = MultiDimRandomWalk { budget: 24 };
    let seed_sets: Vec<Vec<VertexId>> =
        (0..6u32).map(|i| vec![i * 3, i * 3 + 1, 100 + i]).collect();

    let engine = Sampler::new(&g, &algo).run(&seed_sets);
    let oom = OomRunner::new(&g, &algo, OomConfig::full())
        .with_device(DeviceConfig::tiny(1 << 20))
        .run_pools(&seed_sets);
    assert_eq!(engine.instances, oom.instances);
}

fn arb_graph() -> impl Strategy<Value = Csr> {
    prop::collection::vec((0u32..64, 0u32..64), 1..260).prop_map(|edges| {
        CsrBuilder::new().with_num_vertices(64).symmetrize(true).extend_edges(edges).build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Engine, arbitrary graph/seeds/budget: cached == uncached,
    /// bit-for-bit, with conserved counters.
    #[test]
    fn prop_engine_cached_equals_uncached(
        g in arb_graph(),
        seeds in prop::collection::vec(0u32..64, 1..16),
        budget in 0usize..(1 << 22),
        depth in 2usize..8,
    ) {
        let algo = BiasedRandomWalk { length: depth };
        let base = Sampler::new(&g, &algo).run_single_seeds(&seeds);
        let cache = Arc::new(CtpsCache::new(budget));
        let opts = RunOptions { ctps_cache: Some(Arc::clone(&cache)), ..RunOptions::default() };
        let cached = Sampler::new(&g, &algo).with_options(opts).run_single_seeds(&seeds);
        prop_assert_eq!(cached.instances, base.instances);
        let snap = cache.snapshot();
        prop_assert!(snap.is_conserved(), "{:?}", snap);
    }

    /// OOM scheduler, arbitrary inputs: per-stream shards plus epoch
    /// invalidation never leak into the sample.
    #[test]
    fn prop_oom_cached_equals_uncached(
        g in arb_graph(),
        seeds in prop::collection::vec(0u32..64, 1..12),
        budget in 128usize..(1 << 20),
    ) {
        let algo = BiasedNeighborSampling { neighbor_size: 2, depth: 3 };
        let device = DeviceConfig::tiny(1 << 16);
        let base = OomRunner::new(&g, &algo, OomConfig::full())
            .with_device(device)
            .run(&seeds);
        let cached = OomRunner::new(&g, &algo, OomConfig::full())
            .with_device(device)
            .with_ctps_cache_budget(budget)
            .run(&seeds);
        prop_assert_eq!(cached.instances, base.instances);
    }
}
