//! The coalescing-invisibility property: however the service partitions
//! requests into batches — one per request, everything in one launch,
//! or anything between, on any executor — every request's response is
//! identical to a solo engine run of its seeds at its assigned
//! `instance_base`. This is the §V-C batching contract that makes the
//! service safe: RNG streams are keyed by global instance id, so the
//! batch around a request never changes what it samples.

use csaw::core::engine::{RunOptions, Sampler};
use csaw::core::AlgoSpec;
use csaw::graph::{Csr, CsrBuilder};
use csaw::oom::OomConfig;
use csaw::service::{
    MultiGpuExecutor, OomExecutor, SamplingRequest, SamplingService, ServiceConfig,
};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const N: u32 = 60;

fn arb_graph() -> impl Strategy<Value = Csr> {
    prop::collection::vec((0u32..N, 0u32..N), 40..240).prop_map(|edges| {
        CsrBuilder::new().with_num_vertices(N as usize).symmetrize(true).extend_edges(edges).build()
    })
}

/// (algorithm index, seeds, rng_seed) per request.
fn arb_requests() -> impl Strategy<Value = Vec<(usize, Vec<u32>, u64)>> {
    prop::collection::vec((0usize..3, prop::collection::vec(0u32..N, 1..4), 1u64..3), 1..6)
}

fn algo_spec(choice: usize) -> AlgoSpec {
    match choice {
        0 => AlgoSpec::by_name("simple-walk").unwrap().with_depth(6),
        1 => AlgoSpec::by_name("biased-walk").unwrap().with_depth(5),
        _ => AlgoSpec::by_name("neighbor").unwrap().with_depth(2),
    }
}

/// Submits every request to a paused service, resumes, and returns
/// per-request `(spec, seeds, rng_seed, instance_base, instances)`.
#[allow(clippy::type_complexity)]
fn serve(
    svc: &SamplingService,
    requests: &[(usize, Vec<u32>, u64)],
) -> Vec<(AlgoSpec, Vec<u32>, u64, u32, Vec<Vec<(u32, u32)>>)> {
    // Load-bearing collect: every submit must land while the service is
    // paused (one admission batch); fusing with the wait loop below
    // would interleave submits past resume().
    #[allow(clippy::needless_collect)]
    let tickets: Vec<_> = requests
        .iter()
        .map(|(choice, seeds, rng_seed)| {
            let spec = algo_spec(*choice);
            let ticket = svc
                .submit(SamplingRequest::new(spec, seeds.clone()).with_rng_seed(*rng_seed))
                .expect("valid request");
            (spec, seeds.clone(), *rng_seed, ticket)
        })
        .collect();
    svc.resume();
    tickets
        .into_iter()
        .map(|(spec, seeds, rng_seed, ticket)| {
            let resp = ticket.wait().expect("no deadline, healthy algo");
            (spec, seeds, rng_seed, resp.instance_base, resp.output.instances)
        })
        .collect()
}

fn solo_reference(
    g: &Csr,
    spec: AlgoSpec,
    seeds: &[u32],
    rng_seed: u64,
    instance_base: u32,
) -> Vec<Vec<(u32, u32)>> {
    let algo = spec.build().unwrap();
    Sampler::new(g, &algo)
        .with_options(RunOptions { seed: rng_seed, instance_base, ..RunOptions::default() })
        .run_single_seeds(seeds)
        .instances
}

fn sorted(mut instances: Vec<Vec<(u32, u32)>>) -> Vec<Vec<(u32, u32)>> {
    for inst in &mut instances {
        inst.sort_unstable();
    }
    instances
}

fn paused(max_batch_instances: usize) -> ServiceConfig {
    ServiceConfig {
        start_paused: true,
        max_batch_instances,
        batch_window: Duration::from_millis(1),
        ..ServiceConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Engine executor: any batch partition (driven by
    /// `max_batch_instances`, including forced single-request batches)
    /// yields bit-identical per-request edges to solo runs.
    #[test]
    fn any_partition_matches_solo_runs(
        g in arb_graph(),
        requests in arb_requests(),
        max_batch in 1usize..10,
    ) {
        let g = Arc::new(g);
        let svc = SamplingService::with_engine(Arc::clone(&g), paused(max_batch));
        for (spec, seeds, rng_seed, base, served) in serve(&svc, &requests) {
            let solo = solo_reference(&g, spec, &seeds, rng_seed, base);
            prop_assert_eq!(&served, &solo, "batched run diverged from solo (base {})", base);
        }
        let snap = svc.shutdown();
        prop_assert!(snap.fully_accounted(), "{:?}", snap);
    }

    /// Multi-GPU executor: splitting each batch across simulated
    /// devices composes with coalescing — responses still match solo
    /// single-device runs exactly.
    #[test]
    fn multi_gpu_split_matches_solo_runs(
        g in arb_graph(),
        requests in arb_requests(),
        num_gpus in 2usize..5,
    ) {
        let g = Arc::new(g);
        let svc = SamplingService::new(
            Arc::clone(&g),
            Arc::new(MultiGpuExecutor::new(num_gpus)),
            paused(8),
        );
        for (spec, seeds, rng_seed, base, served) in serve(&svc, &requests) {
            let solo = solo_reference(&g, spec, &seeds, rng_seed, base);
            prop_assert_eq!(&served, &solo, "multi-GPU split diverged (base {})", base);
        }
        prop_assert!(svc.shutdown().fully_accounted());
    }

    /// Out-of-memory executor: the partition-streaming runtime samples
    /// the same per-instance edge multisets (stream interleaving may
    /// reorder edges within an instance, so comparison is order-free).
    #[test]
    fn oom_runtime_matches_solo_runs_as_multisets(
        g in arb_graph(),
        requests in arb_requests(),
    ) {
        let g = Arc::new(g);
        let svc = SamplingService::new(
            Arc::clone(&g),
            Arc::new(OomExecutor::new(OomConfig::full())),
            paused(16),
        );
        for (spec, seeds, rng_seed, base, served) in serve(&svc, &requests) {
            let solo = solo_reference(&g, spec, &seeds, rng_seed, base);
            prop_assert_eq!(sorted(served), sorted(solo), "OOM runtime diverged (base {})", base);
        }
        prop_assert!(svc.shutdown().fully_accounted());
    }

    /// Wire transport: responses fetched over the TCP codec — both the
    /// single-response path and the chunked streaming path — are
    /// bit-identical to solo engine runs at the reported instance base,
    /// and streamed chunks reassemble to exactly the unsplit response.
    #[test]
    fn wire_responses_match_solo_runs(
        g in arb_graph(),
        requests in arb_requests(),
        chunk in 1u32..4,
    ) {
        use csaw::serve::{Client, CsawServer, ServeConfig, WireAlgo};

        let g = Arc::new(g);
        let svc = SamplingService::with_engine(Arc::clone(&g), ServiceConfig::default());
        let server = CsawServer::start(
            svc,
            ServeConfig { metrics_addr: None, ..ServeConfig::default() },
        ).expect("bind loopback");
        let mut client = Client::connect(server.addr(), "prop").expect("connect");

        for (choice, seeds, rng_seed) in &requests {
            let spec = algo_spec(*choice);
            let wire_algo = match *choice {
                0 => WireAlgo::by_name("simple-walk").with_depth(6),
                1 => WireAlgo::by_name("biased-walk").with_depth(5),
                _ => WireAlgo::by_name("neighbor").with_depth(2),
            };

            let resp = client
                .sample(wire_algo.clone(), seeds.clone(), *rng_seed, None)
                .expect("wire sample");
            let solo = solo_reference(&g, spec, seeds, *rng_seed, resp.instance_base);
            prop_assert_eq!(
                &resp.instances, &solo,
                "wire response diverged from solo (base {})", resp.instance_base
            );

            let streamed = client
                .sample_streamed(wire_algo, seeds.clone(), *rng_seed, chunk, |_| {})
                .expect("streamed sample");
            let solo = solo_reference(&g, spec, seeds, *rng_seed, streamed.instance_base);
            prop_assert_eq!(
                &streamed.reassemble(), &solo,
                "reassembled stream diverged from solo (base {})", streamed.instance_base
            );
        }

        client.goodbye().expect("goodbye");
        prop_assert!(server.shutdown().stats().fully_accounted());
    }
}
