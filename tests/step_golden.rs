//! Golden-output snapshot of every Table-I algorithm through the shared
//! `StepKernel` on the paper's Fig. 1 toy graph.
//!
//! With draws keyed by `(instance, depth, vertex, trial)` the sampled
//! edges are a pure function of `(graph, algorithm, seeds, rng seed)` —
//! independent of runtime, scheduling policy, and thread count. That
//! makes the exact output pinnable: if any future change alters these
//! literals, it has changed the sampling semantics (keying, hook order,
//! candidate order, or SELECT), not just performance, and the snapshot
//! below must be regenerated **deliberately**.
//!
//! Regenerate with:
//! `cargo test --test step_golden -- --ignored print_golden --nocapture`

use csaw::core::algorithms::{
    BiasedNeighborSampling, BiasedRandomWalk, ForestFire, LayerSampling, MetropolisHastingsWalk,
    MultiDimRandomWalk, MultiIndependentRandomWalk, Node2Vec, RandomWalkWithJump,
    RandomWalkWithRestart, SimpleRandomWalk, Snowball, UnbiasedNeighborSampling,
};
use csaw::core::api::Algorithm;
use csaw::core::engine::{ExecMode, RunOptions, Sampler};
use csaw::graph::generators::toy_graph;

/// Runs one algorithm on the toy graph and formats its instances as one
/// snapshot line: `name: (a-b a-c ...) (d-e ...)`.
fn snapshot_line_opts<A: Algorithm>(algo: &A, seed_sets: &[Vec<u32>], opts: RunOptions) -> String {
    let g = toy_graph();
    let out = Sampler::new(&g, algo).with_options(opts).run(seed_sets);
    let insts: Vec<String> = out
        .instances
        .iter()
        .map(|edges| {
            let e: Vec<String> = edges.iter().map(|(v, u)| format!("{v}-{u}")).collect();
            format!("({})", e.join(" "))
        })
        .collect();
    format!("{}: {}", algo.name(), insts.join(" "))
}

/// All thirteen Table-I algorithms with small fixed parameters, two
/// instances each (seeds 0 and 8; two 3-vertex pools for the
/// pool-frontier algorithms), under `opts` — the pinned snapshot is
/// produced with the defaults, and [`ExecMode::DepthSync`] must
/// reproduce it bit-for-bit.
fn snapshot_with(opts: &RunOptions) -> String {
    let singles: Vec<Vec<u32>> = vec![vec![0], vec![8]];
    let pools: Vec<Vec<u32>> = vec![vec![0, 5, 8], vec![2, 7, 12]];
    let line =
        |algo: &dyn Algorithm, sets: &[Vec<u32>]| snapshot_line_opts(&algo, sets, opts.clone());
    let mut lines = vec![
        line(&SimpleRandomWalk { length: 4 }, &singles),
        line(&MetropolisHastingsWalk { length: 4 }, &singles),
        line(&RandomWalkWithJump { length: 4, p_jump: 0.25 }, &singles),
        line(&RandomWalkWithRestart { length: 4, p_restart: 0.25 }, &singles),
        line(&MultiIndependentRandomWalk { length: 4 }, &singles),
        line(&BiasedRandomWalk { length: 4 }, &singles),
        line(&Node2Vec { length: 4, p: 0.5, q: 2.0 }, &singles),
        line(&UnbiasedNeighborSampling { neighbor_size: 2, depth: 2 }, &singles),
        line(&BiasedNeighborSampling { neighbor_size: 2, depth: 2 }, &singles),
        line(&ForestFire { pf: 0.6, depth: 2 }, &singles),
        line(&Snowball { depth: 2 }, &singles),
        line(&LayerSampling { layer_size: 3, depth: 2 }, &pools),
        line(&MultiDimRandomWalk { budget: 5 }, &pools),
    ];
    lines.push(String::new());
    lines.join("\n")
}

fn snapshot() -> String {
    snapshot_with(&RunOptions::default())
}

/// The pinned snapshot. Every line is two instances of one algorithm on
/// `toy_graph()` with the default RNG seed (`0x5eed`).
const GOLDEN: &str = "\
simple-random-walk: (0-6 6-7 7-6 6-0) (8-5 5-7 7-0 0-1)
metropolis-hastings-walk: (0-6 6-7 7-6 6-0) (8-5 5-7 7-0 0-1)
random-walk-with-jump: (0-6 8-9 9-8 8-7) (8-5 5-7 8-7 7-5)
random-walk-with-restart: (0-6 0-7 7-6 6-0) (8-5 5-7 8-7 7-5)
multi-independent-random-walk: (0-6 6-7 7-6 6-0) (8-5 5-7 7-0 0-1)
biased-random-walk: (0-7 7-5 5-8 8-7) (8-5 5-7 7-0 0-6)
node2vec: (0-6 6-7 7-6 6-7) (8-5 5-8 8-5 5-7)
unbiased-neighbor-sampling: (0-6 0-1 6-0 6-7 1-0 1-2) (8-5 8-9 5-7 5-4 9-8 9-12)
biased-neighbor-sampling: (0-7 0-1 7-5 7-8 1-0 1-2) (8-5 8-7 5-7 5-4 7-4 7-3)
forest-fire: (0-6 0-7 7-4) (8-7 8-9 8-10 8-11 7-0 7-3 7-4 7-5 7-6 7-8 10-8)
snowball: (0-1 0-6 0-7 1-0 1-2 6-0 6-7 7-0 7-3 7-4 7-5 7-6 7-8) (8-5 8-7 8-9 8-10 8-11 5-4 5-7 5-8 7-0 7-3 7-4 7-5 7-6 7-8 9-8 9-12 10-8 10-12 11-8 11-12)
layer-sampling: (8-9 8-10 0-7 9-8 7-5 7-4) (7-0 7-8 7-3 0-1 8-9 8-7)
multi-dimensional-random-walk: (8-11 0-1 11-8 8-7 5-4) (7-6 2-3 6-0 0-7 7-3)
";

#[test]
fn table_one_outputs_are_pinned() {
    let got = snapshot();
    assert_eq!(
        got, GOLDEN,
        "Table-I outputs changed — this is a sampling-semantics change, \
         not a perf change. If intentional, regenerate the snapshot \
         (see module docs) and document the break in DESIGN.md.\n\
         --- got ---\n{got}"
    );
}

/// Depth-synchronous execution is a schedule change, not a semantics
/// change: all thirteen algorithms must reproduce the pinned snapshot
/// bit-for-bit under `ExecMode::DepthSync`, at any chunk size and with
/// prefetching on or off.
#[test]
fn depth_sync_reproduces_the_pinned_golden() {
    for (chunk, prefetch) in [(None, 8), (Some(1), 0), (Some(2), 1)] {
        let opts = RunOptions {
            exec: ExecMode::DepthSync,
            prefetch_distance: prefetch,
            batch_chunk: chunk,
            ..Default::default()
        };
        let got = snapshot_with(&opts);
        assert_eq!(
            got, GOLDEN,
            "depth-sync (chunk {chunk:?}, prefetch {prefetch}) diverged from the \
             instance-major golden — execution order has leaked into sampling \
             semantics.\n--- got ---\n{got}"
        );
    }
}

/// Prints the current snapshot for regeneration (see module docs).
#[test]
#[ignore = "generator, not a check"]
fn print_golden() {
    println!("{}", snapshot());
}

mod shared_scratch {
    //! `StepScratch` carries no sampling state between calls — only
    //! capacity. Interleaving two different algorithms through one shared
    //! arena must therefore be bit-identical to running each with a fresh
    //! arena per step.

    use csaw::core::algorithms::{BiasedRandomWalk, SimpleRandomWalk};
    use csaw::core::api::Algorithm;
    use csaw::core::select::SelectConfig;
    use csaw::core::step::{
        CsrAccess, PoolSink, PoolSlot, StepEntry, StepKernel, StepScratch, TrialCounter,
    };
    use csaw::gpu::stats::SimStats;
    use csaw::graph::generators::toy_graph;
    use csaw::graph::VertexId;
    use std::collections::HashSet;

    /// One walker's driver state (per-vertex frontier, single seed).
    struct Walk {
        pool: Vec<PoolSlot>,
        frontier: Vec<PoolSlot>,
        visited: HashSet<VertexId>,
        out: Vec<(VertexId, VertexId)>,
        trials: TrialCounter,
    }

    impl Walk {
        fn new(seed: VertexId) -> Self {
            Walk {
                pool: vec![PoolSlot::seed(seed)],
                frontier: Vec::new(),
                visited: HashSet::new(),
                out: Vec::new(),
                trials: TrialCounter::new(),
            }
        }

        /// Expands one depth level through `scratch`. `inst` is the
        /// RNG-keying instance index (matches the engine's chunk index).
        #[allow(clippy::too_many_arguments)]
        fn step(
            &mut self,
            kernel: &StepKernel<'_>,
            g: &csaw::graph::Csr,
            inst: u32,
            home: VertexId,
            depth: u32,
            scratch: &mut StepScratch,
            stats: &mut SimStats,
        ) {
            let cfg = *kernel.cfg();
            let detector = kernel.select().detector;
            let mut access = CsrAccess { graph: g };
            std::mem::swap(&mut self.pool, &mut self.frontier);
            self.pool.clear();
            self.trials.reset();
            for i in 0..self.frontier.len() {
                let slot = self.frontier[i];
                let entry = StepEntry {
                    instance: inst,
                    depth,
                    vertex: slot.vertex,
                    prev: slot.prev,
                    trial: self.trials.next(inst, slot.vertex),
                };
                let mut sink = PoolSink {
                    cfg: &cfg,
                    detector,
                    visited: &mut self.visited,
                    next: &mut self.pool,
                    out: &mut self.out,
                };
                kernel.expand(&mut access, &entry, home, &mut sink, scratch, stats);
            }
        }
    }

    type Edges = Vec<(VertexId, VertexId)>;

    /// Runs `a` and `b` lockstep-interleaved (a step, b step, a step, ...),
    /// either through one shared scratch or a fresh scratch per step.
    fn interleave<A: Algorithm, B: Algorithm>(a: &A, b: &B, shared: bool) -> (Edges, Edges) {
        let g = toy_graph();
        let ka = StepKernel::new(a, 0x5eed).with_select(SelectConfig::paper_best());
        let kb = StepKernel::new(b, 0x5eed).with_select(SelectConfig::paper_best());
        let (seed_a, seed_b) = (0, 8);
        let mut wa = Walk::new(seed_a);
        let mut wb = Walk::new(seed_b);
        let mut stats = SimStats::new();
        let mut scratch = StepScratch::new();
        let depth = a.config().depth.max(b.config().depth) as u32;
        // Instance indices 0 and 1 match the engine's chunk keying for
        // seed sets `[[0], [8]]`, so the outputs line up with GOLDEN.
        for d in 0..depth {
            if shared {
                wa.step(&ka, &g, 0, seed_a, d, &mut scratch, &mut stats);
                wb.step(&kb, &g, 1, seed_b, d, &mut scratch, &mut stats);
            } else {
                wa.step(&ka, &g, 0, seed_a, d, &mut StepScratch::new(), &mut stats);
                wb.step(&kb, &g, 1, seed_b, d, &mut StepScratch::new(), &mut stats);
            }
        }
        (wa.out, wb.out)
    }

    /// A uniform-bias and a degree-biased algorithm interleaved through
    /// ONE shared `StepScratch`: outputs must be bit-identical to fresh
    /// per-step arenas. The pair exercises both `fill_biases` paths (the
    /// uniform resize fast path and the mapped EDGEBIAS path) against the
    /// same reused buffers.
    #[test]
    fn interleaved_algorithms_share_one_scratch_bit_identically() {
        let simple = SimpleRandomWalk { length: 4 };
        let biased = BiasedRandomWalk { length: 4 };
        let (sa, sb) = interleave(&simple, &biased, true);
        let (fa, fb) = interleave(&simple, &biased, false);
        assert!(!sa.is_empty() && !sb.is_empty(), "both walks must sample edges");
        assert_eq!(sa, fa, "shared-scratch simple-walk diverged from fresh-scratch");
        assert_eq!(sb, fb, "shared-scratch biased-walk diverged from fresh-scratch");
        // And against the engine-pinned golden above: same keying, same
        // outputs, proving the direct driver is the same sampling process.
        let golden_simple: Vec<(u32, u32)> = vec![(0, 6), (6, 7), (7, 6), (6, 0)];
        let golden_biased: Vec<(u32, u32)> = vec![(8, 5), (5, 7), (7, 0), (0, 6)];
        assert_eq!(sa, golden_simple);
        assert_eq!(sb, golden_biased);
    }
}
