//! Golden-output snapshot of every Table-I algorithm through the shared
//! `StepKernel` on the paper's Fig. 1 toy graph.
//!
//! With draws keyed by `(instance, depth, vertex, trial)` the sampled
//! edges are a pure function of `(graph, algorithm, seeds, rng seed)` —
//! independent of runtime, scheduling policy, and thread count. That
//! makes the exact output pinnable: if any future change alters these
//! literals, it has changed the sampling semantics (keying, hook order,
//! candidate order, or SELECT), not just performance, and the snapshot
//! below must be regenerated **deliberately**.
//!
//! Regenerate with:
//! `cargo test --test step_golden -- --ignored print_golden --nocapture`

use csaw::core::algorithms::{
    BiasedNeighborSampling, BiasedRandomWalk, ForestFire, LayerSampling, MetropolisHastingsWalk,
    MultiDimRandomWalk, MultiIndependentRandomWalk, Node2Vec, RandomWalkWithJump,
    RandomWalkWithRestart, SimpleRandomWalk, Snowball, UnbiasedNeighborSampling,
};
use csaw::core::api::Algorithm;
use csaw::core::engine::Sampler;
use csaw::graph::generators::toy_graph;

/// Runs one algorithm on the toy graph and formats its instances as one
/// snapshot line: `name: (a-b a-c ...) (d-e ...)`.
fn snapshot_line<A: Algorithm>(algo: &A, seed_sets: &[Vec<u32>]) -> String {
    let g = toy_graph();
    let out = Sampler::new(&g, algo).run(seed_sets);
    let insts: Vec<String> = out
        .instances
        .iter()
        .map(|edges| {
            let e: Vec<String> = edges.iter().map(|(v, u)| format!("{v}-{u}")).collect();
            format!("({})", e.join(" "))
        })
        .collect();
    format!("{}: {}", algo.name(), insts.join(" "))
}

/// All thirteen Table-I algorithms with small fixed parameters, two
/// instances each (seeds 0 and 8; two 3-vertex pools for the
/// pool-frontier algorithms).
fn snapshot() -> String {
    let singles: Vec<Vec<u32>> = vec![vec![0], vec![8]];
    let pools: Vec<Vec<u32>> = vec![vec![0, 5, 8], vec![2, 7, 12]];
    let mut lines = vec![
        snapshot_line(&SimpleRandomWalk { length: 4 }, &singles),
        snapshot_line(&MetropolisHastingsWalk { length: 4 }, &singles),
        snapshot_line(&RandomWalkWithJump { length: 4, p_jump: 0.25 }, &singles),
        snapshot_line(&RandomWalkWithRestart { length: 4, p_restart: 0.25 }, &singles),
        snapshot_line(&MultiIndependentRandomWalk { length: 4 }, &singles),
        snapshot_line(&BiasedRandomWalk { length: 4 }, &singles),
        snapshot_line(&Node2Vec { length: 4, p: 0.5, q: 2.0 }, &singles),
        snapshot_line(&UnbiasedNeighborSampling { neighbor_size: 2, depth: 2 }, &singles),
        snapshot_line(&BiasedNeighborSampling { neighbor_size: 2, depth: 2 }, &singles),
        snapshot_line(&ForestFire { pf: 0.6, depth: 2 }, &singles),
        snapshot_line(&Snowball { depth: 2 }, &singles),
        snapshot_line(&LayerSampling { layer_size: 3, depth: 2 }, &pools),
        snapshot_line(&MultiDimRandomWalk { budget: 5 }, &pools),
    ];
    lines.push(String::new());
    lines.join("\n")
}

/// The pinned snapshot. Every line is two instances of one algorithm on
/// `toy_graph()` with the default RNG seed (`0x5eed`).
const GOLDEN: &str = "\
simple-random-walk: (0-6 6-7 7-6 6-0) (8-5 5-7 7-0 0-1)
metropolis-hastings-walk: (0-6 6-7 7-6 6-0) (8-5 5-7 7-0 0-1)
random-walk-with-jump: (0-6 8-9 9-8 8-7) (8-5 5-7 8-7 7-5)
random-walk-with-restart: (0-6 0-7 7-6 6-0) (8-5 5-7 8-7 7-5)
multi-independent-random-walk: (0-6 6-7 7-6 6-0) (8-5 5-7 7-0 0-1)
biased-random-walk: (0-7 7-5 5-8 8-7) (8-5 5-7 7-0 0-6)
node2vec: (0-6 6-7 7-6 6-7) (8-5 5-8 8-5 5-7)
unbiased-neighbor-sampling: (0-6 0-1 6-0 6-7 1-0 1-2) (8-5 8-9 5-7 5-4 9-8 9-12)
biased-neighbor-sampling: (0-7 0-1 7-5 7-8 1-0 1-2) (8-5 8-7 5-7 5-4 7-4 7-3)
forest-fire: (0-6 0-7 7-4) (8-7 8-9 8-10 8-11 7-0 7-3 7-4 7-5 7-6 7-8 10-8)
snowball: (0-1 0-6 0-7 1-0 1-2 6-0 6-7 7-0 7-3 7-4 7-5 7-6 7-8) (8-5 8-7 8-9 8-10 8-11 5-4 5-7 5-8 7-0 7-3 7-4 7-5 7-6 7-8 9-8 9-12 10-8 10-12 11-8 11-12)
layer-sampling: (8-9 8-10 0-7 9-8 7-5 7-4) (7-0 7-8 7-3 0-1 8-9 8-7)
multi-dimensional-random-walk: (8-11 0-1 11-8 8-7 5-4) (7-6 2-3 6-0 0-7 7-3)
";

#[test]
fn table_one_outputs_are_pinned() {
    let got = snapshot();
    assert_eq!(
        got, GOLDEN,
        "Table-I outputs changed — this is a sampling-semantics change, \
         not a perf change. If intentional, regenerate the snapshot \
         (see module docs) and document the break in DESIGN.md.\n\
         --- got ---\n{got}"
    );
}

/// Prints the current snapshot for regeneration (see module docs).
#[test]
#[ignore = "generator, not a check"]
fn print_golden() {
    println!("{}", snapshot());
}
