//! Integration tests for the out-of-memory runtime against the in-memory
//! engine and across its own configurations.

use csaw::core::algorithms::{BiasedRandomWalk, UnbiasedNeighborSampling};
use csaw::core::engine::Sampler;
use csaw::graph::generators::{rmat, RmatParams};
use csaw::gpu::config::DeviceConfig;
use csaw::oom::{OomConfig, OomRunner};

fn canon(instances: &[Vec<(u32, u32)>]) -> Vec<Vec<(u32, u32)>> {
    instances
        .iter()
        .map(|i| {
            let mut e = i.clone();
            e.sort_unstable();
            e
        })
        .collect()
}

#[test]
fn oom_configs_produce_identical_samples() {
    let g = rmat(10, 6, RmatParams::GRAPH500, 21);
    let algo = UnbiasedNeighborSampling { neighbor_size: 2, depth: 3 };
    let seeds: Vec<u32> = (0..64).map(|i| i * 13 % 1024).collect();
    let outs: Vec<_> = OomConfig::figure13_ladder()
        .iter()
        .map(|(_, cfg)| {
            OomRunner::new(&g, &algo, *cfg)
                .with_device(DeviceConfig::tiny(1 << 20))
                .run(&seeds)
        })
        .collect();
    for o in &outs[1..] {
        assert_eq!(canon(&outs[0].instances), canon(&o.instances));
    }
}

#[test]
fn partition_count_does_not_change_samples() {
    let g = rmat(9, 6, RmatParams::GRAPH500, 22);
    let algo = UnbiasedNeighborSampling { neighbor_size: 2, depth: 3 };
    let seeds: Vec<u32> = (0..32).collect();
    let mut reference = None;
    for parts in [2usize, 3, 4, 8] {
        let cfg = OomConfig {
            num_partitions: parts,
            resident_partitions: 2,
            ..OomConfig::full()
        };
        let out = OomRunner::new(&g, &algo, cfg).run(&seeds);
        let c = canon(&out.instances);
        match &reference {
            None => reference = Some(c),
            Some(r) => assert_eq!(r, &c, "{parts} partitions changed the sample"),
        }
    }
}

#[test]
fn oom_walk_statistics_match_in_memory_engine() {
    // Different RNG keying schemes mean samples differ individually, but
    // aggregate statistics must agree: same walk lengths, and similar
    // visit distribution over a biased walk.
    let g = rmat(9, 8, RmatParams::GRAPH500, 23);
    let algo = BiasedRandomWalk { length: 20 };
    let seeds: Vec<u32> = (0..256).map(|i| i * 7 % 512).collect();

    let mem = Sampler::new(&g, &algo).run_single_seeds(&seeds);
    let oom = OomRunner::new(&g, &algo, OomConfig::full()).run(&seeds);

    assert_eq!(mem.instances.len(), oom.instances.len());
    // Both should complete (almost) all walks on this connected-ish graph.
    let mem_total = mem.sampled_edges() as f64;
    let oom_total = oom.sampled_edges() as f64;
    assert!(
        (mem_total - oom_total).abs() / mem_total < 0.05,
        "edge totals diverge: {mem_total} vs {oom_total}"
    );

    // Degree-biased walks concentrate on hubs in both engines: compare the
    // fraction of visits landing on the top-1% degree vertices.
    let hub_frac = |instances: &[Vec<(u32, u32)>]| {
        let mut degs: Vec<(usize, u32)> =
            (0..g.num_vertices() as u32).map(|v| (g.degree(v), v)).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        let hubs: std::collections::HashSet<u32> =
            degs[..g.num_vertices() / 100].iter().map(|&(_, v)| v).collect();
        let total: usize = instances.iter().map(Vec::len).sum();
        let hub: usize = instances
            .iter()
            .flatten()
            .filter(|&&(_, u)| hubs.contains(&u))
            .count();
        hub as f64 / total as f64
    };
    let a = hub_frac(&mem.instances);
    let b = hub_frac(&oom.instances);
    assert!((a - b).abs() < 0.05, "hub visit fractions diverge: {a} vs {b}");
}

#[test]
fn oom_respects_memory_budget() {
    // With 4 partitions and room for 2, at most 2 are ever resident, and
    // transfers happen; with room for all 4, each partition transfers at
    // most once.
    let g = rmat(9, 6, RmatParams::GRAPH500, 24);
    let algo = UnbiasedNeighborSampling { neighbor_size: 2, depth: 3 };
    let seeds: Vec<u32> = (0..64).collect();

    let tight = OomRunner::new(&g, &algo, OomConfig::full()).run(&seeds);
    let roomy = OomRunner::new(
        &g,
        &algo,
        OomConfig { resident_partitions: 4, ..OomConfig::full() },
    )
    .run(&seeds);
    assert!(roomy.transfers <= 4, "roomy device re-transfers: {}", roomy.transfers);
    assert!(tight.transfers >= roomy.transfers);
}

#[test]
fn multi_gpu_and_oom_compose_with_engine_outputs() {
    use csaw::core::engine::RunOptions;
    use csaw::oom::MultiGpu;
    let g = rmat(9, 4, RmatParams::MILD, 25);
    let algo = BiasedRandomWalk { length: 8 };
    let seeds: Vec<u32> = (0..48).collect();
    let mg = MultiGpu::new(3).run_single_seeds(&g, &algo, &seeds, RunOptions::default());
    assert_eq!(mg.instances.len(), 48);
    assert_eq!(
        mg.sampled_edges,
        mg.instances.iter().map(|i| i.len() as u64).sum::<u64>()
    );
}
