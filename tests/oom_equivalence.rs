//! Integration tests for the out-of-memory runtime against the in-memory
//! engine and across its own configurations.

use csaw::core::algorithms::{BiasedRandomWalk, UnbiasedNeighborSampling};
use csaw::core::engine::Sampler;
use csaw::gpu::config::DeviceConfig;
use csaw::graph::generators::{rmat, RmatParams};
use csaw::oom::{OomConfig, OomRunner};

fn canon(instances: &[Vec<(u32, u32)>]) -> Vec<Vec<(u32, u32)>> {
    instances
        .iter()
        .map(|i| {
            let mut e = i.clone();
            e.sort_unstable();
            e
        })
        .collect()
}

#[test]
fn oom_configs_produce_identical_samples() {
    let g = rmat(10, 6, RmatParams::GRAPH500, 21);
    let algo = UnbiasedNeighborSampling { neighbor_size: 2, depth: 3 };
    let seeds: Vec<u32> = (0..64).map(|i| i * 13 % 1024).collect();
    let outs: Vec<_> = OomConfig::figure13_ladder()
        .iter()
        .map(|(_, cfg)| {
            OomRunner::new(&g, &algo, *cfg).with_device(DeviceConfig::tiny(1 << 20)).run(&seeds)
        })
        .collect();
    for o in &outs[1..] {
        assert_eq!(canon(&outs[0].instances), canon(&o.instances));
    }
}

#[test]
fn partition_count_does_not_change_samples() {
    let g = rmat(9, 6, RmatParams::GRAPH500, 22);
    let algo = UnbiasedNeighborSampling { neighbor_size: 2, depth: 3 };
    let seeds: Vec<u32> = (0..32).collect();
    let mut reference = None;
    for parts in [2usize, 3, 4, 8] {
        let cfg = OomConfig { num_partitions: parts, resident_partitions: 2, ..OomConfig::full() };
        let out = OomRunner::new(&g, &algo, cfg).run(&seeds);
        let c = canon(&out.instances);
        match &reference {
            None => reference = Some(c),
            Some(r) => assert_eq!(r, &c, "{parts} partitions changed the sample"),
        }
    }
}

/// Asserts that every out-of-memory scheduling policy (the Fig. 13
/// optimization ladder plus the serial reference path) samples exactly —
/// per instance, as an edge multiset — what the in-memory engine samples.
///
/// This is the payoff of keying every RNG draw by
/// `(instance, depth, vertex, trial)` and funneling every runtime through
/// the one `StepKernel`: scheduling order (partition queues, batching,
/// workload-aware transfers, host thread counts) can no longer leak into
/// the sample.
fn assert_exact_equivalence<A: csaw::core::api::Algorithm>(algo: &A, graph_seed: u64, label: &str) {
    let g = rmat(9, 6, RmatParams::GRAPH500, graph_seed);
    let seeds: Vec<u32> = (0..48).map(|i| i * 13 % 512).collect();
    let mem = canon(&Sampler::new(&g, algo).run_single_seeds(&seeds).instances);
    let device = DeviceConfig::tiny(1 << 20);
    for (name, cfg) in OomConfig::figure13_ladder() {
        let oom = OomRunner::new(&g, algo, cfg).with_device(device).run(&seeds);
        assert_eq!(canon(&oom.instances), mem, "{label} under {name} diverged from the engine");
    }
    let serial =
        OomRunner::new(&g, algo, OomConfig::full().serial()).with_device(device).run(&seeds);
    assert_eq!(canon(&serial.instances), mem, "{label} (serial) diverged from the engine");
}

#[test]
fn oom_samples_exactly_match_the_engine_neighbor_sampling() {
    assert_exact_equivalence(
        &UnbiasedNeighborSampling { neighbor_size: 2, depth: 3 },
        23,
        "unbiased neighbor sampling",
    );
    assert_exact_equivalence(
        &csaw::core::algorithms::BiasedNeighborSampling { neighbor_size: 2, depth: 3 },
        23,
        "biased neighbor sampling",
    );
    assert_exact_equivalence(
        &csaw::core::algorithms::ForestFire { pf: 0.6, depth: 3 },
        23,
        "forest fire",
    );
}

#[test]
fn oom_samples_exactly_match_the_engine_walks() {
    assert_exact_equivalence(&BiasedRandomWalk { length: 12 }, 27, "biased random walk");
    assert_exact_equivalence(
        &csaw::core::algorithms::RandomWalkWithRestart { length: 12, p_restart: 0.2 },
        27,
        "random walk with restart",
    );
    assert_exact_equivalence(
        &csaw::core::algorithms::MetropolisHastingsWalk { length: 12 },
        27,
        "metropolis-hastings walk",
    );
    // Second-order bias: `prev` must survive the outbox round trip.
    assert_exact_equivalence(
        &csaw::core::algorithms::Node2Vec { length: 10, p: 0.25, q: 2.0 },
        27,
        "node2vec",
    );
}

#[test]
fn oom_respects_memory_budget() {
    // With 4 partitions and room for 2, at most 2 are ever resident, and
    // transfers happen; with room for all 4, each partition transfers at
    // most once.
    let g = rmat(9, 6, RmatParams::GRAPH500, 24);
    let algo = UnbiasedNeighborSampling { neighbor_size: 2, depth: 3 };
    let seeds: Vec<u32> = (0..64).collect();

    let tight = OomRunner::new(&g, &algo, OomConfig::full()).run(&seeds);
    let roomy =
        OomRunner::new(&g, &algo, OomConfig { resident_partitions: 4, ..OomConfig::full() })
            .run(&seeds);
    assert!(roomy.transfers <= 4, "roomy device re-transfers: {}", roomy.transfers);
    assert!(tight.transfers >= roomy.transfers);
}

/// The host-parallel OOM runtime is deterministic **by construction**:
/// each stream task owns its partition's queue and visited shard, every
/// RNG draw is keyed by `(instance, depth, vertex)`, and cross-partition
/// frontier insertions are staged in per-stream outboxes merged at the
/// round barrier in fixed (stream, entry) order. The rayon pool size
/// therefore cannot change any observable output — and neither can
/// disabling host parallelism entirely (`OomConfig::serial`, the serial
/// reference path), for both the single-device scheduler and the
/// multi-GPU driver. Every field is compared bit-exactly, including the
/// simulated timings.
#[test]
fn oom_runtime_is_deterministic_across_thread_counts() {
    use csaw::oom::{MultiGpu, MultiGpuOomOutput, OomOutput};
    let g = rmat(10, 6, RmatParams::GRAPH500, 26);
    let algo = UnbiasedNeighborSampling { neighbor_size: 2, depth: 3 };
    let seeds: Vec<u32> = (0..96).map(|i| i * 11 % 1024).collect();

    let single = |cfg: OomConfig| {
        OomRunner::new(&g, &algo, cfg).with_device(DeviceConfig::tiny(1 << 20)).run(&seeds)
    };
    let multi = |cfg: OomConfig| MultiGpu::new(3).run_oom(&g, &algo, &seeds, cfg);
    let f64_bits = |v: &[f64]| v.iter().map(|s| s.to_bits()).collect::<Vec<u64>>();

    // Reference: the default host-parallel config on the ambient pool.
    let base = single(OomConfig::full());
    let base_mg = multi(OomConfig::full());

    let check = |o: &OomOutput, label: &str| {
        assert_eq!(o.instances, base.instances, "{label}: instances");
        assert_eq!(o.stats, base.stats, "{label}: stats");
        assert_eq!(o.transfers, base.transfers, "{label}: transfers");
        assert_eq!(o.rounds, base.rounds, "{label}: rounds");
        assert_eq!(
            o.sim_seconds.to_bits(),
            base.sim_seconds.to_bits(),
            "{label}: sim_seconds {} vs {}",
            o.sim_seconds,
            base.sim_seconds
        );
    };
    let check_mg = |o: &MultiGpuOomOutput, label: &str| {
        assert_eq!(o.instances, base_mg.instances, "{label}: instances");
        assert_eq!(o.transfers, base_mg.transfers, "{label}: transfers");
        assert_eq!(o.rounds, base_mg.rounds, "{label}: rounds");
        assert_eq!(
            f64_bits(&o.gpu_seconds),
            f64_bits(&base_mg.gpu_seconds),
            "{label}: gpu_seconds"
        );
    };

    // The serial reference path: no rayon tasks spawned at all.
    check(&single(OomConfig::full().serial()), "serial");
    check_mg(&multi(OomConfig::full().serial()), "serial multi-GPU");

    // Pinned pool sizes — the RAYON_NUM_THREADS=1/2/default matrix,
    // expressed with explicit pools so one test process covers it all.
    for threads in [1usize, 2] {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        let (o, m) = pool.install(|| (single(OomConfig::full()), multi(OomConfig::full())));
        check(&o, &format!("{threads}-thread pool"));
        check_mg(&m, &format!("{threads}-thread pool, multi-GPU"));
    }
}

#[test]
fn multi_gpu_and_oom_compose_with_engine_outputs() {
    use csaw::core::engine::RunOptions;
    use csaw::oom::MultiGpu;
    let g = rmat(9, 4, RmatParams::MILD, 25);
    let algo = BiasedRandomWalk { length: 8 };
    let seeds: Vec<u32> = (0..48).collect();
    let mg = MultiGpu::new(3).run_single_seeds(&g, &algo, &seeds, RunOptions::default());
    assert_eq!(mg.instances.len(), 48);
    assert_eq!(mg.sampled_edges, mg.instances.iter().map(|i| i.len() as u64).sum::<u64>());
}
