//! csaw-serve integration: codec robustness under hostile bytes,
//! weighted-fair scheduling under skewed offered load, and ledger
//! conservation over the wire with induced sheds, expiries, and a
//! panicking batch.

use csaw::graph::generators::erdos_renyi;
use csaw::graph::Csr;
use csaw::serve::{
    parse_value, ChunkFrame, Client, ClientError, CsawServer, ErrorCode, ErrorFrame, EventFrame,
    EventKind, FairScheduler, Frame, ResponseFrame, SampleFrame, SchedulerConfig, ServeConfig,
    StreamEndFrame, TenantQuota, WireAlgo,
};
use csaw::service::{BatchExecutor, BatchOutput, EngineExecutor, SamplingService, ServiceConfig};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Wire codec: round-trip and hostile-input properties
// ---------------------------------------------------------------------

fn lowercase_string(v: Vec<u32>) -> String {
    v.into_iter().map(|c| char::from(b'a' + (c % 26) as u8)).collect()
}

fn arb_string() -> impl Strategy<Value = String> {
    prop::collection::vec(0u32..26, 0..12).prop_map(lowercase_string)
}

fn arb_instances() -> impl Strategy<Value = Vec<Vec<(u32, u32)>>> {
    prop::collection::vec(prop::collection::vec((0u32..5000, 0u32..5000), 0..6), 0..5)
}

/// One strategy covering every frame kind, driven by a discriminant.
fn arb_frame() -> impl Strategy<Value = Frame> {
    (
        (0u32..16, any::<u64>()),
        (any::<u32>(), any::<u64>()),
        (arb_string(), arb_instances()),
        prop::collection::vec(any::<u32>(), 0..8),
    )
        .prop_map(|((kind, a), (b, c), (s, instances), nums)| {
            build_frame(kind, a, b, c, s, instances, nums)
        })
}

fn build_frame(
    kind: u32,
    a: u64,
    b: u32,
    c: u64,
    s: String,
    instances: Vec<Vec<(u32, u32)>>,
    nums: Vec<u32>,
) -> Frame {
    use csaw::graph::EdgeEdit;
    match kind {
        0 => Frame::Hello { version: b as u16, tenant: s },
        1 => Frame::HelloAck { version: b as u16 },
        2 => Frame::Sample(SampleFrame {
            id: a,
            algo: WireAlgo {
                name: s,
                depth: b.is_multiple_of(2).then_some(b),
                neighbor_size: b.is_multiple_of(3).then_some(b / 3),
                pf: b.is_multiple_of(5).then(|| (c % 1000) as f64 / 1000.0),
                p: None,
                q: Some((b % 97) as f64 / 97.0),
                p_jump: None,
                p_restart: b.is_multiple_of(7).then_some(0.15),
            },
            seeds: nums,
            rng_seed: c,
            deadline_us: (b % 2 == 1).then_some(c),
            stream_chunk: b % 9,
        }),
        3 => Frame::Response(ResponseFrame {
            id: a,
            instance_base: b,
            batch_requests: c % 100,
            batch_instances: c % 1000,
            queue_wait_us: c,
            sampled_edges: a % 10_000,
            instances,
        }),
        4 => Frame::Chunk(ChunkFrame { id: a, seq: b % 50, chunk_base: b, instances }),
        5 => Frame::StreamEnd(StreamEndFrame {
            id: a,
            chunks: b % 50,
            instance_base: b,
            sampled_edges: c,
        }),
        6 => Frame::Mutate {
            id: a,
            edits: nums
                .chunks(3)
                .filter(|ch| ch.len() == 3)
                .map(|ch| match ch[0] % 3 {
                    0 => EdgeEdit::Insert {
                        src: ch[1],
                        dst: ch[2],
                        weight: (ch[0] % 100) as f32 / 10.0,
                    },
                    1 => EdgeEdit::Delete { src: ch[1], dst: ch[2] },
                    _ => EdgeEdit::Reweight {
                        src: ch[1],
                        dst: ch[2],
                        weight: (ch[0] % 50) as f32 / 5.0,
                    },
                })
                .collect(),
        },
        7 => Frame::MutateAck { id: a, epoch: c, overlay_vertices: c % 500 },
        8 => Frame::Compact { id: a },
        9 => Frame::CompactAck { id: a, folded: c },
        10 => Frame::Stats { id: a },
        11 => Frame::StatsAck { id: a, text: s },
        12 => Frame::Subscribe { id: a },
        13 => Frame::Event(EventFrame {
            request_id: a,
            tenant: s,
            kind: match b % 3 {
                0 => EventKind::Completed,
                1 => EventKind::Expired,
                _ => EventKind::Failed,
            },
            sampled_edges: c,
            instances: b,
        }),
        14 => Frame::Error(ErrorFrame {
            id: a,
            code: ErrorCode::from_u16(1 + (b % 13) as u16).expect("codes 1..=13 are valid"),
            retry_after_us: c,
            message: s,
        }),
        _ => Frame::Goodbye,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any frame encodes and decodes back bit-identical (the re-encoded
    /// byte string equals the original encoding, and the decoded value
    /// equals the original frame).
    #[test]
    fn codec_round_trips_bit_identical(frame in arb_frame()) {
        let bytes = frame.to_bytes();
        let decoded = Frame::decode(&bytes[4..]).expect("valid frame decodes");
        prop_assert_eq!(&decoded, &frame);
        prop_assert_eq!(decoded.to_bytes(), bytes);
    }

    /// Every strict prefix of a frame body fails with a typed error —
    /// no panic, no partial value.
    #[test]
    fn truncated_frames_yield_typed_errors(frame in arb_frame()) {
        let bytes = frame.to_bytes();
        let body = &bytes[4..];
        for cut in 0..body.len() {
            let res = Frame::decode(&body[..cut]);
            prop_assert!(res.is_err(), "prefix of {} bytes decoded: {:?}", cut, res);
        }
    }

    /// Corrupting any single byte never panics the decoder: it either
    /// fails with a typed error or yields some other valid frame.
    #[test]
    fn corrupt_frames_never_panic(frame in arb_frame(), pos in any::<u32>(), flip in 1u32..256) {
        let bytes = frame.to_bytes();
        let mut body = bytes[4..].to_vec();
        let pos = pos as usize % body.len();
        body[pos] ^= flip as u8;
        if let Ok(reframe) = Frame::decode(&body) {
            // Whatever decoded must itself round-trip.
            let re = reframe.to_bytes();
            prop_assert_eq!(Frame::decode(&re[4..]).expect("round trip"), reframe);
        }
    }
}

// ---------------------------------------------------------------------
// Fairness
// ---------------------------------------------------------------------

/// Deterministic SFQ property: with a 10:1 offered backlog and equal
/// weights, the light tenant's entire backlog dispatches within
/// roughly 2x its fair interleave window — it is not stuck behind the
/// heavy tenant's queue as FIFO would leave it.
#[test]
fn fair_queue_interleaves_10_to_1_backlog() {
    let sched: FairScheduler<&'static str> = FairScheduler::new(SchedulerConfig {
        max_inflight: 1,
        default_quota: TenantQuota { max_queued: 256, ..TenantQuota::default() },
        ..SchedulerConfig::default()
    });
    for _ in 0..100 {
        sched.admit("heavy", 1.0, 0.0, "heavy").unwrap();
    }
    for _ in 0..10 {
        sched.admit("light", 1.0, 0.0, "light").unwrap();
    }
    let mut last_light_slot = 0;
    for slot in 0..110 {
        let (tenant, _) = sched.next().expect("backlog");
        sched.complete(&tenant);
        if tenant == "light" {
            last_light_slot = slot;
        }
    }
    // Equal weights: light's 10 jobs should interleave ~1:1 while it
    // has backlog, finishing near slot 20; 30 allows tag-ordering slack.
    assert!(
        last_light_slot <= 30,
        "light tenant's last job dispatched at slot {last_light_slot} of 110"
    );
}

/// Weighted variant: a weight-5 tenant gets ~5x the slots of a
/// weight-1 tenant while both are backlogged.
#[test]
fn fair_queue_divides_slots_by_weight() {
    let quotas = [
        ("gold", TenantQuota { weight: 5, ..TenantQuota::default() }),
        ("bronze", TenantQuota { weight: 1, ..TenantQuota::default() }),
    ];
    let sched: FairScheduler<&'static str> = FairScheduler::new(SchedulerConfig {
        max_inflight: 1,
        tenant_quotas: quotas.iter().map(|(n, q)| (n.to_string(), *q)).collect(),
        ..SchedulerConfig::default()
    });
    for _ in 0..60 {
        sched.admit("gold", 1.0, 0.0, "gold").unwrap();
        sched.admit("bronze", 1.0, 0.0, "bronze").unwrap();
    }
    let mut gold_in_first_60 = 0;
    for _ in 0..60 {
        let (tenant, _) = sched.next().expect("backlog");
        sched.complete(&tenant);
        if tenant == "gold" {
            gold_in_first_60 += 1;
        }
    }
    // Ideal is 50 of 60 (5/6); allow +-8 for tag quantization.
    assert!(
        (42..=58).contains(&gold_in_first_60),
        "weight-5 tenant got {gold_in_first_60}/60 slots"
    );
}

fn test_graph() -> Arc<Csr> {
    Arc::new(erdos_renyi(64, 256, 7))
}

/// End-to-end fairness over the wire: a tenant offering 10x the load
/// (10 connections) does not starve a light tenant — the light tenant's
/// batch completes in well under the heavy tenant's makespan.
#[test]
fn wire_fairness_light_tenant_is_not_starved() {
    let service = SamplingService::with_engine(test_graph(), ServiceConfig::default());
    let server = CsawServer::start(
        service,
        ServeConfig {
            metrics_addr: None,
            scheduler: SchedulerConfig { max_inflight: 1, ..SchedulerConfig::default() },
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr();
    let algo = || WireAlgo::by_name("simple-walk").with_depth(8);

    let start = Instant::now();
    // Load-bearing collect: all heavy connections must be live and
    // competing before any join — fusing into the max() chain below
    // would spawn-and-join them one at a time.
    #[allow(clippy::needless_collect)]
    let heavy_threads: Vec<_> = (0..10)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr, "heavy").expect("connect");
                for i in 0..4u32 {
                    c.sample(algo(), vec![i % 64], 1, None).expect("heavy sample");
                }
                start.elapsed()
            })
        })
        .collect();
    let light = std::thread::spawn(move || {
        let mut c = Client::connect(addr, "light").expect("connect");
        for i in 0..4u32 {
            c.sample(algo(), vec![i % 64], 2, None).expect("light sample");
        }
        start.elapsed()
    });

    let light_elapsed = light.join().expect("light thread");
    let heavy_elapsed =
        heavy_threads.into_iter().map(|h| h.join().expect("heavy thread")).max().unwrap();
    server.shutdown();

    // 44 total requests serialize through max_inflight=1; the light
    // tenant holds 1/11 of the offered load, so fair interleaving
    // finishes it early. FIFO would leave it near the makespan.
    assert!(
        light_elapsed < heavy_elapsed,
        "light tenant ({light_elapsed:?}) should finish before the heavy makespan ({heavy_elapsed:?})"
    );
    assert!(
        light_elapsed.as_secs_f64() <= heavy_elapsed.as_secs_f64() * 0.75,
        "light tenant not fairly interleaved: {light_elapsed:?} vs heavy {heavy_elapsed:?}"
    );
}

// ---------------------------------------------------------------------
// Multi-tenant conservation under sheds, expiries, and a panic
// ---------------------------------------------------------------------

/// Delegates to the engine, but panics for a magic RNG seed — inducing
/// one failed batch without touching the others.
struct PanicOnSeed(EngineExecutor);

const PANIC_SEED: u64 = 999;

impl BatchExecutor for PanicOnSeed {
    fn name(&self) -> &'static str {
        "panic-on-seed"
    }

    fn execute(
        &self,
        graph: &Csr,
        algo: &dyn csaw::core::api::Algorithm,
        seed_sets: &[Vec<u32>],
        opts: csaw::core::engine::RunOptions,
    ) -> BatchOutput {
        assert!(opts.seed != PANIC_SEED, "induced batch panic for testing");
        self.0.execute(graph, algo, seed_sets, opts)
    }
}

fn scrape(addr: SocketAddr, path: &str) -> (String, String) {
    let mut s = TcpStream::connect(addr).expect("connect metrics");
    s.write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes())
        .expect("write request");
    let mut buf = String::new();
    s.read_to_string(&mut buf).expect("read response");
    let (head, body) = buf.split_once("\r\n\r\n").expect("http response");
    (head.to_string(), body.to_string())
}

/// The acceptance scenario: concurrent multi-tenant load with induced
/// token-bucket sheds, service-queue sheds, deadline expiries, and one
/// panicking batch — afterwards the scraped /metrics ledger balances
/// and the per-tenant shed split is visible.
#[test]
fn metrics_ledger_balances_under_hostile_multi_tenant_load() {
    let service = SamplingService::new(
        test_graph(),
        Arc::new(PanicOnSeed(EngineExecutor)),
        ServiceConfig {
            queue_capacity: 2,
            start_paused: true,
            batch_window: Duration::from_millis(1),
            ..ServiceConfig::default()
        },
    );
    let throttled_quota = TenantQuota { rate: 0.001, burst: 1.0, ..TenantQuota::default() };
    let server = CsawServer::start(
        service,
        ServeConfig {
            scheduler: SchedulerConfig {
                max_inflight: 8,
                tenant_quotas: [("throttled".to_string(), throttled_quota)].into_iter().collect(),
                ..SchedulerConfig::default()
            },
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr();
    let algo = || WireAlgo::by_name("biased-walk").with_depth(6);

    // Subscriber first, so it observes the load's completion events.
    let subscriber =
        Client::connect(addr, "watch").expect("connect").subscribe().expect("subscribe");

    let queue_full_seen = Arc::new(AtomicU64::new(0));
    let completed_seen = Arc::new(AtomicU64::new(0));

    // Flood: 3 connections hammering a paused service with queue
    // capacity 2 — admissions beyond the queue shed with QueueFull.
    let flood_threads: Vec<_> = (0..3)
        .map(|t| {
            let queue_full_seen = Arc::clone(&queue_full_seen);
            let completed_seen = Arc::clone(&completed_seen);
            std::thread::spawn(move || {
                let mut c = Client::connect(addr, "flood").expect("connect");
                for i in 0..4u32 {
                    // Retry each request until it completes, so the
                    // tenant both sheds (pre-resume, queue cap 2) and
                    // completes (post-resume) regardless of which
                    // tenants grabbed the queue slots first.
                    loop {
                        match c.sample(algo(), vec![(t * 7 + i) % 64], 1, None) {
                            Ok(_) => {
                                completed_seen.fetch_add(1, Relaxed);
                                break;
                            }
                            Err(ClientError::Server(e)) if e.code == ErrorCode::QueueFull => {
                                assert!(
                                    e.retry_after().is_some(),
                                    "QueueFull must carry a retry hint"
                                );
                                queue_full_seen.fetch_add(1, Relaxed);
                                std::thread::sleep(Duration::from_millis(2));
                            }
                            Err(e) => panic!("unexpected flood outcome: {e}"),
                        }
                    }
                }
            })
        })
        .collect();

    // Doomed: a microsecond deadline expires at dequeue once admitted.
    let doomed = std::thread::spawn(move || {
        let mut c = Client::connect(addr, "doomed").expect("connect");
        loop {
            match c.sample(algo(), vec![3], 2, Some(Duration::from_micros(1))) {
                Err(ClientError::Server(e)) if e.code == ErrorCode::Expired => return,
                Ok(_) => panic!("1us deadline cannot be met"),
                Err(ClientError::Server(_)) => std::thread::sleep(Duration::from_millis(2)),
                Err(e) => panic!("unexpected doomed outcome: {e}"),
            }
        }
    });

    // Panicky: the magic RNG seed fails its whole (single-request) batch.
    let panicky = std::thread::spawn(move || {
        let mut c = Client::connect(addr, "panicky").expect("connect");
        loop {
            match c.sample(algo(), vec![9], PANIC_SEED, None) {
                Err(ClientError::Server(e)) if e.code == ErrorCode::BatchFailed => return,
                Ok(_) => panic!("panic executor cannot succeed for the magic seed"),
                Err(ClientError::Server(_)) => std::thread::sleep(Duration::from_millis(2)),
                Err(e) => panic!("unexpected panicky outcome: {e}"),
            }
        }
    });

    // Throttled: burst 1, refill ~never — the second request sheds at
    // the token bucket, before any queue.
    let throttled = std::thread::spawn(move || {
        let mut c = Client::connect(addr, "throttled").expect("connect");
        let mut quota_sheds = 0u64;
        for _ in 0..3 {
            match c.sample(algo(), vec![1], 3, None) {
                Err(ClientError::Server(e)) if e.code == ErrorCode::TenantQuota => {
                    assert!(e.retry_after().is_some(), "TenantQuota must carry a retry hint");
                    quota_sheds += 1;
                }
                Ok(_) | Err(ClientError::Server(_)) => {}
                Err(e) => panic!("unexpected throttled outcome: {e}"),
            }
        }
        quota_sheds
    });

    // Let the flood pile up against the paused worker, then release it.
    std::thread::sleep(Duration::from_millis(200));
    server.service().resume();

    for t in flood_threads {
        t.join().expect("flood thread");
    }
    doomed.join().expect("doomed thread");
    panicky.join().expect("panicky thread");
    let quota_sheds = throttled.join().expect("throttled thread");

    assert!(queue_full_seen.load(Relaxed) > 0, "paused cap-2 queue must shed some of the flood");
    assert!(completed_seen.load(Relaxed) > 0, "some flood requests must complete after resume");
    assert!(quota_sheds >= 1, "token bucket must shed the throttled tenant");

    // Every client call has returned, so every submitted request is
    // terminal: the scraped ledger must balance.
    let metrics_addr = server.metrics_addr().expect("metrics listener enabled");
    let (head, page) = scrape(metrics_addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(
        parse_value(&page, "csaw_ledger_fully_accounted"),
        Some(1.0),
        "ledger out of balance:\n{page}"
    );
    assert_eq!(parse_value(&page, "csaw_requests_failed_total"), Some(1.0));
    assert!(parse_value(&page, "csaw_requests_expired_total").unwrap_or(0.0) >= 1.0);
    let flood_sheds =
        parse_value(&page, "csaw_tenant_queue_full_sheds_total{tenant=\"flood\"}").unwrap_or(0.0);
    assert!(flood_sheds >= 1.0, "per-tenant shed split missing:\n{page}");
    assert!(
        parse_value(&page, "csaw_tenant_shed_quota_total{tenant=\"throttled\"}").unwrap_or(0.0)
            >= 1.0,
        "scheduler quota shed missing:\n{page}"
    );

    // The global shed counter equals the sum of the per-tenant split.
    let global_sheds = parse_value(&page, "csaw_requests_rejected_queue_full_total").unwrap();
    let split_sum: f64 = page
        .lines()
        .filter(|l| l.starts_with("csaw_tenant_queue_full_sheds_total{"))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<f64>().ok())
        .sum();
    assert_eq!(global_sheds, split_sum, "tenant shed split must sum to the global counter");

    // 404 for anything but /metrics.
    let (head, _) = scrape(metrics_addr, "/other");
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");

    // The subscriber observed the terminal states as events.
    let mut sub = subscriber;
    sub.set_timeout(Some(Duration::from_millis(500))).expect("set timeout");
    let mut kinds = std::collections::HashSet::new();
    while let Ok(Some(event)) = sub.next_event() {
        kinds.insert(event.kind);
        if kinds.len() == 3 {
            break;
        }
    }
    assert!(kinds.contains(&EventKind::Completed), "no Completed event; saw {kinds:?}");
    assert!(kinds.contains(&EventKind::Expired), "no Expired event; saw {kinds:?}");
    assert!(kinds.contains(&EventKind::Failed), "no Failed event; saw {kinds:?}");

    let svc = server.shutdown();
    assert!(svc.stats().fully_accounted());
}

// ---------------------------------------------------------------------
// Mutation and handshake over the wire
// ---------------------------------------------------------------------

#[test]
fn mutations_and_typed_edit_errors_over_the_wire() {
    use csaw::graph::EdgeEdit;
    let service = SamplingService::with_engine(test_graph(), ServiceConfig::default());
    let server =
        CsawServer::start(service, ServeConfig { metrics_addr: None, ..ServeConfig::default() })
            .expect("bind");
    let mut c = Client::connect(server.addr(), "editor").expect("connect");

    let (epoch, overlay) =
        c.mutate(vec![EdgeEdit::Insert { src: 0, dst: 63, weight: 1.0 }]).expect("valid insert");
    assert_eq!(epoch, 1);
    assert!(overlay >= 1);

    // Deleting a missing edge fails with the typed edit error code and
    // does not advance the epoch.
    let err = c.mutate(vec![EdgeEdit::Delete { src: 1, dst: 1 }]).unwrap_err();
    match err {
        ClientError::Server(e) => assert_eq!(e.code, ErrorCode::EditEdgeNotFound),
        other => panic!("expected typed edit error, got {other}"),
    }
    let err = c.mutate(vec![EdgeEdit::Insert { src: 200, dst: 0, weight: 1.0 }]).unwrap_err();
    match err {
        ClientError::Server(e) => assert_eq!(e.code, ErrorCode::EditVertexOutOfRange),
        other => panic!("expected typed edit error, got {other}"),
    }

    let folded = c.compact().expect("compact");
    assert!(folded >= 1);
    assert_eq!(c.compact().expect("second compact is a no-op"), 0);

    // The mutation ledger over the wire: 3 submitted = 1 applied + 2
    // rejected; 2 compacts = 1 fold + 1 no-op.
    let page = c.stats_text().expect("stats");
    assert_eq!(parse_value(&page, "csaw_mutations_submitted_total"), Some(3.0));
    assert_eq!(parse_value(&page, "csaw_mutations_applied_total"), Some(1.0));
    assert_eq!(parse_value(&page, "csaw_mutations_rejected_total"), Some(2.0));
    assert_eq!(parse_value(&page, "csaw_compact_requests_total"), Some(2.0));
    assert_eq!(parse_value(&page, "csaw_compact_noops_total"), Some(1.0));
    assert_eq!(parse_value(&page, "csaw_ledger_fully_accounted"), Some(1.0));

    c.goodbye().expect("goodbye");
    server.shutdown();
}

#[test]
fn version_mismatch_is_rejected_at_handshake() {
    use csaw::serve::{read_frame, write_frame, WIRE_VERSION};
    let service = SamplingService::with_engine(test_graph(), ServiceConfig::default());
    let server =
        CsawServer::start(service, ServeConfig { metrics_addr: None, ..ServeConfig::default() })
            .expect("bind");
    let mut s = TcpStream::connect(server.addr()).expect("connect");
    write_frame(&mut s, &Frame::Hello { version: WIRE_VERSION + 1, tenant: "t".into() })
        .expect("send");
    s.flush().expect("flush");
    match read_frame(&mut s).expect("reply") {
        Frame::Error(e) => assert_eq!(e.code, ErrorCode::VersionMismatch),
        other => panic!("expected version-mismatch error, got {other:?}"),
    }
    server.shutdown();
}
