//! In-tree shim for the `serde` crate (hermetic build — no crates.io).
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` to keep
//! its data types serialization-ready; nothing actually serializes
//! yet (no serde_json/bincode in the tree). The derives here expand to
//! nothing, so the attribute remains valid at every use site while the
//! trait machinery is deferred until a real serializer lands.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`'s derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`'s derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
