//! In-tree shim for the `rayon` crate (hermetic build — no crates.io).
//!
//! Provides the data-parallel surface this workspace uses: `par_iter` /
//! `into_par_iter` with `enumerate`/`map` and an order-preserving
//! `collect`, plus `ThreadPoolBuilder::install` for pinning the thread
//! count inside a closure. Unlike upstream rayon there is no persistent
//! work-stealing pool: each `map` fans its input out over freshly
//! scoped OS threads in contiguous chunks and reassembles the results
//! in input order, which keeps every pipeline deterministic for free.
//!
//! Thread count resolution order: `ThreadPoolBuilder::install` override
//! (propagated into nested parallel calls) → `RAYON_NUM_THREADS` →
//! `std::thread::available_parallelism()`.

use std::cell::Cell;

thread_local! {
    /// Per-thread override installed by [`ThreadPool::install`]; copied
    /// into worker threads so nested parallel calls see the same cap.
    static POOL_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads a parallel call would use right now.
pub fn current_num_threads() -> usize {
    if let Some(n) = POOL_OVERRIDE.with(|c| c.get()) {
        return n.max(1);
    }
    if let Ok(s) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs `f` over `items` on scoped threads, returning outputs in input
/// order. The installed thread-count override is mirrored into each
/// worker so nested parallel iterators respect it.
fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = current_num_threads();
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let override_val = POOL_OVERRIDE.with(|c| c.get());
    let chunk = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let f = &f;
    let mut out: Vec<Vec<U>> = std::thread::scope(|scope| {
        // The intermediate collect is load-bearing: it spawns every
        // worker before the first join. Fusing spawn and join into one
        // lazy chain would run the chunks serially.
        #[allow(clippy::needless_collect)]
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| {
                scope.spawn(move || {
                    POOL_OVERRIDE.with(|cell| cell.set(override_val));
                    c.into_iter().map(f).collect::<Vec<U>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rayon shim worker panicked")).collect()
    });
    let total = out.iter().map(Vec::len).sum();
    let mut flat = Vec::with_capacity(total);
    for v in &mut out {
        flat.append(v);
    }
    flat
}

/// A not-yet-executed parallel pipeline over an owned list of items.
///
/// `map` is the execution point: it fans out over threads immediately
/// and yields another (already materialized) `ParIter`. `collect` then
/// simply unwraps. This eager design is observably identical for the
/// `par_iter().enumerate().map(f).collect()` pipelines the workspace
/// writes, and keeps the shim free of closure-type plumbing.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Pairs each item with its index, preserving order.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter { items: self.items.into_iter().enumerate().collect() }
    }

    /// Applies `f` to every item across the thread pool; output order
    /// matches input order.
    pub fn map<U: Send, F>(self, f: F) -> ParIter<U>
    where
        F: Fn(T) -> U + Sync + Send,
    {
        ParIter { items: parallel_map(self.items, f) }
    }

    /// Materializes the pipeline. `C` is `Vec<T>` in practice.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Total number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the pipeline carries no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Runs `f` on every item for its side effects.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync + Send,
    {
        parallel_map(self.items, f);
    }
}

/// By-value conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item: Send;
    /// Converts `self` into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

/// By-reference conversion into a parallel iterator over `&T`.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a shared reference).
    type Item: Send;
    /// Borrows `self` as a [`ParIter`] of references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

/// Error type for [`ThreadPoolBuilder::build`]; construction cannot
/// actually fail in the shim, but the signature matches upstream.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Fresh builder with no explicit thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the pool at `n` threads (0 = automatic, like upstream).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool handle.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { num_threads: self.num_threads })
    }
}

/// Handle whose only power is scoping a thread-count override.
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count; parallel calls inside
    /// `f` (including nested ones on worker threads) use it.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_OVERRIDE.with(|c| c.replace(self.num_threads.or_else(|| c.get())));
        // Restore on unwind too, so a panicking test doesn't leak its
        // override into later tests on the same thread.
        struct Reset(Option<usize>);
        impl Drop for Reset {
            fn drop(&mut self) {
                POOL_OVERRIDE.with(|c| c.set(self.0));
            }
        }
        let _reset = Reset(prev);
        f()
    }

    /// This pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads.unwrap_or_else(current_num_threads)
    }
}

/// Glob-import module matching `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.par_iter().enumerate().map(|(i, &x)| i + x).collect();
        let expect: Vec<usize> = (0..1000).map(|i| 2 * i).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn into_par_iter_owned() {
        let out: Vec<String> = vec![1, 2, 3].into_par_iter().map(|x: i32| format!("{x}")).collect();
        assert_eq!(out, ["1", "2", "3"]);
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let (inside, nested) = pool.install(|| {
            let nested: Vec<usize> =
                vec![(), ()].into_par_iter().map(|()| current_num_threads()).collect();
            (current_num_threads(), nested)
        });
        assert_eq!(inside, 3);
        // The override must be visible on worker threads too.
        assert!(nested.iter().all(|&n| n == 3), "{nested:?}");
    }

    #[test]
    fn empty_inputs() {
        let out: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}
