//! In-tree shim for the `rand` crate (hermetic build — no crates.io).
//!
//! Implements exactly the surface the workspace uses: a seedable
//! deterministic generator ([`rngs::StdRng`]) plus the [`SeedableRng`]
//! and [`RngExt`] traits with `random::<T>()` and `random_range(..)`.
//!
//! Divergence from upstream: `StdRng` here is xoshiro256++ (seeded via
//! SplitMix64) rather than ChaCha12. Both are deterministic per seed;
//! only the concrete streams differ, which callers must not rely on.

/// Core trait: a source of 64 random bits.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it to the full
    /// internal state deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, the reference seeding procedure
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible by [`RngExt::random`].
pub trait Standard: Sized {
    /// Draws one value from the generator's "standard" distribution for
    /// the type (uniform over the domain; `[0, 1)` for floats).
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange {
    /// The produced value type.
    type Output;
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased bounded draw in `[0, n)` via Lemire-style rejection.
fn bounded<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample an empty range");
    // Rejection zone keeps the draw exactly uniform.
    let zone = u64::MAX - u64::MAX % n;
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + bounded(rng, span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample an empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-domain u64 range.
                    return rng.next_u64() as $t;
                }
                start + bounded(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u32, u64, usize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample an empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample an empty range");
        // Scale a 53-bit draw by 2^-53 ≤ u ≤ 1 so both endpoints are
        // reachable (divides by 2^53 - 1 rather than 2^53).
        let u = (f64::from_rng(rng) * (1u64 << 53) as f64) / ((1u64 << 53) - 1) as f64;
        start + u * (end - start)
    }
}

/// Convenience extension methods (the `rand` 0.9+ `Rng` surface).
pub trait RngExt: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws uniformly from `range`.
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_hit_all_values_uniformly() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.random_range(0usize..5)] += 1;
        }
        for &c in &counts {
            // 10k expected; 5σ ≈ 450.
            assert!((c as i64 - 10_000).abs() < 600, "{counts:?}");
        }
        // Bounds are respected for u32 and inclusive ranges too.
        for _ in 0..1000 {
            let v = rng.random_range(3u32..7);
            assert!((3..7).contains(&v));
            let w = rng.random_range(3u32..=7);
            assert!((3..=7).contains(&w));
        }
    }
}
