//! In-tree shim for the `proptest` crate (hermetic build — no
//! crates.io).
//!
//! Implements the property-testing surface this workspace uses: the
//! [`strategy::Strategy`] trait with `prop_map`, range/tuple/`any`/
//! `collection::vec`/`option::of` strategies, the `proptest!` macro
//! (including `#![proptest_config(..)]` and both `name in strategy`
//! and `name: Type` parameter forms), and `prop_assert*!`.
//!
//! Intentional divergences from upstream:
//! - **No shrinking.** A failing case panics with its deterministic
//!   case number; rerunning reproduces it exactly.
//! - **Deterministic seeding.** Each case's RNG is seeded from
//!   (test path, case index), so runs are reproducible across machines
//!   and never flake — there is no regression file.
//! - Default case count is 64 (upstream: 256); override per block with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`.

/// Core strategy abstraction: a recipe for generating values.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::RngExt;

    /// A generator of values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The generated type.
        type Value: std::fmt::Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Post-processes generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            U: std::fmt::Debug,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        U: std::fmt::Debug,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
    }
}

/// `any::<T>()` — the type's canonical full-domain strategy.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;

    /// Types with a canonical strategy over their whole domain.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.random::<u64>() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.random()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.random()
        }
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy { _marker: std::marker::PhantomData }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;

    /// Strategy for vectors whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.random_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `len ∈ size` values of `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Option strategies (`prop::option::of`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;

    /// Strategy for `Option<T>`; `None` with probability 1/2.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.random() {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// Wraps `inner`'s values in `Some` half the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Runner, config, and error types.
pub mod test_runner {
    use rand::{RngCore, SeedableRng};

    /// Per-case deterministic RNG.
    pub struct TestRng(rand::rngs::StdRng);

    impl TestRng {
        /// RNG for case `case` of the test named `name`; the stream
        /// depends on both, so cases and tests are independent.
        pub fn for_case(name: &str, case: u32) -> Self {
            // FNV-1a over the fully qualified test path.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(rand::rngs::StdRng::seed_from_u64(
                h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Runner configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed property (carried by `prop_assert*!` early returns).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Drives `f` over `config.cases` deterministic cases, panicking
    /// (with the reproducible case number) on the first failure.
    pub fn run_cases<F>(config: ProptestConfig, name: &str, mut f: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        for case in 0..config.cases {
            let mut rng = TestRng::for_case(name, case);
            if let Err(e) = f(&mut rng) {
                panic!("property failed at deterministic case {case}/{}: {e}", config.cases);
            }
        }
    }
}

/// Everything a property-test module glob-imports.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the case
/// (not the process) so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Inequality assertion for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and, per test, parameters of the form
/// `name in strategy` or `name: Type` (sugar for `any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal: peels one test fn off the block at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $crate::__proptest_one! {
            cfg = ($cfg);
            metas = ($(#[$meta])*);
            name = $name;
            body = $body;
            acc = ();
            params = ($($params)*)
        }
        $crate::__proptest_tests! { cfg = ($cfg); $($rest)* }
    };
}

/// Internal: munches one test's parameter list into (pattern, strategy)
/// pairs, then emits the final zero-argument test fn.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_one {
    // `name in strategy` (more params follow).
    (cfg = $cfg:tt; metas = $m:tt; name = $name:ident; body = $body:tt;
     acc = ($($acc:tt)*); params = ($p:ident in $s:expr, $($rest:tt)*)) => {
        $crate::__proptest_one! {
            cfg = $cfg; metas = $m; name = $name; body = $body;
            acc = ($($acc)* ($p, $s)); params = ($($rest)*)
        }
    };
    // `name in strategy` (final param).
    (cfg = $cfg:tt; metas = $m:tt; name = $name:ident; body = $body:tt;
     acc = ($($acc:tt)*); params = ($p:ident in $s:expr)) => {
        $crate::__proptest_one! {
            cfg = $cfg; metas = $m; name = $name; body = $body;
            acc = ($($acc)* ($p, $s)); params = ()
        }
    };
    // `name: Type` (more params follow).
    (cfg = $cfg:tt; metas = $m:tt; name = $name:ident; body = $body:tt;
     acc = ($($acc:tt)*); params = ($p:ident : $t:ty, $($rest:tt)*)) => {
        $crate::__proptest_one! {
            cfg = $cfg; metas = $m; name = $name; body = $body;
            acc = ($($acc)* ($p, $crate::arbitrary::any::<$t>())); params = ($($rest)*)
        }
    };
    // `name: Type` (final param).
    (cfg = $cfg:tt; metas = $m:tt; name = $name:ident; body = $body:tt;
     acc = ($($acc:tt)*); params = ($p:ident : $t:ty)) => {
        $crate::__proptest_one! {
            cfg = $cfg; metas = $m; name = $name; body = $body;
            acc = ($($acc)* ($p, $crate::arbitrary::any::<$t>())); params = ()
        }
    };
    // All params munched: emit the test.
    (cfg = ($cfg:expr); metas = ($($m:tt)*); name = $name:ident; body = $body:tt;
     acc = ($(($p:pat, $s:expr))*); params = ()) => {
        $($m)*
        fn $name() {
            $crate::test_runner::run_cases(
                $cfg,
                concat!(module_path!(), "::", stringify!($name)),
                |__pt_rng| {
                    $(let $p = $crate::strategy::Strategy::generate(&($s), __pt_rng);)*
                    let __pt_out: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    __pt_out
                },
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Mixed `in`/`:` parameter forms parse and generate in range.
        #[test]
        fn mixed_params(x in 1u32..10, seed: u64, v in prop::collection::vec(0usize..5, 0..8)) {
            prop_assert!((1..10).contains(&x));
            let _ = seed;
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        /// prop_map and tuples compose.
        #[test]
        fn mapped_tuples(p in (0u32..4, 0u32..4).prop_map(|(a, b)| (a + 10, b))) {
            prop_assert!((10..14).contains(&p.0));
            prop_assert!(p.1 < 4);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = crate::collection::vec(0u64..1000, 1..20);
        let a: Vec<u64> = s.generate(&mut TestRng::for_case("t", 3));
        let b: Vec<u64> = s.generate(&mut TestRng::for_case("t", 3));
        let c: Vec<u64> = s.generate(&mut TestRng::for_case("t", 4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "property failed at deterministic case")]
    fn failures_panic_with_case_number() {
        crate::test_runner::run_cases(
            crate::test_runner::ProptestConfig::with_cases(5),
            "always_fails",
            |_| Err(crate::test_runner::TestCaseError::fail("boom")),
        );
    }
}
