//! In-tree shim for the `criterion` crate (hermetic build — no
//! crates.io).
//!
//! Implements the harness surface the workspace's benches use —
//! `Criterion`, `benchmark_group`, `bench_function`/`bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!`/
//! `criterion_main!` macros — with genuine wall-clock measurement:
//! a calibration warmup sizes each sample, then `sample_size` samples
//! are timed and min/median/max per-iteration times are printed.
//!
//! Like upstream, a `--test` argument (what `cargo test` passes to
//! `harness = false` bench targets) switches to smoke mode: every
//! routine runs exactly once, so the suite stays fast under
//! `cargo test -q` while still executing each bench body.

use std::time::{Duration, Instant};

/// Label for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{parameter}", function_name.into()) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything usable as a benchmark label (`&str`, `String`, or
/// [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered label.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to every benchmark closure.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    /// Per-iteration sample durations recorded by [`Bencher::iter`].
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine` (or runs it once in `--test` smoke mode).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            std::hint::black_box(routine());
            return;
        }
        // Calibration: run for ~200ms to estimate the per-iter cost.
        let warmup = Duration::from_millis(200);
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < warmup {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_secs_f64() / warm_iters as f64;
        // Aim for ~5ms per sample so cheap routines aren't clock-noise.
        let iters_per_sample = ((0.005 / per_iter) as u64).max(1);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(t.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.4} s")
    } else if s >= 1e-3 {
        format!("{:.4} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.4} µs", s * 1e6)
    } else {
        format!("{:.4} ns", s * 1e9)
    }
}

fn run_one(label: &str, test_mode: bool, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { test_mode, sample_size, samples: Vec::new() };
    f(&mut b);
    if test_mode {
        println!("{label}: ok (smoke)");
        return;
    }
    if b.samples.is_empty() {
        println!("{label}: no samples");
        return;
    }
    b.samples.sort_by(|a, c| a.total_cmp(c));
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    let max = b.samples[b.samples.len() - 1];
    println!(
        "{label:<40} time: [{} {} {}]",
        format_seconds(min),
        format_seconds(median),
        format_seconds(max)
    );
}

/// Top-level harness.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` passes `--test` to harness=false bench binaries;
        // `cargo bench` passes `--bench`.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Benchmarks `f` under `id`.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_one(&id.into_id(), self.test_mode, 50, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            test_mode: self.test_mode,
            sample_size: 50,
            _marker: std::marker::PhantomData,
        }
    }
}

/// A group sharing a name prefix and a sample count.
pub struct BenchmarkGroup<'c> {
    name: String,
    test_mode: bool,
    sample_size: usize,
    // Tied to the parent's lifetime purely to match upstream's API shape.
    _marker: std::marker::PhantomData<&'c mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` as `group/id`.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_id());
        run_one(&label, self.test_mode, self.sample_size, f);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_id());
        run_one(&label, self.test_mode, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (formatting no-op in the shim).
    pub fn finish(self) {}
}

#[macro_export]
/// Declares a group-runner function over the given bench functions.
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
/// Declares `main` running the given groups.
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut count = 0;
        run_one("t", true, 50, |b| {
            b.iter(|| count += 1);
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("its", 64).into_id(), "its/64");
        assert_eq!(BenchmarkId::from_parameter(8).into_id(), "8");
    }
}
