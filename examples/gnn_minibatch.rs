//! GraphSAGE/GCN-style mini-batch construction with neighbor sampling —
//! the graph-learning workload the paper's framework targets (GraphSAINT,
//! DGL's NeighborSampler).
//!
//! Builds mini-batches of sampled computation subgraphs: for each batch of
//! target vertices, a 2-hop neighbor-sampled subgraph (fan-out 4 then 2),
//! then reports subgraph sizes and compares against layer sampling, which
//! bounds the layer width instead of the per-vertex fan-out.
//!
//! ```text
//! cargo run --release --example gnn_minibatch
//! ```

use csaw::core::algorithms::{LayerSampling, UnbiasedNeighborSampling};
use csaw::core::engine::Sampler;
use csaw::graph::datasets;
use std::collections::HashSet;

fn main() {
    let spec = datasets::by_abbr("RE").expect("registry has RE (Reddit)");
    let g = spec.build();
    println!(
        "graph: {} stand-in — {} vertices, avg degree {:.1}",
        spec.name,
        g.num_vertices(),
        g.avg_degree()
    );

    let batch_size = 64;
    let num_batches = 8;

    // Per-vertex fan-out sampling (GraphSAGE style). The engine treats
    // each target vertex as one instance; a batch is the union subgraph.
    let sage = UnbiasedNeighborSampling { neighbor_size: 4, depth: 2 };
    let sampler = Sampler::new(&g, &sage);
    println!("\nGraphSAGE-style batches (fan-out 4, 2 hops):");
    let mut total_edges = 0usize;
    let mut total_nodes = 0usize;
    for b in 0..num_batches {
        let targets: Vec<u32> = (0..batch_size)
            .map(|i| ((b * batch_size + i) * 131) as u32 % g.num_vertices() as u32)
            .collect();
        let out = sampler.run_single_seeds(&targets);
        let edges: usize = out.instances.iter().map(Vec::len).sum();
        let nodes: HashSet<u32> =
            out.instances.iter().flatten().flat_map(|&(v, u)| [v, u]).collect();
        total_edges += edges;
        total_nodes += nodes.len();
        if b < 3 {
            println!(
                "  batch {b}: {batch_size} targets -> subgraph with {} edges, {} nodes",
                edges,
                nodes.len()
            );
        }
    }
    println!(
        "  mean per batch: {:.0} edges, {:.0} nodes",
        total_edges as f64 / num_batches as f64,
        total_nodes as f64 / num_batches as f64
    );

    // Layer sampling caps the *layer width* instead: memory-predictable
    // batches, the property GCN trainers like about layer-wise samplers.
    let layer = LayerSampling { layer_size: 128, depth: 2 };
    let sampler = Sampler::new(&g, &layer);
    println!("\nlayer-sampling batches (layer width 128, 2 layers):");
    for b in 0..3 {
        let targets: Vec<u32> = (0..batch_size)
            .map(|i| ((b * batch_size + i) * 131) as u32 % g.num_vertices() as u32)
            .collect();
        // One instance whose seed pool is the whole batch.
        let out = sampler.run(&[targets]);
        let edges = out.instances[0].len();
        println!("  batch {b}: {edges} edges (bounded by 2 x 128 = 256)");
        assert!(edges <= 256);
    }
}
