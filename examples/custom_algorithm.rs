//! Writing a *new* algorithm against the C-SAW API — the expressiveness
//! requirement of §III-B ("not only support the known sampling algorithms
//! ... but also prepare to support emerging ones").
//!
//! We build a **similarity-biased explorer**: a sampler whose edge bias
//! rewards neighbors that share many neighbors with the current vertex
//! (a dynamic, structure-dependent bias none of the built-ins has), with
//! a restart to escape dense pockets. Only the three hooks are written;
//! selection, collision handling, frontiers, and statistics all come from
//! the framework.
//!
//! ```text
//! cargo run --release --example custom_algorithm
//! ```

use csaw::core::api::*;
use csaw::core::engine::Sampler;
use csaw::gpu::Philox;
use csaw::graph::datasets;
use csaw::graph::GraphView;

/// Samples 2 neighbors per vertex per hop, biased by Jaccard-ish overlap
/// with the current vertex, restarting 10% of updates.
struct SimilarityExplorer {
    depth: usize,
}

impl SimilarityExplorer {
    fn overlap(g: GraphView<'_>, a: u32, b: u32) -> usize {
        // Sorted-list intersection size.
        let (mut i, mut j) = (0, 0);
        let (na, nb) = (g.neighbors(a), g.neighbors(b));
        let mut common = 0;
        while i < na.len() && j < nb.len() {
            match na[i].cmp(&nb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    common += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        common
    }
}

impl Algorithm for SimilarityExplorer {
    fn name(&self) -> &'static str {
        "similarity-explorer"
    }
    fn config(&self) -> AlgoConfig {
        AlgoConfig {
            depth: self.depth,
            neighbor_size: NeighborSize::Constant(2),
            frontier: FrontierMode::IndependentPerVertex,
            without_replacement: true,
        }
    }
    // EDGEBIAS: 1 + |N(v) ∩ N(u)| — prefer structurally similar neighbors.
    fn edge_bias(&self, g: GraphView<'_>, e: &EdgeCand) -> f64 {
        1.0 + Self::overlap(g, e.v, e.u) as f64
    }
    // UPDATE: occasionally refuse to expand (a probabilistic frontier
    // filter, the paper's example use of UPDATE).
    fn update(
        &self,
        _g: GraphView<'_>,
        e: &EdgeCand,
        _home: u32,
        rng: &mut Philox,
    ) -> UpdateAction {
        if rng.chance(0.1) {
            UpdateAction::Discard
        } else {
            UpdateAction::Add(e.u)
        }
    }
}

fn main() {
    let spec = datasets::by_abbr("WG").expect("registry has WG");
    let g = spec.build();
    println!("graph: {} stand-in — {} vertices\n", spec.name, g.num_vertices());

    let algo = SimilarityExplorer { depth: 3 };
    let seeds: Vec<u32> =
        (0..256u32).map(|i| (i * 2_654_435_761u32) % g.num_vertices() as u32).collect();
    let out = Sampler::new(&g, &algo).run_single_seeds(&seeds);

    // Does the similarity bias do anything? Compare the triangle density
    // of its sample against an unbiased sampler with the same shape.
    let unbiased = csaw::core::algorithms::UnbiasedNeighborSampling { neighbor_size: 2, depth: 3 };
    let base = Sampler::new(&g, &unbiased).run_single_seeds(&seeds);

    let clustering = |o: &csaw::core::SampleOutput| {
        let (sub, _) = o.induce_subgraph();
        csaw::graph::quality::clustering_coefficient(&sub)
    };
    let (ours, theirs) = (clustering(&out), clustering(&base));
    println!(
        "sampled edges: similarity {}, unbiased {}",
        out.sampled_edges(),
        base.sampled_edges()
    );
    println!("sample clustering: similarity {ours:.4} vs unbiased {theirs:.4}");
    assert!(
        ours > theirs,
        "similarity bias should harvest denser neighborhoods ({ours} vs {theirs})"
    );
    println!("\ncustom bias measurably changed what got sampled — three hooks, no framework code touched.");
}
