//! Generate a Deepwalk/node2vec walk corpus — the workload that motivates
//! GPU random walk in the paper's introduction (vertex embeddings for
//! graph learning).
//!
//! Produces the standard skip-gram training input: `walks_per_vertex`
//! truncated walks from every vertex, here on the LiveJournal stand-in.
//! Prints corpus statistics a downstream word2vec-style trainer cares
//! about (token count, vertex coverage, hub exposure).
//!
//! ```text
//! cargo run --release --example deepwalk_corpus
//! ```

use csaw::core::algorithms::{Node2Vec, SimpleRandomWalk};
use csaw::core::engine::Sampler;
use csaw::gpu::config::DeviceConfig;
use csaw::graph::datasets;

fn main() {
    let spec = datasets::by_abbr("LJ").expect("registry has LJ");
    let g = spec.build();
    println!(
        "graph: {} stand-in — {} vertices, {} edges",
        spec.name,
        g.num_vertices(),
        g.num_edges()
    );

    let walks_per_vertex = 2;
    let walk_length = 40;
    let seeds: Vec<u32> = (0..g.num_vertices() as u32)
        .flat_map(|v| std::iter::repeat_n(v, walks_per_vertex))
        .collect();

    // Plain Deepwalk corpus.
    let dw = SimpleRandomWalk { length: walk_length };
    let out = Sampler::new(&g, &dw).run_single_seeds(&seeds);
    report("deepwalk", &g, &out);

    // node2vec corpus with exploration bias (q < 1 favors going outward).
    let n2v = Node2Vec { length: walk_length, p: 1.0, q: 0.5 };
    let out = Sampler::new(&g, &n2v).run_single_seeds(&seeds);
    report("node2vec(p=1,q=0.5)", &g, &out);
}

fn report(name: &str, g: &csaw::graph::Csr, out: &csaw::core::SampleOutput) {
    let tokens: u64 = out.sampled_edges() + out.instances.len() as u64; // walk vertices
    let mut visits = vec![0u32; g.num_vertices()];
    for inst in &out.instances {
        for &(_, u) in inst {
            visits[u as usize] += 1;
        }
    }
    let covered = visits.iter().filter(|&&c| c > 0).count();
    let max_visits = visits.iter().max().copied().unwrap_or(0);
    let dev = DeviceConfig::v100();
    println!(
        "{name}: {} walks, {tokens} corpus tokens, coverage {:.1}% of vertices, \
         hottest vertex visited {max_visits}x",
        out.instances.len(),
        100.0 * covered as f64 / g.num_vertices() as f64,
    );
    println!(
        "    simulated kernel: {:.3} ms ({:.1}M sampled edges/s); host wall: {:.3} s",
        out.kernel_seconds(&dev) * 1e3,
        out.seps(&dev) / 1e6,
        out.wall_seconds
    );
}
