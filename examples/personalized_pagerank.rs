//! Personalized PageRank (PPR) estimation with random walk with restart —
//! one of the paper's motivating applications (FAST-PPR, kPAR).
//!
//! Runs restart walks from a source, estimates PPR as normalized visit
//! frequencies, and validates against exact power iteration on the toy
//! graph. The Monte-Carlo estimate converging to the exact vector is an
//! end-to-end statistical check of the whole sampling stack.
//!
//! ```text
//! cargo run --release --example personalized_pagerank
//! ```

use csaw::core::algorithms::RandomWalkWithRestart;
use csaw::core::engine::Sampler;
use csaw::graph::generators::toy_graph;
use csaw::graph::Csr;

const ALPHA: f64 = 0.2; // restart probability

/// Exact PPR by power iteration.
fn exact_ppr(g: &Csr, source: u32) -> Vec<f64> {
    let n = g.num_vertices();
    let mut p = vec![0.0; n];
    p[source as usize] = 1.0;
    for _ in 0..200 {
        let mut next = vec![0.0; n];
        next[source as usize] += ALPHA;
        for v in 0..n as u32 {
            let mass = (1.0 - ALPHA) * p[v as usize];
            let nbrs = g.neighbors(v);
            if nbrs.is_empty() {
                next[source as usize] += mass; // dangling mass restarts
            } else {
                for &u in nbrs {
                    next[u as usize] += mass / nbrs.len() as f64;
                }
            }
        }
        p = next;
    }
    p
}

fn main() {
    let g = toy_graph();
    let source = 8u32;

    let exact = exact_ppr(&g, source);

    // Monte-Carlo: the walker's location sequence is an ergodic chain
    // whose stationary distribution is the PPR vector; its locations are
    // exactly the sources of the recorded edges. Discard a short burn-in
    // (the chain starts at the source, not at stationarity).
    let walks = 8_000usize;
    let burn_in = 15usize;
    let algo = RandomWalkWithRestart { length: 75, p_restart: ALPHA };
    let out = Sampler::new(&g, &algo).run_single_seeds(&vec![source; walks]);

    let mut visits = vec![0u64; g.num_vertices()];
    for inst in &out.instances {
        for &(v, _) in inst.iter().skip(burn_in) {
            visits[v as usize] += 1;
        }
    }
    let total: u64 = visits.iter().sum();
    let estimate: Vec<f64> = visits.iter().map(|&c| c as f64 / total as f64).collect();

    println!("personalized PageRank from v{source} (restart {ALPHA}):\n");
    println!("{:>6} {:>10} {:>10} {:>8}", "vertex", "exact", "estimate", "error");
    let mut tv = 0.0;
    for v in 0..g.num_vertices() {
        let err = (estimate[v] - exact[v]).abs();
        tv += err;
        println!("{v:>6} {:>10.4} {:>10.4} {err:>8.4}", exact[v], estimate[v]);
    }
    tv /= 2.0;
    println!("\ntotal variation distance: {tv:.4}");
    assert!(tv < 0.02, "Monte-Carlo PPR should converge (TV = {tv})");
    println!("PPR estimate matches power iteration — sampling stack validated.");
}
