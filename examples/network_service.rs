//! Sampling over the wire: a `csaw-serve` server on loopback, three
//! tenants with different weights, streaming responses, an event
//! subscriber, live mutations, and a Prometheus scrape — the whole
//! front-end surface in one program.
//!
//! Demonstrates that the network adds no sampling semantics: every
//! response (chunked or not) is bit-identical to a solo engine run at
//! the instance base the server reports, and the scraped ledger
//! balances when the program exits.
//!
//! ```text
//! cargo run --release --example network_service
//! ```

use csaw::core::engine::{RunOptions, Sampler};
use csaw::core::AlgoSpec;
use csaw::graph::generators::{rmat, RmatParams};
use csaw::graph::EdgeEdit;
use csaw::serve::{
    parse_value, Client, CsawServer, EventKind, SchedulerConfig, ServeConfig, TenantQuota, WireAlgo,
};
use csaw::service::{SamplingService, ServiceConfig};
use std::sync::Arc;

fn main() {
    let graph = Arc::new(rmat(12, 8, RmatParams::GRAPH500, 42));
    println!(
        "graph: rmat(12,8) — {} vertices, avg degree {:.1}",
        graph.num_vertices(),
        graph.avg_degree()
    );

    // A gold tenant with 4x the scheduler weight of the default.
    let svc = SamplingService::with_engine(Arc::clone(&graph), ServiceConfig::default());
    let server = CsawServer::start(
        svc,
        ServeConfig {
            scheduler: SchedulerConfig {
                tenant_quotas: [(
                    "gold".to_string(),
                    TenantQuota { weight: 4, ..TenantQuota::default() },
                )]
                .into_iter()
                .collect(),
                ..SchedulerConfig::default()
            },
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback");
    println!("serving on {}, metrics on {}", server.addr(), server.metrics_addr().unwrap());

    // An event subscriber watches every tenant's completions.
    let mut events = Client::connect(server.addr(), "watch")
        .expect("connect subscriber")
        .subscribe()
        .expect("subscribe");

    // Two tenants sample concurrently; "gold" streams its response in
    // chunks of 8 seeds so the first walks arrive before the batch
    // finishes.
    let addr = server.addr();
    let gold = std::thread::spawn(move || {
        let mut c = Client::connect(addr, "gold").expect("connect gold");
        let seeds: Vec<u32> = (0..32).map(|i| i * 61 % (1 << 12)).collect();
        let algo = WireAlgo::by_name("biased-walk").with_depth(12);
        let mut first_chunk_walks = 0;
        let streamed = c
            .sample_streamed(algo, seeds.clone(), 7, 8, |chunk| {
                if chunk.seq == 0 {
                    first_chunk_walks = chunk.instances.len();
                }
            })
            .expect("streamed sample");
        println!(
            "gold: {} chunks, first delivered {} walks early, instance base {}",
            streamed.end.chunks, first_chunk_walks, streamed.instance_base
        );
        c.goodbye().expect("goodbye");
        (seeds, streamed)
    });
    let bronze = std::thread::spawn(move || {
        let mut c = Client::connect(addr, "bronze").expect("connect bronze");
        let algo = WireAlgo::by_name("node2vec").with_depth(10);
        let resp = c.sample(algo, vec![1, 2, 3], 11, None).expect("sample");
        println!(
            "bronze: {} node2vec walks at instance base {}",
            resp.instances.len(),
            resp.instance_base
        );
        c.goodbye().expect("goodbye");
        resp
    });

    let (gold_seeds, streamed) = gold.join().expect("gold tenant");
    let _bronze_resp = bronze.join().expect("bronze tenant");

    // The reproducibility contract survives the wire AND the chunking:
    // reassembled chunks equal a solo engine run at the reported base.
    let spec = AlgoSpec::by_name("biased-walk").unwrap().with_depth(12);
    let algo = spec.build().expect("known algorithm");
    let solo = Sampler::new(&graph, &algo)
        .with_options(RunOptions {
            seed: 7,
            instance_base: streamed.instance_base,
            ..RunOptions::default()
        })
        .run_single_seeds(&gold_seeds)
        .instances;
    assert_eq!(streamed.reassemble(), solo, "wire + chunking must not change the sample");
    println!("gold's streamed response is bit-identical to a solo run — contract holds");

    // Live mutation through the same connection type.
    let mut editor = Client::connect(addr, "editor").expect("connect editor");
    // (Weight 1.0 — the rmat graph is unweighted, and the server
    // rejects weighted edits on it with a typed EditError frame.)
    let (epoch, overlay) =
        editor.mutate(vec![EdgeEdit::Insert { src: 1, dst: 2, weight: 1.0 }]).expect("insert edge");
    println!("mutation applied: epoch {epoch}, {overlay} overlay vertices");
    let folded = editor.compact().expect("compact");
    println!("compacted {folded} overlay vertices back into the CSR");

    // The subscriber saw the completions.
    let mut completed = 0;
    events.set_timeout(Some(std::time::Duration::from_millis(200))).expect("set timeout");
    while let Ok(Some(ev)) = events.next_event() {
        if ev.kind == EventKind::Completed {
            completed += 1;
        }
        if completed >= 2 {
            break;
        }
    }
    println!("subscriber observed {completed} completion events");

    // Scrape the ledger the way an operator would.
    let page = editor.stats_text().expect("stats");
    assert_eq!(parse_value(&page, "csaw_ledger_fully_accounted"), Some(1.0), "ledger must balance");
    println!(
        "ledger balances: {} submitted, {} completed, epoch {}",
        parse_value(&page, "csaw_requests_submitted_total").unwrap(),
        parse_value(&page, "csaw_requests_completed_total").unwrap(),
        parse_value(&page, "csaw_graph_epoch").unwrap(),
    );
    editor.goodbye().expect("goodbye");
    server.shutdown();
    println!("network_service: ok");
}
