//! Quickstart: sample the paper's toy graph (Fig. 1a) with a few of the
//! Table-I algorithms and print what comes back.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use csaw::core::algorithms::{BiasedRandomWalk, Node2Vec, Snowball, UnbiasedNeighborSampling};
use csaw::core::engine::Sampler;
use csaw::gpu::config::DeviceConfig;
use csaw::graph::generators::toy_graph;

fn main() {
    let g = toy_graph();
    println!(
        "toy graph: {} vertices, {} directed edges, avg degree {:.2}\n",
        g.num_vertices(),
        g.num_edges(),
        g.avg_degree()
    );

    // 1. A degree-biased random walk from the hub's neighborhood.
    let walk = BiasedRandomWalk { length: 8 };
    let out = Sampler::new(&g, &walk).run_single_seeds(&[8]);
    println!("biased random walk from v8: {:?}", out.instances[0]);

    // 2. Unbiased neighbor sampling, 2 neighbors per vertex, 2 hops.
    let ns = UnbiasedNeighborSampling { neighbor_size: 2, depth: 2 };
    let out = Sampler::new(&g, &ns).run_single_seeds(&[8]);
    println!("neighbor sampling (NS=2, depth=2) from v8: {:?}", out.instances[0]);

    // 3. Snowball to depth 1 = exactly the neighborhood.
    let snow = Snowball { depth: 1 };
    let out = Sampler::new(&g, &snow).run_single_seeds(&[8]);
    println!("snowball depth 1 from v8: {:?}", out.instances[0]);

    // 4. A node2vec walk that likes going home (small p).
    let n2v = Node2Vec { length: 8, p: 0.25, q: 4.0 };
    let out = Sampler::new(&g, &n2v).run_single_seeds(&[0]);
    println!("node2vec (p=0.25, q=4) from v0: {:?}", out.instances[0]);

    // Every run reports the simulated device work it did.
    let dev = DeviceConfig::v100();
    println!(
        "\nlast run: {} sampled edges, {} RNG draws, {:.3} µs simulated kernel time",
        out.sampled_edges(),
        out.stats.rng_draws,
        out.kernel_seconds(&dev) * 1e6
    );
}
