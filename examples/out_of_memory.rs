//! Out-of-memory sampling: walk a graph whose CSR exceeds the (simulated)
//! device memory, watching the §V optimization ladder pay off.
//!
//! Uses the Friendster stand-in with a deliberately tiny device, 4
//! partitions, 2 streams, and room for 2 resident partitions — the exact
//! Fig. 13 frame.
//!
//! ```text
//! cargo run --release --example out_of_memory
//! ```

use csaw::core::algorithms::UnbiasedNeighborSampling;
use csaw::gpu::config::DeviceConfig;
use csaw::graph::datasets;
use csaw::oom::{OomConfig, OomRunner};

fn main() {
    let spec = datasets::by_abbr("FR").expect("registry has FR (Friendster)");
    let g = spec.build();
    println!(
        "graph: {} stand-in — {} vertices, {} edges, CSR {:.1} MB (exceeds the toy device)",
        spec.name,
        g.num_vertices(),
        g.num_edges(),
        g.size_bytes() as f64 / 1e6
    );

    let algo = UnbiasedNeighborSampling { neighbor_size: 2, depth: 3 };
    let seeds: Vec<u32> =
        (0..512u32).map(|i| (i * 2_654_435_761u32) % g.num_vertices() as u32).collect();
    let dev = DeviceConfig::tiny(1 << 20);

    println!(
        "\n{:<12} {:>10} {:>10} {:>12} {:>10}",
        "config", "transfers", "rounds", "sim time ms", "speedup"
    );
    let mut base_time = None;
    for (label, cfg) in OomConfig::figure13_ladder() {
        let out = OomRunner::new(&g, &algo, cfg).with_device(dev).run(&seeds);
        let t = out.sim_seconds;
        let base = *base_time.get_or_insert(t);
        println!(
            "{:<12} {:>10} {:>10} {:>12.3} {:>9.2}x",
            label,
            out.transfers,
            out.rounds,
            t * 1e3,
            base / t
        );
        // Correctness invariant (§V-B): the sample is identical no matter
        // which optimizations are on.
        assert!(out.sampled_edges() > 0);
    }

    // The sampled output is scheduling-independent: verify baseline and
    // fully-optimized runs produce the same edge sets (expansion *order*
    // within an instance depends on queue drain order, the set does not).
    let canon = |out: &csaw::oom::scheduler::OomOutput| -> Vec<Vec<(u32, u32)>> {
        out.instances
            .iter()
            .map(|i| {
                let mut e = i.clone();
                e.sort_unstable();
                e
            })
            .collect()
    };
    let a = OomRunner::new(&g, &algo, OomConfig::baseline()).with_device(dev).run(&seeds);
    let b = OomRunner::new(&g, &algo, OomConfig::full()).with_device(dev).run(&seeds);
    assert_eq!(canon(&a), canon(&b));
    println!("\nscheduling-independence check passed: identical samples across configs");

    // How the fully-optimized run actually overlapped copies and kernels:
    println!("\n{}", csaw::oom::timeline::render(&b.events, 64));

    // §V-D also applies out of memory: split the instances across GPUs,
    // each running its own Fig. 8 loop with its own transfers.
    println!("multi-GPU out-of-memory (each device pages the graph itself):");
    for gpus in [1usize, 2, 4] {
        let out = csaw::oom::MultiGpu::new(gpus).run_oom(&g, &algo, &seeds, OomConfig::full());
        println!(
            "  {gpus} GPU(s): {:.3} ms, {} total transfers",
            out.total_seconds() * 1e3,
            out.transfers
        );
    }
}
