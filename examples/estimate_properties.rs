//! Property estimation from samples — what you do with a sampler when the
//! graph is too big to scan: estimate the average degree from a handful
//! of random walks, and the degree distribution from Metropolis-Hastings
//! walks, then check both against ground truth (which we can afford here
//! because the stand-in is small).
//!
//! ```text
//! cargo run --release --example estimate_properties
//! ```

use csaw::core::estimators::{avg_degree_from_walk, degree_histogram_from_mh};
use csaw::graph::datasets;

fn main() {
    let spec = datasets::by_abbr("YE").expect("registry has YE (Yelp)");
    let g = spec.build();
    println!(
        "graph: {} stand-in — {} vertices, {} edges\n",
        spec.name,
        g.num_vertices(),
        g.num_edges()
    );

    // Average degree from 64 short walks: the walk visits vertices
    // proportionally to degree, so the harmonic mean corrects the size
    // bias.
    let truth = g.avg_degree();
    for walks in [8usize, 32, 128] {
        let est = avg_degree_from_walk(&g, walks, 300, 50, 7);
        println!(
            "avg degree with {walks:>4} walks: estimate {est:.3}  (truth {truth:.3}, err {:+.1}%)",
            100.0 * (est - truth) / truth
        );
    }

    // Degree distribution head from MH walks (uniform stationary).
    // Walk-based estimators only see the component they walk in, so the
    // ground truth is the giant component (isolated vertices and small
    // components are invisible to any walker — a fundamental limit of
    // walk-based estimation, not an implementation artifact).
    println!("\ndegree distribution head (MH-walk estimate vs giant-component truth):");
    let est = degree_histogram_from_mh(&g, 64, 2000, 100, 9);
    let (labels, count) = csaw::graph::traversal::connected_components(&g);
    let mut sizes = vec![0usize; count];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    let giant = sizes.iter().enumerate().max_by_key(|&(_, s)| s).unwrap().0 as u32;
    let giant_n = sizes[giant as usize] as f64;
    let mut truth_hist = std::collections::BTreeMap::new();
    for v in 0..g.num_vertices() as u32 {
        if labels[v as usize] == giant {
            *truth_hist.entry(g.degree(v)).or_insert(0.0f64) += 1.0 / giant_n;
        }
    }
    println!("{:>7} {:>10} {:>10}", "degree", "estimate", "truth");
    let mut shown = 0;
    for (d, f) in est.iter() {
        if *f < 0.01 {
            continue;
        }
        println!("{d:>7} {f:>10.4} {:>10.4}", truth_hist.get(d).copied().unwrap_or(0.0));
        shown += 1;
        if shown >= 10 {
            break;
        }
    }

    // The estimate should be close in total variation on the shown head.
    let tv: f64 =
        est.iter().map(|(d, f)| (f - truth_hist.get(d).copied().unwrap_or(0.0)).abs()).sum::<f64>()
            / 2.0;
    println!("\ntotal variation distance: {tv:.4}");
    assert!(tv < 0.12, "estimator should be close on the giant component: TV {tv}");
}
