//! Sampling as a service: many independent clients submit small
//! requests; the service coalesces them into multi-instance launches
//! (§V-C batching) without changing anyone's sample.
//!
//! Demonstrates the full surface: concurrent clients, request
//! validation, deadlines, per-request accounting, the solo-run
//! reproducibility contract, and the final stats ledger.
//!
//! ```text
//! cargo run --release --example sampling_service
//! ```

use csaw::core::engine::{RunOptions, Sampler};
use csaw::core::AlgoSpec;
use csaw::graph::generators::{rmat, RmatParams};
use csaw::service::{SamplingRequest, SamplingService, ServiceConfig, ServiceError};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let graph = Arc::new(rmat(12, 8, RmatParams::GRAPH500, 42));
    println!(
        "graph: rmat(12,8) — {} vertices, avg degree {:.1}",
        graph.num_vertices(),
        graph.avg_degree()
    );

    let svc = Arc::new(SamplingService::with_engine(
        Arc::clone(&graph),
        ServiceConfig {
            batch_window: Duration::from_millis(2),
            max_batch_instances: 64,
            ..ServiceConfig::default()
        },
    ));

    // Eight client threads, each firing walk requests with its own
    // seeds. Same algorithm + same RNG seed -> the service coalesces
    // across clients.
    let spec = AlgoSpec::by_name("biased-walk").unwrap().with_depth(12);
    let clients: Vec<_> = (0..8u32)
        .map(|c| {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                let mut responses = Vec::new();
                for r in 0..4u32 {
                    let seeds: Vec<u32> =
                        (0..3).map(|j| (c * 97 + r * 13 + j) % (1 << 12)).collect();
                    let ticket = svc
                        .submit(SamplingRequest::new(spec, seeds.clone()))
                        .expect("valid request");
                    let resp = ticket.wait().expect("healthy workload");
                    responses.push((seeds, resp));
                }
                responses
            })
        })
        .collect();

    let mut coalesced = 0usize;
    let mut total = 0usize;
    let mut verified = 0usize;
    for client in clients {
        for (seeds, resp) in client.join().unwrap() {
            total += 1;
            if resp.stats.batch_requests > 1 {
                coalesced += 1;
            }
            // The reproducibility contract: a solo engine run at the
            // response's instance_base draws the identical sample.
            let algo = spec.build().unwrap();
            let solo = Sampler::new(&graph, &algo)
                .with_options(RunOptions {
                    seed: 1,
                    instance_base: resp.instance_base,
                    ..RunOptions::default()
                })
                .run_single_seeds(&seeds);
            assert_eq!(resp.output.instances, solo.instances, "coalescing must be invisible");
            verified += 1;
        }
    }
    println!("\n{total} requests served; {coalesced} rode a shared batch");
    println!("{verified}/{total} responses verified bit-identical to solo runs");

    // Bad requests are rejected up front with typed errors.
    let bad = svc.submit(SamplingRequest::new(spec, vec![u32::MAX]));
    println!("\nout-of-range seed   -> {}", bad.unwrap_err());
    let bad = svc.submit(SamplingRequest::new(spec.with_depth(0), vec![0]));
    println!("zero-length walk    -> {}", bad.unwrap_err());

    // Deadlines are enforced, never silently dropped.
    let doomed = svc
        .submit(SamplingRequest::new(spec, vec![1]).with_deadline(Duration::from_nanos(1)))
        .unwrap();
    match doomed.wait() {
        Err(ServiceError::Expired) => println!("1ns deadline        -> deadline expired"),
        other => panic!("expected expiry, got {other:?}"),
    }

    let svc = Arc::into_inner(svc).expect("clients joined");
    let snap = svc.shutdown();
    println!("\nfinal ledger:");
    println!("  submitted {:3}  accepted {:3}", snap.submitted, snap.accepted);
    println!(
        "  completed {:3}  expired  {:3}  rejected {:3}",
        snap.completed,
        snap.expired,
        snap.rejected_invalid + snap.rejected_queue_full + snap.rejected_shutdown
    );
    println!("  batches   {:3}  sampled edges {}", snap.batches, snap.sampled_edges);
    assert!(snap.fully_accounted(), "every request reaches exactly one terminal state");
    println!("  ledger balances: every request accounted exactly once");
}
